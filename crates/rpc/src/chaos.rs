//! Seeded chaos injection for the RPC layer.
//!
//! GekkoFS trades resilience for speed, so the property the chaos
//! suite defends is **clean failure**: under injected faults every
//! operation either completes or returns a typed error within its
//! deadline — no hangs, no panics, no silent corruption. Two
//! injectors, matching the two places a fault can live:
//!
//! * [`ChaosEndpoint`] wraps any [`Endpoint`] and injects faults at
//!   the submit/wait boundary — usable with the in-process transport,
//!   so cluster-level chaos tests run fast and fully deterministic.
//! * [`ChaosListener`] is a TCP man-in-the-middle proxy: it frame-
//!   aligns the real wire protocol and drops, delays, duplicates,
//!   corrupts, or resets actual bytes, exercising the CRC check and
//!   the endpoint's auto-reconnect end to end.
//!
//! All decisions come from a seeded splitmix64 stream — never from
//! wall-clock or OS randomness — so a failing seed replays exactly.
//! (Injected *delays* sleep real time, but their occurrence and
//! length are drawn from the seed.)

use crate::message::{Request, Response};
use crate::transport::{Endpoint, ReplyHandle};
use crossbeam::channel::{bounded, Sender};
use gkfs_common::lock::{rank, OrderedMutex};
use gkfs_common::retry::splitmix64;
use gkfs_common::{GkfsError, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault probabilities (all in `[0, 1]`) plus the PRNG seed.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Request vanishes before reaching the daemon (caller times out).
    pub drop_request: f64,
    /// Daemon applies the op but the reply is lost (caller times out
    /// on the endpoint injector; the proxy swallows the reply frame).
    pub drop_reply: f64,
    /// Request is delivered twice (duplicate delivery on the wire).
    pub duplicate: f64,
    /// Frame payload is corrupted in transit. Post-CRC, this
    /// surfaces as [`GkfsError::Corruption`] and a connection drop,
    /// never as silently wrong data.
    pub corrupt: f64,
    /// Connection reset: in-flight ops fail with a retryable error.
    pub reset: f64,
    /// Extra latency is injected on the path.
    pub delay: f64,
    /// Upper bound for one injected delay.
    pub max_delay: Duration,
}

impl ChaosConfig {
    /// No faults at all — a control configuration.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_request: 0.0,
            drop_reply: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reset: 0.0,
            delay: 0.0,
            max_delay: Duration::ZERO,
        }
    }

    /// A mildly hostile network: occasional faults of every kind.
    pub fn light(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_request: 0.01,
            drop_reply: 0.01,
            duplicate: 0.02,
            corrupt: 0.02,
            reset: 0.005,
            delay: 0.05,
            max_delay: Duration::from_millis(5),
        }
    }

    /// An actively hostile network: every op has a real chance of
    /// being hit, often more than once across its retries.
    pub fn heavy(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_request: 0.04,
            drop_reply: 0.04,
            duplicate: 0.05,
            corrupt: 0.05,
            reset: 0.02,
            delay: 0.10,
            max_delay: Duration::from_millis(10),
        }
    }
}

/// Counts of injected faults, for assertions that chaos actually ran.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Requests swallowed.
    pub dropped_requests: AtomicU64,
    /// Replies swallowed.
    pub dropped_replies: AtomicU64,
    /// Requests delivered twice.
    pub duplicates: AtomicU64,
    /// Frames corrupted (endpoint injector: corruption errors).
    pub corruptions: AtomicU64,
    /// Connections reset (endpoint injector: reset errors).
    pub resets: AtomicU64,
    /// Delays injected.
    pub delays: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected so far.
    pub fn total(&self) -> u64 {
        self.dropped_requests.load(Ordering::Relaxed)
            + self.dropped_replies.load(Ordering::Relaxed)
            + self.duplicates.load(Ordering::Relaxed)
            + self.corruptions.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// Advance the splitmix64 stream and return a uniform draw in `[0,1)`.
fn draw(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (splitmix64(*state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One fault decision for an operation passing through an injector.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    None,
    DropRequest,
    DropReply,
    Duplicate,
    Corrupt,
    Reset,
}

/// Everything decided under the RNG lock, acted on after it drops —
/// injected sleeps must never run while the lock is held.
struct Decision {
    fault: Fault,
    delay: Option<Duration>,
}

fn decide(cfg: &ChaosConfig, state: &mut u64) -> Decision {
    // One draw per fault class keeps the stream layout fixed, so a
    // given (seed, op index) always yields the same decision no
    // matter which probabilities are zero.
    let reset = draw(state) < cfg.reset;
    let corrupt = draw(state) < cfg.corrupt;
    let drop_req = draw(state) < cfg.drop_request;
    let drop_rep = draw(state) < cfg.drop_reply;
    let dup = draw(state) < cfg.duplicate;
    let delay_hit = draw(state) < cfg.delay;
    let delay_frac = draw(state);

    let fault = if reset {
        Fault::Reset
    } else if corrupt {
        Fault::Corrupt
    } else if drop_req {
        Fault::DropRequest
    } else if drop_rep {
        Fault::DropReply
    } else if dup {
        Fault::Duplicate
    } else {
        Fault::None
    };
    let delay = if delay_hit && cfg.max_delay > Duration::ZERO {
        Some(Duration::from_nanos(
            (cfg.max_delay.as_nanos() as f64 * delay_frac) as u64,
        ))
    } else {
        None
    };
    Decision { fault, delay }
}

/// Endpoint-boundary fault injector. Wraps any [`Endpoint`]; each
/// submission consumes a fixed number of PRNG draws, so fault
/// placement depends only on the seed and the submission order.
pub struct ChaosEndpoint {
    inner: Arc<dyn Endpoint>,
    cfg: ChaosConfig,
    rng: OrderedMutex<u64>,
    /// Senders for handles whose reply was "lost": keeping the sender
    /// alive keeps the channel open, so the waiter times out (as it
    /// would on a real lost reply) instead of seeing a disconnect.
    parked: OrderedMutex<Vec<Sender<Result<Response>>>>,
    stats: Arc<ChaosStats>,
}

/// Cap on parked senders; beyond this the oldest are released (their
/// waiters have long since timed out).
const MAX_PARKED: usize = 1024;

impl ChaosEndpoint {
    /// Wrap `inner` with the fault policy in `cfg`.
    pub fn new(inner: Arc<dyn Endpoint>, cfg: ChaosConfig) -> Arc<ChaosEndpoint> {
        Arc::new(ChaosEndpoint {
            inner,
            rng: OrderedMutex::new(rank::CHAOS_RNG, cfg.seed),
            parked: OrderedMutex::new(rank::CHAOS_PARKED, Vec::new()),
            cfg,
            stats: Arc::new(ChaosStats::default()),
        })
    }

    /// Injection counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// A handle that will never complete: the waiter burns its
    /// timeout, exactly like a request or reply lost on the wire.
    fn lost(&self) -> ReplyHandle {
        let (tx, rx) = bounded::<Result<Response>>(1);
        {
            let mut p = self.parked.lock();
            p.push(tx);
            if p.len() > MAX_PARKED {
                p.drain(..MAX_PARKED / 2);
            }
        }
        ReplyHandle::pending(rx)
    }
}

impl Endpoint for ChaosEndpoint {
    fn submit(&self, req: Request) -> Result<ReplyHandle> {
        let decision = {
            let mut state = self.rng.lock();
            decide(&self.cfg, &mut state)
        };
        if let Some(d) = decision.delay {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(d);
        }
        match decision.fault {
            Fault::None => self.inner.submit(req),
            Fault::Reset => {
                self.stats.resets.fetch_add(1, Ordering::Relaxed);
                Err(GkfsError::Rpc("chaos: connection reset".into()))
            }
            Fault::Corrupt => {
                // Post-CRC semantics: a corrupted frame never reaches
                // the application; it is caught by the checksum and
                // surfaces as a typed Corruption error.
                self.stats.corruptions.fetch_add(1, Ordering::Relaxed);
                Err(GkfsError::Corruption("chaos: corrupted frame".into()))
            }
            Fault::DropRequest => {
                self.stats.dropped_requests.fetch_add(1, Ordering::Relaxed);
                Ok(self.lost())
            }
            Fault::DropReply => {
                // The op is applied — only the reply vanishes. This is
                // the case idempotency-aware retry exists for.
                self.stats.dropped_replies.fetch_add(1, Ordering::Relaxed);
                let _ = self.inner.submit(req)?;
                Ok(self.lost())
            }
            Fault::Duplicate => {
                self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                let dup = self.inner.submit(req.clone());
                let real = self.inner.submit(req)?;
                drop(dup);
                Ok(real)
            }
        }
    }

    fn timeout(&self) -> Duration {
        self.inner.timeout()
    }

    fn reconnects(&self) -> u64 {
        self.inner.reconnects()
    }
}

/// Wire-level chaos: a TCP proxy between clients and one daemon that
/// injects faults into real frames. Faults on the client→daemon pump
/// use the request-side probabilities; daemon→client uses the
/// reply-side ones. A corrupt fault flips one payload byte and leaves
/// the frame CRC alone, so the receiver's checksum must catch it.
pub struct ChaosListener {
    addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    accept_thread: OrderedMutex<Option<std::thread::JoinHandle<()>>>,
    chaos_conns: Arc<OrderedMutex<Vec<TcpStream>>>,
    stats: Arc<ChaosStats>,
}

/// Read one raw frame (len + payload + crc) without interpreting it.
/// Returns the payload and the frame's crc bytes.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<(Vec<u8>, [u8; 4])> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    let mut crc = [0u8; 4];
    stream.read_exact(&mut crc)?;
    Ok((payload, crc))
}

fn write_raw_frame(stream: &mut TcpStream, payload: &[u8], crc: [u8; 4]) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.write_all(&crc)?;
    Ok(())
}

/// Which direction a pump moves bytes; selects the fault classes.
#[derive(Clone, Copy)]
enum PumpDir {
    ClientToDaemon,
    DaemonToClient,
}

#[allow(clippy::too_many_arguments)]
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    dir: PumpDir,
    cfg: ChaosConfig,
    rng: Arc<OrderedMutex<u64>>,
    stats: Arc<ChaosStats>,
    shutting_down: Arc<AtomicBool>,
) {
    loop {
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok((mut payload, crc)) = read_raw_frame(&mut from) else {
            break;
        };
        let decision = {
            let mut state = rng.lock();
            decide(&cfg, &mut state)
        };
        if let Some(d) = decision.delay {
            stats.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(d);
        }
        match decision.fault {
            Fault::Reset => {
                stats.resets.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Fault::Corrupt => {
                stats.corruptions.fetch_add(1, Ordering::Relaxed);
                if !payload.is_empty() {
                    let idx = payload.len() / 2;
                    payload[idx] ^= 0x40;
                }
                if write_raw_frame(&mut to, &payload, crc).is_err() {
                    break;
                }
            }
            Fault::DropRequest => match dir {
                PumpDir::ClientToDaemon => {
                    stats.dropped_requests.fetch_add(1, Ordering::Relaxed);
                }
                PumpDir::DaemonToClient => {
                    stats.dropped_replies.fetch_add(1, Ordering::Relaxed);
                }
            },
            Fault::DropReply => match dir {
                // The draw order is shared; map the class onto this
                // pump's direction so both directions lose frames.
                PumpDir::ClientToDaemon => {
                    stats.dropped_requests.fetch_add(1, Ordering::Relaxed);
                }
                PumpDir::DaemonToClient => {
                    stats.dropped_replies.fetch_add(1, Ordering::Relaxed);
                }
            },
            Fault::Duplicate => {
                stats.duplicates.fetch_add(1, Ordering::Relaxed);
                if write_raw_frame(&mut to, &payload, crc).is_err()
                    || write_raw_frame(&mut to, &payload, crc).is_err()
                {
                    break;
                }
            }
            Fault::None => {
                if write_raw_frame(&mut to, &payload, crc).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

impl ChaosListener {
    /// Start a proxy in front of `upstream`. Clients connect to
    /// [`ChaosListener::local_addr`] instead of the daemon directly.
    pub fn spawn(upstream: SocketAddr, cfg: ChaosConfig) -> Result<Arc<ChaosListener>> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| GkfsError::Rpc(format!("chaos bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| GkfsError::Rpc(e.to_string()))?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let rng = Arc::new(OrderedMutex::new(rank::CHAOS_RNG, cfg.seed));
        let chaos_conns: Arc<OrderedMutex<Vec<TcpStream>>> =
            Arc::new(OrderedMutex::new(rank::CHAOS_CONNS, Vec::new()));

        let accept = {
            let shutting_down = shutting_down.clone();
            let stats = stats.clone();
            let rng = rng.clone();
            let chaos_conns = chaos_conns.clone();
            std::thread::Builder::new()
                .name("gkfs-chaos-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = conn else { continue };
                        client.set_nodelay(true).ok();
                        let Ok(daemon) = TcpStream::connect(upstream) else {
                            // Upstream down: hang up on the client so
                            // it sees a reset, not a hang.
                            continue;
                        };
                        daemon.set_nodelay(true).ok();
                        let (Ok(c2), Ok(d2)) = (client.try_clone(), daemon.try_clone()) else {
                            continue;
                        };
                        {
                            let mut cs = chaos_conns.lock();
                            if let Ok(c) = client.try_clone() {
                                cs.push(c);
                            }
                            if let Ok(d) = daemon.try_clone() {
                                cs.push(d);
                            }
                        }
                        for (from, to, dir, name) in [
                            (client, daemon, PumpDir::ClientToDaemon, "gkfs-chaos-up"),
                            (d2, c2, PumpDir::DaemonToClient, "gkfs-chaos-down"),
                        ] {
                            let cfg = cfg;
                            let rng = rng.clone();
                            let stats = stats.clone();
                            let shutting_down = shutting_down.clone();
                            let _ = std::thread::Builder::new().name(name.into()).spawn(
                                move || pump(from, to, dir, cfg, rng, stats, shutting_down),
                            );
                        }
                    }
                })
                .map_err(|e| GkfsError::Rpc(format!("spawn chaos accept: {e}")))?
        };

        Ok(Arc::new(ChaosListener {
            addr,
            shutting_down,
            accept_thread: OrderedMutex::new(rank::RPC_ACCEPT, Some(accept)),
            chaos_conns,
            stats,
        }))
    }

    /// The proxy's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Injection counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Sever every proxied connection (both halves) without stopping
    /// the proxy — a full network blip.
    pub fn sever_connections(&self) {
        for c in self.chaos_conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop the proxy and sever everything.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept_thread.lock().take();
        if let Some(t) = accept {
            let _ = t.join();
        }
        self.sever_connections();
    }
}

impl Drop for ChaosListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::HandlerRegistry;
    use crate::message::Opcode;
    use crate::transport::inproc::RpcServer;
    use crate::transport::tcp::{TcpEndpoint, TcpServer};

    fn echo_registry() -> HandlerRegistry {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| Response::ok(req.body));
        reg
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let cfg = ChaosConfig::heavy(42);
        let mut a = cfg.seed;
        let mut b = cfg.seed;
        for _ in 0..1000 {
            let da = decide(&cfg, &mut a);
            let db = decide(&cfg, &mut b);
            assert_eq!(da.fault, db.fault);
            assert_eq!(da.delay, db.delay);
        }
        // And a different seed yields a different fault placement.
        let mut c = 43;
        let differs = (0..1000).any(|_| {
            let mut a2 = a;
            decide(&cfg, &mut a2).fault != decide(&cfg, &mut c).fault
        });
        assert!(differs);
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let server = RpcServer::new(echo_registry(), 2);
        let ep = ChaosEndpoint::new(server.endpoint(), ChaosConfig::quiet(7));
        for _ in 0..200 {
            ep.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap();
        }
        assert_eq!(ep.stats().total(), 0);
    }

    #[test]
    fn chaos_endpoint_faults_are_typed_and_bounded() {
        let server = RpcServer::new(echo_registry(), 2);
        let ep = ChaosEndpoint::new(server.endpoint(), ChaosConfig::heavy(1));
        let mut oks = 0u32;
        let mut errs = 0u32;
        for _ in 0..300 {
            match ep.submit(Request::new(Opcode::Ping, &b"x"[..])) {
                Ok(h) => match h.wait(Duration::from_millis(100)) {
                    Ok(_) => oks += 1,
                    Err(e) => {
                        assert!(e.is_retryable() || matches!(e, GkfsError::Timeout));
                        errs += 1;
                    }
                },
                Err(e) => {
                    assert!(e.is_retryable(), "untyped chaos error: {e:?}");
                    errs += 1;
                }
            }
        }
        assert!(oks > 0, "heavy chaos must still let most ops through");
        assert!(errs > 0, "heavy chaos must inject something in 300 ops");
        assert!(ep.stats().total() > 0);
    }

    #[test]
    fn proxy_passes_traffic_through_quietly() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let proxy = ChaosListener::spawn(server.local_addr(), ChaosConfig::quiet(9)).unwrap();
        let ep = TcpEndpoint::connect(&proxy.local_addr().to_string()).unwrap();
        for i in 0..50 {
            let body = format!("m{i}");
            let resp = ep
                .call(Request::new(Opcode::Ping, bytes::Bytes::from(body.clone())))
                .unwrap();
            assert_eq!(&resp.body[..], body.as_bytes());
        }
        assert_eq!(proxy.stats().total(), 0);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn proxy_corruption_is_caught_by_crc_not_delivered() {
        // Corrupt-only chaos: flipped payload bytes must surface as
        // typed errors (Corruption / connection loss / timeout after
        // the conn drops), never as wrong bytes in a reply.
        let mut cfg = ChaosConfig::quiet(11);
        cfg.corrupt = 0.2;
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let proxy = ChaosListener::spawn(server.local_addr(), cfg).unwrap();
        let ep = TcpEndpoint::connect_with(
            &proxy.local_addr().to_string(),
            crate::transport::EndpointOptions::new().with_timeout(Duration::from_secs(2)),
        )
        .unwrap();
        let mut saw_error = false;
        for i in 0..200 {
            let body = format!("payload-{i}");
            match ep.call(Request::new(Opcode::Ping, bytes::Bytes::from(body.clone()))) {
                Ok(resp) => assert_eq!(&resp.body[..], body.as_bytes(), "corruption leaked"),
                Err(e) => {
                    assert!(
                        e.is_retryable() || matches!(e, GkfsError::Timeout),
                        "untyped error under corruption: {e:?}"
                    );
                    saw_error = true;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        assert!(saw_error, "20% corruption over 200 ops must hit");
        assert!(proxy.stats().corruptions.load(Ordering::Relaxed) > 0);
        proxy.shutdown();
        server.shutdown();
    }
}
