//! # gkfs-rpc — the RPC layer (Mercury / Margo / Argobots substitute)
//!
//! GekkoFS interfaces Mercury *"indirectly through the Margo library
//! which provides Argobots-aware wrappers to Mercury's API with the
//! goal to provide a simple multi-threaded execution model"*
//! (paper §III-B-b). This crate reproduces that execution model:
//!
//! * [`message`] — request/response frames: a small fixed header, a
//!   compact body, and an out-of-band **bulk** payload. Bulk data
//!   models Mercury's RDMA path: on the in-process transport it moves
//!   as a reference-counted [`bytes::Bytes`] with zero copies ("the
//!   client exposes the relevant chunk memory region to the daemon"),
//!   on TCP it is streamed after the header.
//! * [`handler`] — opcode → handler dispatch table (Mercury's
//!   registered RPC ids).
//! * [`pool`] — the handler thread pool (Margo handler xstreams backed
//!   by Argobots): a progress side enqueues requests, a fixed set of
//!   worker threads executes them concurrently.
//! * [`transport`] — two interchangeable transports behind the
//!   [`Endpoint`] trait: in-process channels (used by tests, the
//!   in-process cluster, and benchmarks) and real TCP sockets with
//!   request-id correlation and connection reuse.
//!
//! The daemon registers handlers and serves; the client holds one
//! [`Endpoint`] per daemon. The endpoint API is
//! submission/completion, Margo's own shape: a nonblocking
//! [`Endpoint::submit`] (`margo_iforward`) returns a
//! [`ReplyHandle`] whose `wait` (`margo_wait`) yields the response,
//! so one client thread pipelines requests across any number of
//! daemons with zero thread spawns; blocking `call` is sugar over the
//! pair.

#![warn(missing_docs)]

pub mod chaos;
pub mod handler;
pub mod message;
pub mod pool;
pub mod proto;
pub mod stats;
pub mod testing;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosEndpoint, ChaosListener, ChaosStats};
pub use handler::{Handler, HandlerFn, HandlerRegistry};
pub use message::{Opcode, Request, Response, Status};
pub use pool::HandlerPool;
pub use stats::RpcStats;
pub use transport::inproc::{InprocEndpoint, RpcServer};
pub use transport::tcp::{TcpEndpoint, TcpServer};
pub use transport::{Endpoint, EndpointOptions, ReplyHandle, DEFAULT_TIMEOUT};
