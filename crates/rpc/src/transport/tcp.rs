//! TCP transport.
//!
//! Real sockets, for running daemons as separate processes or on
//! separate machines. Frames are length-prefixed and CRC32-checked;
//! each connection has one reader thread, and responses are correlated
//! to waiting callers by request id, so one connection multiplexes any
//! number of concurrent calls (as Mercury does over its network
//! plugins). Submission is nonblocking: `submit` registers the pending
//! slot and writes the frame; the reader thread completes handles as
//! responses arrive, in whatever order the daemon finishes them.
//!
//! # Zero-copy framing
//!
//! Frames go out through [`FrameWriter`]: the message prefix (opcode,
//! id, body, bulk length) and the bulk payload are handed to the
//! kernel as separate `writev` segments in a single vectored write —
//! no concatenation `Vec`, no separate len/payload/CRC syscalls. A
//! `ReadChunks` reply therefore travels fd → scatter-gather buffer →
//! socket, the TCP analogue of the in-process transport's by-reference
//! bulk handover. Inbound, each connection reuses one scratch buffer
//! (trimmed back to 64 KiB after oversized frames) instead of a fresh
//! zeroed allocation per frame.
//!
//! # Failure semantics
//!
//! A dead connection does not brick the endpoint. When the reader
//! thread dies (peer reset, EOF, corrupt frame) it fails every
//! in-flight request with a *typed* error — [`GkfsError::Rpc`] for
//! connection loss, [`GkfsError::Corruption`] for a checksum mismatch
//! — and clears the live connection. The next `submit` re-dials,
//! subject to a small exponential backoff after failed dial attempts
//! so a down daemon is probed, not hammered. All of these errors
//! satisfy `GkfsError::is_retryable`, which is what lets the client
//! retry layer ride through a daemon restart transparently.

use crate::handler::HandlerRegistry;
use crate::message::{Request, Response};
use crate::pool::{HandlerPool, SERVER_QUEUE_PER_WORKER};
use crate::stats::RpcStats;
use crate::transport::{Endpoint, EndpointOptions, ReplyHandle};
use crate::Status;
use crossbeam::channel::{bounded, Sender};
use gkfs_common::crc::crc32;
use gkfs_common::lock::{rank, OrderedMutex};
use gkfs_common::wire::FrameWriter;
use gkfs_common::{GkfsError, Result};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum accepted frame: 256 MiB guards against garbage length
/// prefixes from a confused peer.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Reader scratch buffers shrink back to this capacity after an
/// oversized frame, so one 256 MiB read reply does not pin 256 MiB per
/// connection forever. Frames at or below this size are read with zero
/// allocation.
const SCRATCH_TRIM: usize = 64 * 1024;

/// First re-dial backoff after a failed dial attempt; doubles per
/// consecutive failure up to [`DIAL_BACKOFF_MAX_MS`].
const DIAL_BACKOFF_BASE_MS: u64 = 10;

/// Re-dial backoff ceiling.
const DIAL_BACKOFF_MAX_MS: u64 = 500;

/// Wire frame: `len: u32 LE` (payload bytes only), payload, then
/// `crc32(payload): u32 LE`. The payload is given as borrowed
/// segments (message prefix + raw bulk); [`FrameWriter`] checksums
/// across them and emits the whole frame — header, every segment, CRC
/// trailer — with vectored writes, one syscall in the common case and
/// no concatenation buffer ever. I/O failures are reported as
/// [`GkfsError::Rpc`] so they classify as retryable connection loss.
fn write_frame_segments(stream: &mut TcpStream, segments: &[&[u8]]) -> Result<()> {
    let mut fw = FrameWriter::new();
    for s in segments {
        fw.segment(s);
    }
    if fw.payload_len() > MAX_FRAME as usize {
        return Err(GkfsError::Rpc(format!("frame too large: {}", fw.payload_len())));
    }
    fw.write_to(stream)
        .map_err(|e| GkfsError::Rpc(format!("connection lost: {e}")))
}

/// Write one response frame: encoded prefix plus the bulk payload as a
/// borrowed slice. A `ReadChunks` reply's scatter-gather buffer goes
/// from here straight to the socket.
fn write_response(stream: &mut TcpStream, resp: &Response) -> Result<()> {
    let prefix = resp.encode_prefix();
    write_frame_segments(stream, &[&prefix, &resp.bulk])
}

/// Counterpart of [`write_frame_segments`]: reads one frame into
/// `scratch` (reused across frames on the connection — no fresh zeroed
/// allocation per frame) and returns the payload length. Verifies the
/// trailing checksum and surfaces a mismatch as
/// [`GkfsError::Corruption`]. The caller must treat corruption as
/// fatal for the connection — after a bad frame the stream offset can
/// no longer be trusted, so the only way to resynchronize is to drop
/// the connection and reconnect.
fn read_frame_into(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> Result<usize> {
    let io = |e: std::io::Error| GkfsError::Rpc(format!("connection lost: {e}"));
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).map_err(io)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(GkfsError::Rpc(format!("frame too large: {len}")));
    }
    let len = len as usize;
    if scratch.len() < len {
        // Grow-only: the one-time zeroing of the new tail is amortized
        // over every later frame that fits.
        scratch.resize(len, 0);
    }
    stream.read_exact(&mut scratch[..len]).map_err(io)?;
    let mut crc_buf = [0u8; 4];
    stream.read_exact(&mut crc_buf).map_err(io)?;
    let want = u32::from_le_bytes(crc_buf);
    let got = crc32(&scratch[..len]);
    if got != want {
        return Err(GkfsError::Corruption(format!(
            "tcp frame crc mismatch: computed {got:#010x}, frame says {want:#010x}"
        )));
    }
    Ok(len)
}

/// Release an oversized scratch buffer back to [`SCRATCH_TRIM`] after
/// the frame it carried has been decoded.
fn trim_scratch(scratch: &mut Vec<u8>) {
    if scratch.capacity() > SCRATCH_TRIM {
        scratch.truncate(SCRATCH_TRIM);
        scratch.shrink_to(SCRATCH_TRIM);
    }
}

fn closed_err() -> GkfsError {
    GkfsError::Rpc("connection closed".into())
}

/// A TCP daemon listener: accepts connections and serves requests on a
/// handler pool.
pub struct TcpServer {
    addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    stats: Arc<RpcStats>,
    accept_thread: OrderedMutex<Option<std::thread::JoinHandle<()>>>,
    /// Live connection sockets, closed forcibly on shutdown so that
    /// clients of a stopped daemon see errors instead of a silently
    /// still-working ghost server.
    conns: Arc<OrderedMutex<Vec<TcpStream>>>,
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an OS-assigned port; the actual
    /// address is available via [`TcpServer::local_addr`]) and start
    /// serving. The handler pool queue is bounded
    /// ([`SERVER_QUEUE_PER_WORKER`] slots per worker): when pipelining
    /// clients outrun the daemon, connection readers stall on the full
    /// queue and TCP flow control pushes back to the submitters
    /// instead of the queue growing without bound.
    pub fn bind(
        addr: &str,
        registry: HandlerRegistry,
        handler_threads: usize,
    ) -> Result<Arc<TcpServer>> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| GkfsError::Rpc(format!("bind {addr}: {e}")))?;
        let local = listener.local_addr().map_err(|e| GkfsError::Rpc(e.to_string()))?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RpcStats::default());
        let registry = Arc::new(registry);
        let threads = handler_threads.max(1);
        let pool = Arc::new(HandlerPool::bounded(
            threads,
            threads * SERVER_QUEUE_PER_WORKER,
        ));
        let conns: Arc<OrderedMutex<Vec<TcpStream>>> =
            Arc::new(OrderedMutex::new(rank::RPC_CONNS, Vec::new()));

        let accept = {
            let shutting_down = shutting_down.clone();
            let stats = stats.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("gkfs-tcp-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Responses are small framed messages: Nagle
                        // plus delayed ACKs would add milliseconds per
                        // round trip.
                        stream.set_nodelay(true).ok();
                        if let Ok(clone) = stream.try_clone() {
                            conns.lock().push(clone);
                        }
                        let registry = registry.clone();
                        let pool = pool.clone();
                        let stats = stats.clone();
                        let shutting_down = shutting_down.clone();
                        let spawned = std::thread::Builder::new()
                            .name("gkfs-tcp-conn".into())
                            .spawn(move || {
                                serve_connection(stream, registry, pool, stats, shutting_down)
                            });
                        // Thread exhaustion: dropping the stream hangs
                        // up on the peer (it can retry) instead of
                        // killing the accept loop for everyone.
                        if spawned.is_err() {
                            continue;
                        }
                    }
                })
                .map_err(|e| GkfsError::Rpc(format!("spawn accept thread: {e}")))?
        };

        Ok(Arc::new(TcpServer {
            addr: local,
            shutting_down,
            stats,
            accept_thread: OrderedMutex::new(rank::RPC_ACCEPT, Some(accept)),
            conns,
        }))
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stats.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// Forcibly sever every established connection while the server
    /// keeps listening — the moral equivalent of a transient network
    /// partition or a middlebox reset. Clients see their in-flight
    /// requests fail with a retryable error and reconnect on the next
    /// submit. Used by the chaos and robustness tests.
    pub fn sever_connections(&self) {
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop accepting and wind down. In-flight requests on open
    /// connections complete; new connections are rejected.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection. The handle
        // comes out of the lock before the join: an `if let` on
        // `.lock().take()` would hold the guard for the accept loop's
        // whole wind-down (GKL002).
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept_thread.lock().take();
        if let Some(t) = accept {
            let _ = t.join();
        }
        // Sever every established connection: a stopped daemon must
        // look stopped to its clients.
        self.sever_connections();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    stream: TcpStream,
    registry: Arc<HandlerRegistry>,
    pool: Arc<HandlerPool>,
    stats: Arc<RpcStats>,
    shutting_down: Arc<AtomicBool>,
) {
    let writer = Arc::new(OrderedMutex::new(
        rank::RPC_WRITER,
        match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    ));
    let mut reader = stream;
    let mut scratch: Vec<u8> = Vec::new();
    // A read error means peer closed, stream damaged, or checksum
    // mismatch: the stream offset is untrustworthy either way, so drop
    // the connection and let the client reconnect.
    while let Ok(n) = read_frame_into(&mut reader, &mut scratch) {
        let req = match Request::decode(&scratch[..n]) {
            Ok(r) => r,
            Err(_) => break, // unparseable frame: protocol broken, drop
        };
        trim_scratch(&mut scratch);
        if shutting_down.load(Ordering::SeqCst) {
            let mut resp = Response::err(GkfsError::ShuttingDown);
            resp.id = req.id;
            let _ = write_response(&mut writer.lock(), &resp);
            continue;
        }
        stats.record_request(req.body.len(), req.bulk.len());
        let registry = registry.clone();
        let writer = writer.clone();
        let stats = stats.clone();
        pool.submit(move || {
            let resp = registry.dispatch(req);
            stats.record_response(
                matches!(resp.status, Status::Ok),
                resp.body.len(),
                resp.bulk.len(),
            );
            let _ = write_response(&mut writer.lock(), &resp);
        });
    }
    // The accept loop parked a clone of this socket in the server's
    // `conns` list (for forcible severing), so dropping our handles
    // does not close the fd. Shut the socket down explicitly: a stream
    // this loop abandoned (EOF, corrupt frame, protocol break) must
    // look closed to the peer *now*, not at server shutdown — the
    // client fails its in-flight requests fast and reconnects.
    let _ = reader.shutdown(std::net::Shutdown::Both);
}

/// Correlation table for one live connection: request id → completion
/// sender. Each connection generation gets its *own* table, so a
/// request submitted on connection N can never be completed (or
/// leaked) by connection N+1's reader.
type PendingMap = Arc<OrderedMutex<HashMap<u64, Sender<Result<Response>>>>>;

/// One live connection generation.
struct LiveConn {
    gen: u64,
    writer: TcpStream,
    pending: PendingMap,
}

/// Mutable connection state behind the endpoint's `conn` lock.
struct ConnSlot {
    live: Option<LiveConn>,
    /// Generation counter; each successful dial gets a fresh one so a
    /// stale reader thread cannot clear a newer connection.
    gens: u64,
    /// `true` while one submitter is off dialing (without the lock
    /// held); others fail fast with a retryable error instead of
    /// piling up behind the dial.
    dialing: bool,
    /// Consecutive failed dial attempts, drives the re-dial backoff.
    dial_fails: u32,
    /// Earliest instant the next dial may be attempted.
    next_dial: Option<Instant>,
}

/// Client handle to one TCP daemon. One socket, multiplexed: any
/// number of submitted requests share it, correlated by id. When the
/// connection dies the endpoint re-dials on the next submit (with
/// backoff) instead of bricking — see the module docs for the exact
/// failure semantics.
pub struct TcpEndpoint {
    addr: String,
    conn: Arc<OrderedMutex<ConnSlot>>,
    next_id: AtomicU64,
    timeout: Duration,
    reconnects: AtomicU64,
}

/// Dial `addr` and start its reader thread. The reader owns only the
/// slot Arc and the connection's pending map — not the endpoint — so
/// dropping the endpoint does not leak a thread keeping it alive.
fn dial(addr: &str, conn: &Arc<OrderedMutex<ConnSlot>>, gen: u64) -> Result<LiveConn> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| GkfsError::Rpc(format!("connect {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let reader = stream
        .try_clone()
        .map_err(|e| GkfsError::Rpc(e.to_string()))?;
    let pending: PendingMap = Arc::new(OrderedMutex::new(rank::RPC_PENDING, HashMap::new()));

    {
        let conn = Arc::clone(conn);
        let pending = pending.clone();
        std::thread::Builder::new()
            .name("gkfs-tcp-reader".into())
            .spawn(move || {
                let mut reader = reader;
                let mut scratch: Vec<u8> = Vec::new();
                let cause = loop {
                    match read_frame_into(&mut reader, &mut scratch) {
                        Ok(n) => match Response::decode(&scratch[..n]) {
                            Ok(resp) => {
                                trim_scratch(&mut scratch);
                                if let Some(tx) = pending.lock().remove(&resp.id) {
                                    let _ = tx.send(Ok(resp));
                                }
                            }
                            Err(e) => {
                                break GkfsError::Corruption(format!(
                                    "undecodable response frame: {e}"
                                ))
                            }
                        },
                        Err(e) => break e,
                    }
                };
                // Retire this connection if it is still the live one
                // (a submitter that hit a write error may already have
                // replaced or cleared it).
                {
                    let mut s = conn.lock();
                    if s.live.as_ref().map(|c| c.gen) == Some(gen) {
                        s.live = None;
                    }
                }
                // Fail every in-flight request with the typed cause.
                // New submits can no longer reach this map (`live` is
                // gone and inserts only happen under the conn lock
                // while this generation is live), so nothing races in
                // after the drain.
                let waiters: Vec<Sender<Result<Response>>> = {
                    let mut p = pending.lock();
                    p.drain().map(|(_, tx)| tx).collect()
                };
                for tx in waiters {
                    let _ = tx.send(Err(cause.clone()));
                }
            })
            .map_err(|e| GkfsError::Rpc(format!("spawn reader thread: {e}")))?;
    }

    Ok(LiveConn {
        gen,
        writer: stream,
        pending,
    })
}

impl TcpEndpoint {
    /// Connect to a daemon at `addr` with default options.
    pub fn connect(addr: &str) -> Result<Arc<TcpEndpoint>> {
        Self::connect_with(addr, EndpointOptions::default())
    }

    /// Connect with explicit [`EndpointOptions`]. The initial dial is
    /// eager so an unreachable daemon fails here, not on first use.
    pub fn connect_with(addr: &str, opts: EndpointOptions) -> Result<Arc<TcpEndpoint>> {
        let conn = Arc::new(OrderedMutex::new(
            rank::RPC_CONN,
            ConnSlot {
                live: None,
                gens: 1,
                dialing: false,
                dial_fails: 0,
                next_dial: None,
            },
        ));
        let live = dial(addr, &conn, 1)?;
        conn.lock().live = Some(live);
        Ok(Arc::new(TcpEndpoint {
            addr: addr.to_string(),
            conn,
            next_id: AtomicU64::new(1),
            timeout: opts.timeout,
            reconnects: AtomicU64::new(0),
        }))
    }

    /// Number of submitted requests whose responses have not arrived
    /// yet (diagnostics; the pipelining tests assert nothing leaks).
    pub fn pending_len(&self) -> usize {
        let s = self.conn.lock();
        s.live.as_ref().map_or(0, |c| c.pending.lock().len())
    }

    /// Register `(id → tx)` on the live connection and write the
    /// frame — encoded prefix plus borrowed bulk, vectored — all under
    /// the conn lock. On a write error the connection is torn down
    /// (the socket is broken) so the next submit re-dials immediately,
    /// and the error — retryable — is returned.
    fn send_on_live(
        &self,
        s: &mut ConnSlot,
        id: u64,
        prefix: &[u8],
        bulk: &[u8],
    ) -> Result<ReplyHandle> {
        let (tx, rx) = bounded::<Result<Response>>(1);
        let Some(live) = s.live.as_mut() else {
            // The connection died between the dial/check and now; the
            // retry layer treats this as connection loss and retries.
            return Err(closed_err());
        };
        live.pending.lock().insert(id, tx);
        let pending = Arc::clone(&live.pending);
        if let Err(e) = write_frame_segments(&mut live.writer, &[prefix, bulk]) {
            pending.lock().remove(&id);
            // An established connection broke mid-write: clear it and
            // allow an immediate re-dial (backoff only gates dials
            // that themselves failed).
            s.live = None;
            s.dial_fails = 0;
            s.next_dial = None;
            return Err(e);
        }
        Ok(ReplyHandle::pending(rx)
            .on_disconnect(closed_err())
            .on_abandon(move || {
                pending.lock().remove(&id);
            }))
    }
}

/// What `submit` decided to do after inspecting the conn slot.
enum SubmitPlan {
    /// A connection is live; go send on it.
    UseLive,
    /// This submitter claimed the dial; `gen` is the new generation.
    Dial(u64),
    /// Another submitter is dialing right now.
    DialInProgress,
    /// A recent dial failed; next attempt not before the stored time.
    Backoff,
}

impl Endpoint for TcpEndpoint {
    fn submit(&self, mut req: Request) -> Result<ReplyHandle> {
        req.id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id = req.id;
        // Only the prefix (opcode, id, body, bulk length) is
        // serialized; the bulk payload rides to the socket as a
        // borrowed slice of `req.bulk`.
        let prefix = req.encode_prefix();

        let plan = {
            let mut s = self.conn.lock();
            if s.live.is_some() {
                SubmitPlan::UseLive
            } else if s.dialing {
                SubmitPlan::DialInProgress
            } else if s.next_dial.is_some_and(|t| Instant::now() < t) {
                SubmitPlan::Backoff
            } else {
                s.dialing = true;
                s.gens += 1;
                SubmitPlan::Dial(s.gens)
            }
        };

        match plan {
            SubmitPlan::UseLive => {
                let mut s = self.conn.lock();
                self.send_on_live(&mut s, id, &prefix, &req.bulk)
            }
            SubmitPlan::DialInProgress => Err(GkfsError::Rpc(format!(
                "{}: reconnect in progress",
                self.addr
            ))),
            SubmitPlan::Backoff => Err(GkfsError::Rpc(format!(
                "{}: reconnect backoff",
                self.addr
            ))),
            SubmitPlan::Dial(gen) => {
                // Dial without the lock held: a slow/unroutable dial
                // must not stall submitters (they fail fast above).
                let dialed = dial(&self.addr, &self.conn, gen);
                let mut s = self.conn.lock();
                s.dialing = false;
                match dialed {
                    Ok(live) => {
                        s.live = Some(live);
                        s.dial_fails = 0;
                        s.next_dial = None;
                        self.reconnects.fetch_add(1, Ordering::Relaxed);
                        self.send_on_live(&mut s, id, &prefix, &req.bulk)
                    }
                    Err(e) => {
                        s.dial_fails = s.dial_fails.saturating_add(1);
                        // Capped shift: the ceiling is hit long before
                        // the shift could overflow.
                        let shift = s.dial_fails.min(16) - 1;
                        let ms = (DIAL_BACKOFF_BASE_MS << shift).min(DIAL_BACKOFF_MAX_MS);
                        s.next_dial = Some(Instant::now() + Duration::from_millis(ms));
                        Err(e)
                    }
                }
            }
        }
    }

    fn timeout(&self) -> Duration {
        self.timeout
    }

    fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Opcode;
    use bytes::Bytes;
    use std::io::Write;

    fn echo_registry() -> HandlerRegistry {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| Response::ok(req.body).with_bulk(req.bulk));
        reg.register_fn(Opcode::Stat, |_| Response::err(GkfsError::NotFound));
        reg
    }

    #[test]
    fn crc32_known_vector() {
        // The standard CRC32 check value (via gkfs_common::crc — the
        // transport no longer carries its own table).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn nodelay_set_on_both_ends() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 1).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        // One call guarantees the accept loop has parked the accepted
        // socket's clone in `conns`.
        ep.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap();
        // Dialed side: the live connection's write half.
        {
            let s = ep.conn.lock();
            let live = s.live.as_ref().expect("connection is live");
            assert!(live.writer.nodelay().unwrap(), "dialed socket must be TCP_NODELAY");
        }
        // Accepted side: the server's parked clone shares the fd (and
        // therefore the socket options) with the serving stream.
        {
            let conns = server.conns.lock();
            assert!(!conns.is_empty());
            for c in conns.iter() {
                assert!(c.nodelay().unwrap(), "accepted socket must be TCP_NODELAY");
            }
        }
        server.shutdown();
    }

    #[test]
    fn scratch_trims_after_oversized_frame() {
        let mut scratch = vec![0u8; SCRATCH_TRIM * 4];
        trim_scratch(&mut scratch);
        assert!(scratch.capacity() <= SCRATCH_TRIM * 2, "scratch must shrink");
        // Small buffers are left alone (no churn on the common path).
        let mut small = vec![0u8; 512];
        trim_scratch(&mut small);
        assert_eq!(small.len(), 512);
    }

    #[test]
    fn roundtrip_over_sockets() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let resp = ep
            .call(Request::new(Opcode::Ping, &b"over tcp"[..]).with_bulk(Bytes::from(vec![3u8; 4096])))
            .unwrap();
        assert_eq!(&resp.body[..], b"over tcp");
        assert_eq!(resp.bulk.len(), 4096);
        server.shutdown();
    }

    #[test]
    fn error_status_travels() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 1).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let resp = ep.call(Request::new(Opcode::Stat, &b""[..])).unwrap();
        assert!(matches!(resp.status, Status::Err(GkfsError::NotFound)));
        server.shutdown();
    }

    #[test]
    fn concurrent_calls_multiplex_one_socket() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let ep = &ep;
                s.spawn(move || {
                    for i in 0..100 {
                        let msg = format!("t{t}-i{i}");
                        let resp = ep
                            .call(Request::new(Opcode::Ping, Bytes::from(msg.clone())))
                            .unwrap();
                        assert_eq!(&resp.body[..], msg.as_bytes(), "responses must not cross");
                    }
                });
            }
        });
        assert_eq!(ep.pending_len(), 0, "no leaked pending slots");
        server.shutdown();
    }

    #[test]
    fn submitted_batch_multiplexes_one_socket() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let handles: Vec<ReplyHandle> = (0..32)
            .map(|i| {
                ep.submit(Request::new(Opcode::Ping, Bytes::from(format!("b{i}"))))
                    .unwrap()
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait(Duration::from_secs(10)).unwrap();
            assert_eq!(&resp.body[..], format!("b{i}").as_bytes());
        }
        assert_eq!(ep.pending_len(), 0, "no leaked pending slots");
        server.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails() {
        // Bind then immediately shut down to get a dead address.
        let server = TcpServer::bind("127.0.0.1:0", HandlerRegistry::new(), 1).unwrap();
        let addr = server.local_addr().to_string();
        server.shutdown();
        drop(server);
        // Either connect fails outright or the first call does.
        match TcpEndpoint::connect(&addr) {
            Err(_) => {}
            Ok(ep) => {
                let r = ep.call(Request::new(Opcode::Ping, &b""[..]));
                assert!(r.is_err());
            }
        }
    }

    #[test]
    fn large_bulk_payload() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let bulk = Bytes::from((0..(4 << 20)).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
        let resp = ep
            .call(Request::new(Opcode::Ping, &b""[..]).with_bulk(bulk.clone()))
            .unwrap();
        assert_eq!(resp.bulk, bulk);
        server.shutdown();
    }

    #[test]
    fn endpoint_survives_connection_reset() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        ep.call(Request::new(Opcode::Ping, &b"before"[..])).unwrap();
        assert_eq!(ep.reconnects(), 0);

        server.sever_connections();

        // The reset may fail one or two calls with a retryable error
        // while the endpoint notices and re-dials; it must recover
        // without the endpoint being rebuilt.
        let deadline = Instant::now() + Duration::from_secs(10);
        let resp = loop {
            match ep.call(Request::new(Opcode::Ping, &b"after"[..])) {
                Ok(r) => break r,
                Err(e) => {
                    assert!(e.is_retryable(), "reset must surface as retryable, got {e:?}");
                    assert!(Instant::now() < deadline, "endpoint never recovered");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        assert_eq!(&resp.body[..], b"after");
        assert!(ep.reconnects() >= 1, "recovery must go through a re-dial");
        server.shutdown();
    }

    #[test]
    fn in_flight_requests_fail_typed_on_reset() {
        // A slow handler so the request is in flight when the reset hits.
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| {
            std::thread::sleep(Duration::from_millis(300));
            Response::ok(req.body)
        });
        let server = TcpServer::bind("127.0.0.1:0", reg, 1).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let h = ep.submit(Request::new(Opcode::Ping, &b"slow"[..])).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        server.sever_connections();
        let t0 = Instant::now();
        let err = h.wait(Duration::from_secs(30)).unwrap_err();
        assert!(err.is_retryable(), "in-flight failure must be retryable: {err:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "reset must fail fast, not burn the timeout"
        );
        server.shutdown();
    }

    #[test]
    fn corrupt_reply_surfaces_as_corruption() {
        // A raw fake server that answers with a deliberately wrong
        // checksum: the client must classify it as Corruption, not a
        // generic connection error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut len_buf = [0u8; 4];
            s.read_exact(&mut len_buf).unwrap();
            let n = u32::from_le_bytes(len_buf) as usize;
            let mut buf = vec![0u8; n + 4]; // payload + its crc
            s.read_exact(&mut buf).unwrap();
            let payload = Response::ok(&b"x"[..]).encode();
            s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            s.write_all(&payload).unwrap();
            s.write_all(&(crc32(&payload) ^ 1).to_le_bytes()).unwrap();
            s.flush().unwrap();
            // Give the client a moment to read before we hang up.
            std::thread::sleep(Duration::from_millis(200));
        });
        let ep = TcpEndpoint::connect(&addr).unwrap();
        let err = ep.call(Request::new(Opcode::Ping, &b""[..])).unwrap_err();
        assert!(matches!(err, GkfsError::Corruption(_)), "got {err:?}");
        t.join().unwrap();
    }
}
