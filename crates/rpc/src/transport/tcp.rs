//! TCP transport.
//!
//! Real sockets, for running daemons as separate processes or on
//! separate machines. Frames are length-prefixed; each connection has
//! one reader thread, and responses are correlated to waiting callers
//! by request id, so one connection multiplexes any number of
//! concurrent calls (as Mercury does over its network plugins).
//! Submission is nonblocking: `submit` registers the pending slot and
//! writes the frame; the reader thread completes handles as responses
//! arrive, in whatever order the daemon finishes them.

use crate::handler::HandlerRegistry;
use crate::message::{Request, Response};
use crate::pool::{HandlerPool, SERVER_QUEUE_PER_WORKER};
use crate::stats::RpcStats;
use crate::transport::{Endpoint, EndpointOptions, ReplyHandle};
use crate::Status;
use crossbeam::channel::{bounded, Sender};
use gkfs_common::lock::{rank, OrderedMutex};
use gkfs_common::{GkfsError, Result};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted frame: 256 MiB guards against garbage length
/// prefixes from a confused peer.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<()> {
    let len = payload.len() as u32;
    if len > MAX_FRAME {
        return Err(GkfsError::Rpc(format!("frame too large: {len}")));
    }
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(GkfsError::Rpc(format!("frame too large: {len}")));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

fn closed_err() -> GkfsError {
    GkfsError::Rpc("connection closed".into())
}

/// A TCP daemon listener: accepts connections and serves requests on a
/// handler pool.
pub struct TcpServer {
    addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    stats: Arc<RpcStats>,
    accept_thread: OrderedMutex<Option<std::thread::JoinHandle<()>>>,
    /// Live connection sockets, closed forcibly on shutdown so that
    /// clients of a stopped daemon see errors instead of a silently
    /// still-working ghost server.
    conns: Arc<OrderedMutex<Vec<TcpStream>>>,
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an OS-assigned port; the actual
    /// address is available via [`TcpServer::local_addr`]) and start
    /// serving. The handler pool queue is bounded
    /// ([`SERVER_QUEUE_PER_WORKER`] slots per worker): when pipelining
    /// clients outrun the daemon, connection readers stall on the full
    /// queue and TCP flow control pushes back to the submitters
    /// instead of the queue growing without bound.
    pub fn bind(
        addr: &str,
        registry: HandlerRegistry,
        handler_threads: usize,
    ) -> Result<Arc<TcpServer>> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| GkfsError::Rpc(format!("bind {addr}: {e}")))?;
        let local = listener.local_addr().map_err(|e| GkfsError::Rpc(e.to_string()))?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RpcStats::default());
        let registry = Arc::new(registry);
        let threads = handler_threads.max(1);
        let pool = Arc::new(HandlerPool::bounded(
            threads,
            threads * SERVER_QUEUE_PER_WORKER,
        ));
        let conns: Arc<OrderedMutex<Vec<TcpStream>>> =
            Arc::new(OrderedMutex::new(rank::RPC_CONNS, Vec::new()));

        let accept = {
            let shutting_down = shutting_down.clone();
            let stats = stats.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("gkfs-tcp-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Responses are small framed messages: Nagle
                        // plus delayed ACKs would add milliseconds per
                        // round trip.
                        stream.set_nodelay(true).ok();
                        if let Ok(clone) = stream.try_clone() {
                            conns.lock().push(clone);
                        }
                        let registry = registry.clone();
                        let pool = pool.clone();
                        let stats = stats.clone();
                        let shutting_down = shutting_down.clone();
                        let spawned = std::thread::Builder::new()
                            .name("gkfs-tcp-conn".into())
                            .spawn(move || {
                                serve_connection(stream, registry, pool, stats, shutting_down)
                            });
                        // Thread exhaustion: dropping the stream hangs
                        // up on the peer (it can retry) instead of
                        // killing the accept loop for everyone.
                        if spawned.is_err() {
                            continue;
                        }
                    }
                })
                .map_err(|e| GkfsError::Rpc(format!("spawn accept thread: {e}")))?
        };

        Ok(Arc::new(TcpServer {
            addr: local,
            shutting_down,
            stats,
            accept_thread: OrderedMutex::new(rank::RPC_ACCEPT, Some(accept)),
            conns,
        }))
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stats.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// Stop accepting and wind down. In-flight requests on open
    /// connections complete; new connections are rejected.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection. The handle
        // comes out of the lock before the join: an `if let` on
        // `.lock().take()` would hold the guard for the accept loop's
        // whole wind-down (GKL002).
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept_thread.lock().take();
        if let Some(t) = accept {
            let _ = t.join();
        }
        // Sever every established connection: a stopped daemon must
        // look stopped to its clients.
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    stream: TcpStream,
    registry: Arc<HandlerRegistry>,
    pool: Arc<HandlerPool>,
    stats: Arc<RpcStats>,
    shutting_down: Arc<AtomicBool>,
) {
    let writer = Arc::new(OrderedMutex::new(
        rank::RPC_WRITER,
        match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    ));
    let mut reader = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => break, // peer closed or stream damaged: drop conn
        };
        let req = match Request::decode(&frame) {
            Ok(r) => r,
            Err(_) => break, // unparseable frame: protocol broken, drop
        };
        if shutting_down.load(Ordering::SeqCst) {
            let mut resp = Response::err(GkfsError::ShuttingDown);
            resp.id = req.id;
            let _ = write_frame(&mut writer.lock(), &resp.encode());
            continue;
        }
        stats.record_request(req.body.len(), req.bulk.len());
        let registry = registry.clone();
        let writer = writer.clone();
        let stats = stats.clone();
        pool.submit(move || {
            let resp = registry.dispatch(req);
            stats.record_response(
                matches!(resp.status, Status::Ok),
                resp.body.len(),
                resp.bulk.len(),
            );
            let _ = write_frame(&mut writer.lock(), &resp.encode());
        });
    }
}

/// Client handle to one TCP daemon. One socket, multiplexed: any
/// number of submitted requests share it, correlated by id.
pub struct TcpEndpoint {
    writer: OrderedMutex<TcpStream>,
    pending: Arc<OrderedMutex<HashMap<u64, Sender<Response>>>>,
    next_id: AtomicU64,
    timeout: Duration,
    closed: Arc<AtomicBool>,
}

impl TcpEndpoint {
    /// Connect to a daemon at `addr` with default options.
    pub fn connect(addr: &str) -> Result<Arc<TcpEndpoint>> {
        Self::connect_with(addr, EndpointOptions::default())
    }

    /// Connect with explicit [`EndpointOptions`].
    pub fn connect_with(addr: &str, opts: EndpointOptions) -> Result<Arc<TcpEndpoint>> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| GkfsError::Rpc(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        let reader = stream
            .try_clone()
            .map_err(|e| GkfsError::Rpc(e.to_string()))?;
        let pending: Arc<OrderedMutex<HashMap<u64, Sender<Response>>>> =
            Arc::new(OrderedMutex::new(rank::RPC_PENDING, HashMap::new()));
        let closed = Arc::new(AtomicBool::new(false));

        {
            let pending = pending.clone();
            let closed = closed.clone();
            std::thread::Builder::new()
                .name("gkfs-tcp-reader".into())
                .spawn(move || {
                    let mut reader = reader;
                    loop {
                        let frame = match read_frame(&mut reader) {
                            Ok(f) => f,
                            Err(_) => break,
                        };
                        let Ok(resp) = Response::decode(&frame) else {
                            break;
                        };
                        if let Some(tx) = pending.lock().remove(&resp.id) {
                            let _ = tx.send(resp);
                        }
                    }
                    // Order matters for the fail-fast guarantee:
                    // `closed` flips first, then the pending table is
                    // drained. A submitter that slips its slot in
                    // after the drain observes `closed` on its
                    // post-insert recheck and reaps the slot itself —
                    // either way every waiter's channel disconnects
                    // promptly instead of burning its full timeout.
                    closed.store(true, Ordering::SeqCst);
                    pending.lock().clear();
                })
                .map_err(|e| GkfsError::Rpc(format!("spawn reader thread: {e}")))?;
        }

        Ok(Arc::new(TcpEndpoint {
            writer: OrderedMutex::new(rank::RPC_WRITER, stream),
            pending,
            next_id: AtomicU64::new(1),
            timeout: opts.timeout,
            closed,
        }))
    }

    /// Number of submitted requests whose responses have not arrived
    /// yet (diagnostics; the pipelining tests assert nothing leaks).
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }
}

impl Endpoint for TcpEndpoint {
    fn submit(&self, mut req: Request) -> Result<ReplyHandle> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(closed_err());
        }
        req.id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id = req.id;
        let (tx, rx) = bounded::<Response>(1);
        self.pending.lock().insert(id, tx);
        let frame = req.encode();
        {
            let mut w = self.writer.lock();
            if let Err(e) = write_frame(&mut w, &frame) {
                self.pending.lock().remove(&id);
                return Err(e);
            }
        }
        // Close race: if the reader died between the check above and
        // our insert, it has already drained `pending` and will never
        // see the slot. Reap it ourselves so the handle disconnects
        // immediately instead of timing out.
        if self.closed.load(Ordering::SeqCst) {
            self.pending.lock().remove(&id);
        }
        let pending = Arc::clone(&self.pending);
        Ok(ReplyHandle::pending(rx)
            .on_disconnect(closed_err())
            .on_abandon(move || {
                pending.lock().remove(&id);
            }))
    }

    fn timeout(&self) -> Duration {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Opcode;
    use bytes::Bytes;

    fn echo_registry() -> HandlerRegistry {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| Response::ok(req.body).with_bulk(req.bulk));
        reg.register_fn(Opcode::Stat, |_| Response::err(GkfsError::NotFound));
        reg
    }

    #[test]
    fn roundtrip_over_sockets() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let resp = ep
            .call(Request::new(Opcode::Ping, &b"over tcp"[..]).with_bulk(Bytes::from(vec![3u8; 4096])))
            .unwrap();
        assert_eq!(&resp.body[..], b"over tcp");
        assert_eq!(resp.bulk.len(), 4096);
        server.shutdown();
    }

    #[test]
    fn error_status_travels() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 1).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let resp = ep.call(Request::new(Opcode::Stat, &b""[..])).unwrap();
        assert!(matches!(resp.status, Status::Err(GkfsError::NotFound)));
        server.shutdown();
    }

    #[test]
    fn concurrent_calls_multiplex_one_socket() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let ep = &ep;
                s.spawn(move || {
                    for i in 0..100 {
                        let msg = format!("t{t}-i{i}");
                        let resp = ep
                            .call(Request::new(Opcode::Ping, Bytes::from(msg.clone())))
                            .unwrap();
                        assert_eq!(&resp.body[..], msg.as_bytes(), "responses must not cross");
                    }
                });
            }
        });
        assert_eq!(ep.pending_len(), 0, "no leaked pending slots");
        server.shutdown();
    }

    #[test]
    fn submitted_batch_multiplexes_one_socket() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let handles: Vec<ReplyHandle> = (0..32)
            .map(|i| {
                ep.submit(Request::new(Opcode::Ping, Bytes::from(format!("b{i}"))))
                    .unwrap()
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait(Duration::from_secs(10)).unwrap();
            assert_eq!(&resp.body[..], format!("b{i}").as_bytes());
        }
        assert_eq!(ep.pending_len(), 0, "no leaked pending slots");
        server.shutdown();
    }

    #[test]
    fn connect_to_dead_server_fails() {
        // Bind then immediately shut down to get a dead address.
        let server = TcpServer::bind("127.0.0.1:0", HandlerRegistry::new(), 1).unwrap();
        let addr = server.local_addr().to_string();
        server.shutdown();
        drop(server);
        // Either connect fails outright or the first call does.
        match TcpEndpoint::connect(&addr) {
            Err(_) => {}
            Ok(ep) => {
                let r = ep.call(Request::new(Opcode::Ping, &b""[..]));
                assert!(r.is_err());
            }
        }
    }

    #[test]
    fn large_bulk_payload() {
        let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
        let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
        let bulk = Bytes::from((0..(4 << 20)).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
        let resp = ep
            .call(Request::new(Opcode::Ping, &b""[..]).with_bulk(bulk.clone()))
            .unwrap();
        assert_eq!(resp.bulk, bulk);
        server.shutdown();
    }
}
