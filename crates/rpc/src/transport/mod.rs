//! Transports: how a request reaches a daemon.
//!
//! Both transports implement [`Endpoint`], the client's view of one
//! daemon. The file-system layers above never know which transport is
//! in use — exactly Mercury's portability property that the paper
//! leans on ("GekkoFS should be hardware independent", §III).
//!
//! The API is **submission/completion**, mirroring Margo: a
//! nonblocking [`Endpoint::submit`] is `margo_iforward` (the request
//! is on the wire / on the handler pool when it returns) and
//! [`ReplyHandle::wait`] is `margo_wait`. The blocking
//! [`Endpoint::call`] is a convenience built from the two. Wide
//! striping only pays off when one client thread can keep many
//! daemons busy simultaneously (§III-B), which is exactly what
//! submit-all-then-wait-all enables.

use crate::message::{Request, Response};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use gkfs_common::{GkfsError, Result};
use std::time::Duration;

pub mod inproc;
pub mod tcp;

/// Default per-call timeout used by [`EndpointOptions::default`].
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Construction options shared by both transports.
///
/// One builder replaces the old `connect`/`connect_with_timeout` and
/// `endpoint`/`endpoint_with_timeout` constructor pairs:
///
/// ```ignore
/// let ep = TcpEndpoint::connect_with(addr, EndpointOptions::new().with_timeout(t))?;
/// let ep = server.endpoint_with(EndpointOptions::new().with_timeout(t));
/// ```
#[derive(Debug, Clone)]
pub struct EndpointOptions {
    /// Per-call timeout applied by [`Endpoint::call`]; also the
    /// timeout reported by [`Endpoint::timeout`] for callers that
    /// `wait` on submitted handles themselves.
    pub timeout: Duration,
}

impl Default for EndpointOptions {
    fn default() -> EndpointOptions {
        EndpointOptions {
            timeout: DEFAULT_TIMEOUT,
        }
    }
}

impl EndpointOptions {
    /// Options with all defaults.
    pub fn new() -> EndpointOptions {
        EndpointOptions::default()
    }

    /// Set the per-call timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> EndpointOptions {
        self.timeout = timeout;
        self
    }
}

enum ReplySource {
    /// Outcome will arrive on this channel (transport completion). The
    /// transport sends `Ok(resp)` on a normal reply, or `Err(e)` to
    /// fail the request with a *typed* cause (connection reset, frame
    /// corruption) so callers can classify it for retry.
    Waiting(Receiver<Result<Response>>),
    /// Result was known at submission time (test doubles, fast errors).
    Ready(Option<Result<Response>>),
}

/// An in-flight RPC: the completion half of [`Endpoint::submit`].
///
/// The transport completes the handle by sending the response on its
/// channel. If the transport dies first (connection closed, server
/// shut down), the channel disconnects and `wait` fails fast with the
/// transport's disconnect error instead of burning the full timeout.
pub struct ReplyHandle {
    source: ReplySource,
    /// Error surfaced when the transport drops the completion channel
    /// without responding.
    disconnect: GkfsError,
    /// Cleanup run if the caller gives up (timeout or drop) before the
    /// response arrives — transports use it to reap their pending-slot
    /// so abandoned requests do not leak correlation entries.
    abandon: Option<Box<dyn FnOnce() + Send>>,
}

impl ReplyHandle {
    /// A handle completed by sending on the paired channel.
    pub fn pending(rx: Receiver<Result<Response>>) -> ReplyHandle {
        ReplyHandle {
            source: ReplySource::Waiting(rx),
            disconnect: GkfsError::Rpc("connection closed".into()),
            abandon: None,
        }
    }

    /// A handle whose outcome is already known (test doubles).
    pub fn ready(result: Result<Response>) -> ReplyHandle {
        ReplyHandle {
            source: ReplySource::Ready(Some(result)),
            disconnect: GkfsError::Rpc("connection closed".into()),
            abandon: None,
        }
    }

    /// Set the error reported when the transport disconnects before
    /// responding.
    pub fn on_disconnect(mut self, e: GkfsError) -> ReplyHandle {
        self.disconnect = e;
        self
    }

    /// Set the cleanup hook run when the handle is abandoned (timeout
    /// or drop) before completion.
    pub fn on_abandon(mut self, f: impl FnOnce() + Send + 'static) -> ReplyHandle {
        self.abandon = Some(Box::new(f));
        self
    }

    /// Block until the response arrives (transport-level success; the
    /// application status still rides inside the [`Response`]).
    ///
    /// * response arrived → `Ok(resp)`
    /// * transport failed the request with a typed cause (connection
    ///   reset, corrupt frame) → that error, immediately
    /// * transport died without a cause → the disconnect error,
    ///   immediately
    /// * `timeout` elapsed → `Err(Timeout)`, and the pending slot is
    ///   reaped so a late response cannot leak it
    pub fn wait(mut self, timeout: Duration) -> Result<Response> {
        match &mut self.source {
            ReplySource::Ready(result) => {
                self.abandon = None;
                match result.take() {
                    Some(r) => r,
                    // Unreachable in practice (`wait` consumes the
                    // handle), but a closed-out handle should read as
                    // an RPC failure, not a daemon panic.
                    None => Err(GkfsError::Rpc("reply already consumed".into())),
                }
            }
            ReplySource::Waiting(rx) => match rx.recv_timeout(timeout) {
                Ok(outcome) => {
                    // Completed either way: the transport already
                    // reaped the slot.
                    self.abandon = None;
                    outcome
                }
                Err(RecvTimeoutError::Disconnected) => Err(self.disconnect.clone()),
                Err(RecvTimeoutError::Timeout) => Err(GkfsError::Timeout),
            },
        }
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if let Some(f) = self.abandon.take() {
            f();
        }
    }
}

/// A client's handle to one daemon.
///
/// Implementations must be usable concurrently from many threads; the
/// client library pipelines chunk operations by submitting to every
/// responsible daemon before waiting on any reply.
pub trait Endpoint: Send + Sync {
    /// Nonblocking submission (`margo_iforward`): hand `req` to the
    /// transport and return immediately with a [`ReplyHandle`].
    /// Transport-level submission failures surface as `Err`;
    /// application errors ride inside the eventual [`Response`].
    fn submit(&self, req: Request) -> Result<ReplyHandle>;

    /// The per-call timeout [`Endpoint::call`] applies, exposed so
    /// callers driving `submit`/`wait` themselves honor the endpoint's
    /// configuration.
    fn timeout(&self) -> Duration {
        DEFAULT_TIMEOUT
    }

    /// Blocking convenience: `submit` + `wait` (`margo_forward`).
    fn call(&self, req: Request) -> Result<Response> {
        self.submit(req)?.wait(self.timeout())
    }

    /// How many times this endpoint has re-established its underlying
    /// connection. Transports without a connection (in-process, test
    /// doubles) report zero forever.
    fn reconnects(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn ready_handle_returns_immediately() {
        let h = ReplyHandle::ready(Ok(Response::ok(&b"now"[..])));
        let resp = h.wait(Duration::from_millis(1)).unwrap();
        assert_eq!(&resp.body[..], b"now");
    }

    #[test]
    fn disconnect_fails_fast_with_custom_error() {
        let (tx, rx) = bounded::<Result<Response>>(1);
        let h = ReplyHandle::pending(rx).on_disconnect(GkfsError::ShuttingDown);
        drop(tx);
        let t0 = std::time::Instant::now();
        assert!(matches!(
            h.wait(Duration::from_secs(30)),
            Err(GkfsError::ShuttingDown)
        ));
        assert!(t0.elapsed() < Duration::from_secs(1), "must not burn the timeout");
    }

    #[test]
    fn typed_failure_travels_over_the_channel() {
        let (tx, rx) = bounded::<Result<Response>>(1);
        let h = ReplyHandle::pending(rx);
        tx.send(Err(GkfsError::Corruption("bad frame".into()))).unwrap();
        assert!(matches!(
            h.wait(Duration::from_secs(1)),
            Err(GkfsError::Corruption(_))
        ));
    }

    #[test]
    fn timeout_and_drop_run_the_abandon_hook_once() {
        let (_tx, rx) = bounded::<Result<Response>>(1);
        let reaped = Arc::new(AtomicBool::new(false));
        let flag = reaped.clone();
        let h = ReplyHandle::pending(rx).on_abandon(move || {
            assert!(!flag.swap(true, Ordering::SeqCst), "hook ran twice");
        });
        assert!(matches!(
            h.wait(Duration::from_millis(5)),
            Err(GkfsError::Timeout)
        ));
        assert!(reaped.load(Ordering::SeqCst), "timeout must reap the slot");
    }

    #[test]
    fn completion_skips_the_abandon_hook() {
        let (tx, rx) = bounded::<Result<Response>>(1);
        let reaped = Arc::new(AtomicBool::new(false));
        let flag = reaped.clone();
        let h = ReplyHandle::pending(rx).on_abandon(move || {
            flag.store(true, Ordering::SeqCst);
        });
        tx.send(Ok(Response::ok(&b"done"[..]))).unwrap();
        h.wait(Duration::from_secs(1)).unwrap();
        assert!(!reaped.load(Ordering::SeqCst), "completed handles are not abandoned");
    }
}
