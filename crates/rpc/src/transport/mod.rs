//! Transports: how a request reaches a daemon.
//!
//! Both transports implement [`Endpoint`], the client's view of one
//! daemon. The file-system layers above never know which transport is
//! in use — exactly Mercury's portability property that the paper
//! leans on ("GekkoFS should be hardware independent", §III).

use crate::message::{Request, Response};
use gkfs_common::Result;

pub mod inproc;
pub mod tcp;

/// A client's handle to one daemon: a blocking request/response call.
///
/// Implementations must be usable concurrently from many threads; the
/// client library fans out chunk operations over endpoints with scoped
/// threads.
pub trait Endpoint: Send + Sync {
    /// Issue `req` and wait for the response (transport errors surface
    /// as `Err`; application errors ride inside the `Response` status).
    fn call(&self, req: Request) -> Result<Response>;
}
