//! In-process transport.
//!
//! Daemon and client live in the same address space (the configuration
//! used by the in-process cluster, tests, and benchmarks). A
//! submission enqueues the request on the daemon's handler pool and
//! returns immediately; the handler completes the reply handle when it
//! finishes. Bulk payloads are `Bytes`, so data moves by reference
//! with zero copies — the moral equivalent of the paper's RDMA path,
//! where "the client exposes the relevant chunk memory region to the
//! daemon".
//!
//! Since the vectored-TCP rework this transport is no longer the
//! only zero-copy path: TCP reaches the same reply shape by handing
//! the borrowed bulk to `FrameWriter` as writev segments. What stays
//! unique here is the *request* direction (TCP must still read
//! request bytes off the socket into a buffer; in-proc passes the
//! client's own `Bytes` through), which is why client-write
//! microbenchmarks on the in-process cluster run a copy cheaper than
//! their TCP equivalents.

use crate::handler::HandlerRegistry;
use crate::message::{Request, Response};
use crate::pool::{HandlerPool, SERVER_QUEUE_PER_WORKER};
use crate::stats::RpcStats;
use crate::transport::{Endpoint, EndpointOptions, ReplyHandle};
use crate::Status;
use gkfs_common::{GkfsError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server half: the registry plus its handler pool. One per daemon.
pub struct RpcServer {
    registry: Arc<HandlerRegistry>,
    pool: HandlerPool,
    stats: Arc<RpcStats>,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
}

impl RpcServer {
    /// Construct over a registry with `handler_threads` workers. The
    /// pool queue is bounded (see [`SERVER_QUEUE_PER_WORKER`]): once
    /// nonblocking clients have that many submissions outstanding,
    /// further `submit`s block until workers drain the backlog —
    /// back-pressure instead of unbounded queue growth.
    pub fn new(registry: HandlerRegistry, handler_threads: usize) -> Arc<RpcServer> {
        let threads = handler_threads.max(1);
        Arc::new(RpcServer {
            registry: Arc::new(registry),
            pool: HandlerPool::bounded(threads, threads * SERVER_QUEUE_PER_WORKER),
            stats: Arc::new(RpcStats::default()),
            shutting_down: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
        })
    }

    /// Stats.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// Refuse new requests from now on (in-flight ones complete).
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Is shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Create a client endpoint connected to this server with default
    /// options.
    pub fn endpoint(self: &Arc<RpcServer>) -> Arc<InprocEndpoint> {
        self.endpoint_with(EndpointOptions::default())
    }

    /// Create a client endpoint with explicit [`EndpointOptions`].
    pub fn endpoint_with(self: &Arc<RpcServer>, opts: EndpointOptions) -> Arc<InprocEndpoint> {
        Arc::new(InprocEndpoint {
            server: Arc::clone(self),
            timeout: opts.timeout,
        })
    }
}

/// Client half: a handle to one in-process daemon.
pub struct InprocEndpoint {
    server: Arc<RpcServer>,
    timeout: Duration,
}

impl Endpoint for InprocEndpoint {
    fn submit(&self, mut req: Request) -> Result<ReplyHandle> {
        if self.server.is_shutting_down() {
            return Err(GkfsError::ShuttingDown);
        }
        req.id = self.server.next_id.fetch_add(1, Ordering::Relaxed);
        self.server.stats.record_request(req.body.len(), req.bulk.len());

        let (tx, rx) = crossbeam::channel::bounded::<Result<Response>>(1);
        let registry = Arc::clone(&self.server.registry);
        let stats = Arc::clone(&self.server.stats);
        self.server.pool.submit(move || {
            let resp = registry.dispatch(req);
            stats.record_response(
                matches!(resp.status, Status::Ok),
                resp.body.len(),
                resp.bulk.len(),
            );
            let _ = tx.send(Ok(resp));
        });
        // If the pool is torn down with the job undrained, the sender
        // drops and the handle disconnects — surface that as shutdown.
        Ok(ReplyHandle::pending(rx).on_disconnect(GkfsError::ShuttingDown))
    }

    fn timeout(&self) -> Duration {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Opcode;
    use bytes::Bytes;

    fn echo_server(threads: usize) -> Arc<RpcServer> {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| {
            Response::ok(req.body).with_bulk(req.bulk)
        });
        reg.register_fn(Opcode::Stat, |_req| {
            Response::err(GkfsError::NotFound)
        });
        RpcServer::new(reg, threads)
    }

    #[test]
    fn roundtrip_with_bulk() {
        let server = echo_server(2);
        let ep = server.endpoint();
        let bulk = Bytes::from(vec![7u8; 1 << 20]);
        let resp = ep
            .call(Request::new(Opcode::Ping, &b"hello"[..]).with_bulk(bulk.clone()))
            .unwrap();
        assert_eq!(&resp.body[..], b"hello");
        // Zero-copy: the response bulk is the very same allocation.
        assert_eq!(resp.bulk.as_ptr(), bulk.as_ptr());
    }

    #[test]
    fn remote_errors_surface_in_status() {
        let server = echo_server(1);
        let ep = server.endpoint();
        let resp = ep.call(Request::new(Opcode::Stat, &b""[..])).unwrap();
        assert!(matches!(resp.status, Status::Err(GkfsError::NotFound)));
        assert!(resp.into_result().is_err());
    }

    #[test]
    fn shutdown_refuses_new_calls() {
        let server = echo_server(1);
        let ep = server.endpoint();
        server.begin_shutdown();
        assert!(matches!(
            ep.call(Request::new(Opcode::Ping, &b""[..])),
            Err(GkfsError::ShuttingDown)
        ));
        assert!(matches!(
            ep.submit(Request::new(Opcode::Ping, &b""[..])),
            Err(GkfsError::ShuttingDown)
        ));
    }

    #[test]
    fn submit_pipelines_before_wait() {
        // One worker, three submissions: all three must be accepted
        // before any wait — the nonblocking property itself.
        let server = echo_server(1);
        let ep = server.endpoint();
        let handles: Vec<ReplyHandle> = (0..3)
            .map(|i| {
                ep.submit(Request::new(Opcode::Ping, Bytes::from(format!("m{i}"))))
                    .unwrap()
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait(Duration::from_secs(5)).unwrap();
            assert_eq!(&resp.body[..], format!("m{i}").as_bytes());
        }
    }

    #[test]
    fn concurrent_clients() {
        let server = echo_server(4);
        let eps: Vec<_> = (0..8).map(|_| server.endpoint()).collect();
        std::thread::scope(|s| {
            for (i, ep) in eps.iter().enumerate() {
                s.spawn(move || {
                    for j in 0..200 {
                        let body = format!("{i}:{j}");
                        let resp = ep
                            .call(Request::new(Opcode::Ping, Bytes::from(body.clone())))
                            .unwrap();
                        assert_eq!(&resp.body[..], body.as_bytes());
                    }
                });
            }
        });
        let (req, resp, err, _, _) = server.stats().snapshot();
        assert_eq!(req, 1600);
        assert_eq!(resp, 1600);
        assert_eq!(err, 0);
    }
}
