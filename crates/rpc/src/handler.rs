//! Opcode dispatch — the registered-RPC table.
//!
//! A daemon builds a [`HandlerRegistry`] once at startup, registering
//! one handler per [`Opcode`] (Mercury's `HG_Register`). The registry
//! is immutable after construction and shared read-only across the
//! handler pool, so dispatch is lock-free.

use crate::message::{Opcode, Request, Response};
use gkfs_common::GkfsError;
use std::collections::HashMap;
use std::sync::Arc;

/// A server-side RPC handler. Handlers run concurrently on the pool
/// and must be `Send + Sync`.
pub trait Handler: Send + Sync {
    /// Fn.
    fn handle(&self, req: Request) -> Response;
}

/// Blanket impl so plain closures register directly.
pub struct HandlerFn<F>(pub F);

impl<F> Handler for HandlerFn<F>
where
    F: Fn(Request) -> Response + Send + Sync,
{
    fn handle(&self, req: Request) -> Response {
        (self.0)(req)
    }
}

/// Immutable opcode → handler table.
#[derive(Default)]
pub struct HandlerRegistry {
    table: HashMap<u16, Arc<dyn Handler>>,
}

impl HandlerRegistry {
    /// Create an empty registry.
    pub fn new() -> HandlerRegistry {
        HandlerRegistry::default()
    }

    /// Register `handler` for `opcode`. Panics on double registration —
    /// that is a daemon construction bug.
    pub fn register(&mut self, opcode: Opcode, handler: Arc<dyn Handler>) {
        let prev = self.table.insert(opcode as u16, handler);
        assert!(prev.is_none(), "duplicate handler for {opcode:?}");
    }

    /// Convenience: register a closure.
    pub fn register_fn<F>(&mut self, opcode: Opcode, f: F)
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        self.register(opcode, Arc::new(HandlerFn(f)));
    }

    /// Dispatch a request. Unknown opcodes produce an error response
    /// (never a panic — the input crossed a trust boundary).
    pub fn dispatch(&self, req: Request) -> Response {
        let id = req.id;
        let mut resp = match self.table.get(&(req.opcode as u16)) {
            Some(h) => h.handle(req),
            None => Response::err(GkfsError::Rpc(format!(
                "no handler registered for {:?}",
                req.opcode
            ))),
        };
        resp.id = id;
        resp
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use bytes::Bytes;

    #[test]
    fn dispatch_routes_by_opcode() {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |_req| Response::ok(&b"pong"[..]));
        reg.register_fn(Opcode::Stat, |req| {
            Response::ok(Bytes::from(format!("stat:{}", req.body.len())))
        });
        let mut req = Request::new(Opcode::Ping, &b""[..]);
        req.id = 42;
        let resp = reg.dispatch(req);
        assert_eq!(resp.id, 42, "correlation id preserved");
        assert_eq!(&resp.body[..], b"pong");

        let resp = reg.dispatch(Request::new(Opcode::Stat, &b"abc"[..]));
        assert_eq!(&resp.body[..], b"stat:3");
    }

    #[test]
    fn unknown_opcode_is_error_response() {
        let reg = HandlerRegistry::new();
        let resp = reg.dispatch(Request::new(Opcode::Create, &b""[..]));
        assert!(matches!(resp.status, Status::Err(GkfsError::Rpc(_))));
    }

    #[test]
    #[should_panic(expected = "duplicate handler")]
    fn double_registration_panics() {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |_| Response::ok(&b""[..]));
        reg.register_fn(Opcode::Ping, |_| Response::ok(&b""[..]));
    }
}
