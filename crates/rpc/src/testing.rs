//! Test doubles for fault injection.
//!
//! GekkoFS is explicitly *not* fault tolerant (§III-A discussion — a
//! temporary FS trades resilience for speed), so the property worth
//! testing is not recovery but **clean surfacing**: when a daemon
//! misbehaves, clients must get errors, not hangs, corruption, or
//! panics. These wrappers inject failures at the endpoint boundary.

use crate::handler::HandlerRegistry;
use crate::message::{Opcode, Request, Response};
use crate::transport::{Endpoint, ReplyHandle};
use gkfs_common::{GkfsError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Register a "sleepy echo" handler on `opcode`: each request sleeps
/// for the number of milliseconds in the first two bytes of its body
/// (little-endian u16; missing/short body = no sleep), then echoes
/// body and bulk back. With a wide handler pool this lets tests force
/// responses to complete **out of submission order** — the scenario
/// the pipelined submit/wait path must correlate correctly.
pub fn register_sleepy_echo(reg: &mut HandlerRegistry, opcode: Opcode) {
    reg.register_fn(opcode, |req| {
        let ms = if req.body.len() >= 2 {
            u16::from_le_bytes([req.body[0], req.body[1]]) as u64
        } else {
            0
        };
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
        Response::ok(req.body).with_bulk(req.bulk)
    });
}

/// Encode a sleepy-echo body: the delay prefix followed by `tag`.
pub fn sleepy_body(delay_ms: u16, tag: &[u8]) -> Vec<u8> {
    let mut body = delay_ms.to_le_bytes().to_vec();
    body.extend_from_slice(tag);
    body
}

/// Fails every `fail_every`-th call with an RPC error (1 = every call).
///
/// Two injection points, mirroring where a real network loses things:
///
/// * **submit-path** ([`FlakyEndpoint::new`]): the submission itself
///   errors; the daemon never sees the request.
/// * **reply-path** ([`FlakyEndpoint::new_reply_path`]): the request
///   is *delivered and applied* by the daemon, but the reply is lost
///   and the waiter gets an error. This is the case that makes blind
///   retry of non-idempotent operations dangerous — a retried create
///   can find its own first attempt already applied — so the retry
///   layer's idempotency handling is tested against exactly this.
pub struct FlakyEndpoint {
    inner: Arc<dyn Endpoint>,
    fail_every: u64,
    fail_replies: bool,
    calls: AtomicU64,
}

impl FlakyEndpoint {
    /// Wrap `inner`, failing every `fail_every`-th **submission**.
    pub fn new(inner: Arc<dyn Endpoint>, fail_every: u64) -> Arc<FlakyEndpoint> {
        assert!(fail_every >= 1);
        Arc::new(FlakyEndpoint {
            inner,
            fail_every,
            fail_replies: false,
            calls: AtomicU64::new(0),
        })
    }

    /// Wrap `inner`, losing every `fail_every`-th **reply**: the
    /// request is forwarded (and applied) but its wait fails.
    pub fn new_reply_path(inner: Arc<dyn Endpoint>, fail_every: u64) -> Arc<FlakyEndpoint> {
        assert!(fail_every >= 1);
        Arc::new(FlakyEndpoint {
            inner,
            fail_every,
            fail_replies: true,
            calls: AtomicU64::new(0),
        })
    }

    /// Calls attempted so far (including failed ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Endpoint for FlakyEndpoint {
    fn submit(&self, req: Request) -> Result<ReplyHandle> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.fail_every) {
            if self.fail_replies {
                // Deliver the request for real — the daemon applies
                // it — then lose the reply. Dropping the inner handle
                // reaps its pending slot; the caller's wait sees a
                // retryable error, as with a reply lost on the wire.
                let _ = self.inner.submit(req)?;
                return Ok(ReplyHandle::ready(Err(GkfsError::Rpc(
                    "injected reply fault".into(),
                ))));
            }
            return Err(GkfsError::Rpc("injected fault".into()));
        }
        self.inner.submit(req)
    }

    fn timeout(&self) -> Duration {
        self.inner.timeout()
    }

    fn reconnects(&self) -> u64 {
        self.inner.reconnects()
    }
}

/// Delays every submission by a fixed amount before forwarding — a
/// slow or congested daemon (the delay sits on the submission path,
/// so even nonblocking callers feel it, like a full send queue).
pub struct SlowEndpoint {
    inner: Arc<dyn Endpoint>,
    delay: Duration,
}

impl SlowEndpoint {
    /// Wrap `inner` with the injection policy.
    pub fn new(inner: Arc<dyn Endpoint>, delay: Duration) -> Arc<SlowEndpoint> {
        Arc::new(SlowEndpoint { inner, delay })
    }
}

impl Endpoint for SlowEndpoint {
    fn submit(&self, req: Request) -> Result<ReplyHandle> {
        std::thread::sleep(self.delay);
        self.inner.submit(req)
    }

    fn timeout(&self) -> Duration {
        self.inner.timeout()
    }
}

/// Refuses everything — a dead daemon.
pub struct DeadEndpoint;

impl Endpoint for DeadEndpoint {
    fn submit(&self, _req: Request) -> Result<ReplyHandle> {
        Err(GkfsError::Rpc("daemon unreachable".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc::RpcServer;
    use crate::transport::EndpointOptions;

    fn echo() -> Arc<RpcServer> {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| Response::ok(req.body));
        RpcServer::new(reg, 1)
    }

    #[test]
    fn flaky_fails_on_schedule() {
        let server = echo();
        let flaky = FlakyEndpoint::new(server.endpoint(), 3);
        let mut outcomes = Vec::new();
        for _ in 0..9 {
            outcomes.push(flaky.call(Request::new(Opcode::Ping, &b""[..])).is_ok());
        }
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(flaky.calls(), 9);
    }

    #[test]
    fn flaky_reply_path_applies_op_but_loses_reply() {
        // The property that motivates idempotency-aware retry: the
        // caller sees a failure, yet the daemon executed the request.
        let applied = Arc::new(AtomicU64::new(0));
        let counter = applied.clone();
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, move |req| {
            counter.fetch_add(1, Ordering::Relaxed);
            Response::ok(req.body)
        });
        let server = RpcServer::new(reg, 1);
        let flaky = FlakyEndpoint::new_reply_path(server.endpoint(), 2);

        assert!(flaky.call(Request::new(Opcode::Ping, &b""[..])).is_ok());
        let second = flaky.call(Request::new(Opcode::Ping, &b""[..]));
        assert!(matches!(second, Err(GkfsError::Rpc(_))));

        // Both requests reached the daemon despite the second's error.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while applied.load(Ordering::Relaxed) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(applied.load(Ordering::Relaxed), 2, "lost-reply op must still apply");
    }

    #[test]
    fn dead_endpoint_always_errors() {
        let dead = DeadEndpoint;
        for _ in 0..3 {
            assert!(matches!(
                dead.call(Request::new(Opcode::Ping, &b""[..])),
                Err(GkfsError::Rpc(_))
            ));
        }
    }

    #[test]
    fn slow_endpoint_delays_but_succeeds() {
        let server = echo();
        let slow = SlowEndpoint::new(server.endpoint(), Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        slow.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn inproc_timeout_fires_on_stuck_handler() {
        // A handler that never returns promptly: the endpoint's
        // timeout must fire rather than hang the client.
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| {
            std::thread::sleep(Duration::from_millis(300));
            Response::ok(req.body)
        });
        let server = RpcServer::new(reg, 1);
        let ep = server
            .endpoint_with(EndpointOptions::new().with_timeout(Duration::from_millis(30)));
        let t0 = std::time::Instant::now();
        let r = ep.call(Request::new(Opcode::Ping, &b""[..]));
        assert!(matches!(r, Err(GkfsError::Timeout)));
        assert!(t0.elapsed() < Duration::from_millis(200), "timed out promptly");
    }

    #[test]
    fn sleepy_echo_sleeps_and_echoes() {
        let mut reg = HandlerRegistry::new();
        register_sleepy_echo(&mut reg, Opcode::Ping);
        let server = RpcServer::new(reg, 1);
        let ep = server.endpoint();
        let body = sleepy_body(30, b"tagged");
        let t0 = std::time::Instant::now();
        let resp = ep
            .call(Request::new(Opcode::Ping, bytes::Bytes::from(body.clone())))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(&resp.body[..], &body[..]);
    }
}
