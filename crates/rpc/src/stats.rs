//! RPC-layer counters, shared by both transports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one endpoint or server. All relaxed — they feed
/// benchmarks and diagnostics, not control flow.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Requests accepted.
    pub requests: AtomicU64,
    /// Responses produced.
    pub responses: AtomicU64,
    /// Responses carrying an error status.
    pub errors: AtomicU64,
    /// Header/body bytes moved.
    pub body_bytes: AtomicU64,
    /// Bulk payload bytes moved.
    pub bulk_bytes: AtomicU64,
}

impl RpcStats {
    /// Record request.
    pub fn record_request(&self, body: usize, bulk: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.body_bytes.fetch_add(body as u64, Ordering::Relaxed);
        self.bulk_bytes.fetch_add(bulk as u64, Ordering::Relaxed);
    }

    /// Record response.
    pub fn record_response(&self, ok: bool, body: usize, bulk: usize) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.body_bytes.fetch_add(body as u64, Ordering::Relaxed);
        self.bulk_bytes.fetch_add(bulk as u64, Ordering::Relaxed);
    }

    /// `(requests, responses, errors, body_bytes, bulk_bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.responses.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.body_bytes.load(Ordering::Relaxed),
            self.bulk_bytes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = RpcStats::default();
        s.record_request(10, 100);
        s.record_response(true, 5, 0);
        s.record_response(false, 0, 0);
        let (req, resp, err, body, bulk) = s.snapshot();
        assert_eq!(req, 1);
        assert_eq!(resp, 2);
        assert_eq!(err, 1);
        assert_eq!(body, 15);
        assert_eq!(bulk, 100);
    }
}
