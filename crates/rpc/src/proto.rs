//! File-system RPC body encodings — the contract between the GekkoFS
//! client library and the daemon.
//!
//! Each request/response struct encodes into the body of a
//! [`crate::Request`]/[`crate::Response`] frame with the
//! [`gkfs_common::wire`] codec. Bulk data (chunk contents) never
//! appears here — it rides the frame's out-of-band bulk payload as a
//! *borrowed* `Bytes` handle all the way to the transport: in-proc
//! passes it by refcount, TCP hands it to
//! [`gkfs_common::wire::FrameWriter`] as a vectored segment. Keeping
//! chunk bytes out of these encoders is what makes the daemon's
//! zero-copy reply shape (`read_reply_copy_bytes == 0`) possible —
//! an encoder that pulled bulk into its body `Vec` would reintroduce
//! the assembly copy the data plane was rebuilt to remove.

use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};

/// `Create`: make a metadata entry on its owning daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateReq {
    /// Path.
    pub path: String,
    /// 0 = file, 1 = directory (mirrors `FileKind`'s wire form).
    pub kind: u8,
    /// Mode.
    pub mode: u32,
    /// `O_EXCL` semantics: fail with `Exists` if the entry is present.
    /// Without it, creating an existing entry is a no-op success.
    pub exclusive: bool,
    /// Creation timestamp chosen by the client.
    pub now_ns: u64,
}

impl CreateReq {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.path)
            .u8(self.kind)
            .u32(self.mode)
            .u8(self.exclusive as u8)
            .u64(self.now_ns);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<CreateReq> {
        let mut d = Decoder::new(buf);
        let r = CreateReq {
            path: d.str()?.to_string(),
            kind: d.u8()?,
            mode: d.u32()?,
            exclusive: d.u8()? != 0,
            now_ns: d.u64()?,
        };
        d.finish()?;
        Ok(r)
    }
}

/// Requests that carry only a path (`Stat`, `RemoveMeta`, `ReadDir`,
/// `RemoveChunks`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathReq {
    /// Path.
    pub path: String,
}

impl PathReq {
    /// Build a request for `path`.
    pub fn new(path: impl Into<String>) -> PathReq {
        PathReq { path: path.into() }
    }

    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.path);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<PathReq> {
        let mut d = Decoder::new(buf);
        let r = PathReq {
            path: d.str()?.to_string(),
        };
        d.finish()?;
        Ok(r)
    }
}

/// `UpdateSize`: merge a size candidate into a file's metadata
/// (size = max(size, candidate)); the read-free write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateSizeReq {
    /// Path.
    pub path: String,
    /// Candidate size (write offset + length).
    pub size: u64,
    /// Mtime ns.
    pub mtime_ns: u64,
}

impl UpdateSizeReq {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.path).u64(self.size).u64(self.mtime_ns);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<UpdateSizeReq> {
        let mut d = Decoder::new(buf);
        let r = UpdateSizeReq {
            path: d.str()?.to_string(),
            size: d.u64()?,
            mtime_ns: d.u64()?,
        };
        d.finish()?;
        Ok(r)
    }
}

/// `TruncateMeta`: set an exact (possibly smaller) size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncateMetaReq {
    /// Path.
    pub path: String,
    /// New size.
    pub new_size: u64,
    /// Mtime ns.
    pub mtime_ns: u64,
}

impl TruncateMetaReq {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.path).u64(self.new_size).u64(self.mtime_ns);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<TruncateMetaReq> {
        let mut d = Decoder::new(buf);
        let r = TruncateMetaReq {
            path: d.str()?.to_string(),
            new_size: d.u64()?,
            mtime_ns: d.u64()?,
        };
        d.finish()?;
        Ok(r)
    }
}

/// One directory entry in a `ReadDir` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirentWire {
    /// Name.
    pub name: String,
    /// 0 = file, 1 = directory.
    pub kind: u8,
    /// Size in bytes (0 for directories).
    pub size: u64,
}

/// `ReadDir` response: the direct children this daemon knows about.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadDirResp {
    /// Entries.
    pub entries: Vec<DirentWire>,
}

impl ReadDirResp {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.entries.len() as u32);
        for ent in &self.entries {
            e.str(&ent.name).u8(ent.kind).u64(ent.size);
        }
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<ReadDirResp> {
        let mut d = Decoder::new(buf);
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(DirentWire {
                name: d.str()?.to_string(),
                kind: d.u8()?,
                size: d.u64()?,
            });
        }
        d.finish()?;
        Ok(ReadDirResp { entries })
    }
}

/// One chunk-local operation inside a read or write batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkOp {
    /// Chunk id.
    pub chunk_id: u64,
    /// Offset within the chunk.
    pub offset: u64,
    /// Bytes to read/write in this chunk.
    pub len: u64,
}

/// `WriteChunks` / `ReadChunks`: a batch of chunk operations for one
/// file on one daemon. For writes, the frame's bulk payload carries
/// the concatenated data in `ops` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkBatchReq {
    /// Path.
    pub path: String,
    /// Ops.
    pub ops: Vec<ChunkOp>,
}

impl ChunkBatchReq {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.path);
        e.u32(self.ops.len() as u32);
        for op in &self.ops {
            e.u64(op.chunk_id).u64(op.offset).u64(op.len);
        }
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<ChunkBatchReq> {
        let mut d = Decoder::new(buf);
        let path = d.str()?.to_string();
        let n = d.u32()? as usize;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(ChunkOp {
                chunk_id: d.u64()?,
                offset: d.u64()?,
                len: d.u64()?,
            });
        }
        d.finish()?;
        Ok(ChunkBatchReq { path, ops })
    }

    /// Total bytes named by the batch, or `None` when the
    /// wire-controlled lens overflow `u64` (a hostile batch that a
    /// wrapping sum would pass off as small).
    pub fn total_len(&self) -> Option<u64> {
        self.ops.iter().try_fold(0u64, |a, o| a.checked_add(o.len))
    }
}

/// `ReadChunks` response body: per-op byte counts actually read; the
/// data itself is in the frame's bulk payload, concatenated in op
/// order (short reads shrink their segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadChunksResp {
    /// Lens.
    pub lens: Vec<u64>,
}

impl ReadChunksResp {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.lens.len() as u32);
        for l in &self.lens {
            e.u64(*l);
        }
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<ReadChunksResp> {
        let mut d = Decoder::new(buf);
        let n = d.u32()? as usize;
        let mut lens = Vec::with_capacity(n);
        for _ in 0..n {
            lens.push(d.u64()?);
        }
        d.finish()?;
        Ok(ReadChunksResp { lens })
    }
}

/// `TruncateChunks`: drop chunk data beyond a boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncateChunksReq {
    /// Path.
    pub path: String,
    /// Keep chunk.
    pub keep_chunk: u64,
    /// Keep bytes.
    pub keep_bytes: u64,
}

impl TruncateChunksReq {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.path).u64(self.keep_chunk).u64(self.keep_bytes);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<TruncateChunksReq> {
        let mut d = Decoder::new(buf);
        let r = TruncateChunksReq {
            path: d.str()?.to_string(),
            keep_chunk: d.u64()?,
            keep_bytes: d.u64()?,
        };
        d.finish()?;
        Ok(r)
    }
}

/// `RemoveMeta` response: the kind of the removed entry (so the client
/// knows whether to fan out chunk removal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoveMetaResp {
    /// 0 = file, 1 = directory.
    pub kind: u8,
}

impl RemoveMetaResp {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(self.kind);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<RemoveMetaResp> {
        let mut d = Decoder::new(buf);
        let r = RemoveMetaResp { kind: d.u8()? };
        d.finish()?;
        Ok(r)
    }
}

/// `DaemonStats` response: a flat counter snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DaemonStatsResp {
    /// Meta entries.
    pub meta_entries: u64,
    /// Kv puts.
    pub kv_puts: u64,
    /// Kv gets.
    pub kv_gets: u64,
    /// Kv merges.
    pub kv_merges: u64,
    /// Storage write bytes.
    pub storage_write_bytes: u64,
    /// Storage read bytes.
    pub storage_read_bytes: u64,
    /// Memtable flushes completed by the background flush thread.
    pub kv_flushes: u64,
    /// L0→L1 compactions completed by the background thread.
    pub kv_compactions: u64,
    /// Write stalls (full episodes where writers waited on backlog).
    pub kv_stalls: u64,
    /// Total microseconds writers spent stalled.
    pub kv_stall_micros: u64,
    /// Reads served from a frozen (immutable) memtable.
    pub kv_imm_hits: u64,
    /// WAL group commits (shared append/fsync batches).
    pub kv_group_commits: u64,
    /// Records carried by those group commits.
    pub kv_group_commit_records: u64,
    /// Table probes skipped by bloom filters.
    pub kv_bloom_skips: u64,
    /// Chunk tasks run on the I/O pool's workers.
    pub chunk_tasks_spawned: u64,
    /// Chunk tasks run inline on the handler (pool saturated or serial
    /// mode).
    pub chunk_inline_runs: u64,
    /// Open-fd cache hits in the chunk store.
    pub fd_cache_hits: u64,
    /// Open-fd cache misses (each one cost an `open(2)`).
    pub fd_cache_misses: u64,
    /// Batch ops merged into a neighbor's syscall by coalescing.
    pub coalesced_ops: u64,
    /// Bytes copied compacting read replies after short reads (zero on
    /// the scatter/gather happy path).
    pub read_reply_copy_bytes: u64,
}

impl DaemonStatsResp {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.meta_entries)
            .u64(self.kv_puts)
            .u64(self.kv_gets)
            .u64(self.kv_merges)
            .u64(self.storage_write_bytes)
            .u64(self.storage_read_bytes)
            .u64(self.kv_flushes)
            .u64(self.kv_compactions)
            .u64(self.kv_stalls)
            .u64(self.kv_stall_micros)
            .u64(self.kv_imm_hits)
            .u64(self.kv_group_commits)
            .u64(self.kv_group_commit_records)
            .u64(self.kv_bloom_skips)
            .u64(self.chunk_tasks_spawned)
            .u64(self.chunk_inline_runs)
            .u64(self.fd_cache_hits)
            .u64(self.fd_cache_misses)
            .u64(self.coalesced_ops)
            .u64(self.read_reply_copy_bytes);
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<DaemonStatsResp> {
        let mut d = Decoder::new(buf);
        let r = DaemonStatsResp {
            meta_entries: d.u64()?,
            kv_puts: d.u64()?,
            kv_gets: d.u64()?,
            kv_merges: d.u64()?,
            storage_write_bytes: d.u64()?,
            storage_read_bytes: d.u64()?,
            kv_flushes: d.u64()?,
            kv_compactions: d.u64()?,
            kv_stalls: d.u64()?,
            kv_stall_micros: d.u64()?,
            kv_imm_hits: d.u64()?,
            kv_group_commits: d.u64()?,
            kv_group_commit_records: d.u64()?,
            kv_bloom_skips: d.u64()?,
            chunk_tasks_spawned: d.u64()?,
            chunk_inline_runs: d.u64()?,
            fd_cache_hits: d.u64()?,
            fd_cache_misses: d.u64()?,
            coalesced_ops: d.u64()?,
            read_reply_copy_bytes: d.u64()?,
        };
        d.finish()?;
        Ok(r)
    }
}

/// `ChunkInventory` response: every path this daemon holds chunks
/// for, with its chunk count (the fsck inventory).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChunkInventoryResp {
    /// Entries.
    pub entries: Vec<(String, u64)>,
}

impl ChunkInventoryResp {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.entries.len() as u32);
        for (path, count) in &self.entries {
            e.str(path).u64(*count);
        }
        e.into_vec()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<ChunkInventoryResp> {
        let mut d = Decoder::new(buf);
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((d.str()?.to_string(), d.u64()?));
        }
        d.finish()?;
        Ok(ChunkInventoryResp { entries })
    }
}

/// Validate that a bulk payload length matches what a write batch
/// declares (defensive check at the daemon boundary).
pub fn check_bulk_len(req: &ChunkBatchReq, bulk_len: usize) -> Result<()> {
    let Some(expect) = req.total_len() else {
        return Err(GkfsError::InvalidArgument(
            "batch op lens overflow u64".into(),
        ));
    };
    if bulk_len as u64 != expect {
        return Err(GkfsError::InvalidArgument(format!(
            "bulk length {bulk_len} does not match batch total {expect}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_roundtrip() {
        let r = CreateReq {
            path: "/a/b".into(),
            kind: 0,
            mode: 0o644,
            exclusive: true,
            now_ns: 12345,
        };
        assert_eq!(CreateReq::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn path_req_roundtrip() {
        let r = PathReq::new("/x/y/z");
        assert_eq!(PathReq::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn size_and_truncate_roundtrip() {
        let r = UpdateSizeReq {
            path: "/f".into(),
            size: 1 << 40,
            mtime_ns: 7,
        };
        assert_eq!(UpdateSizeReq::decode(&r.encode()).unwrap(), r);
        let t = TruncateMetaReq {
            path: "/f".into(),
            new_size: 100,
            mtime_ns: 8,
        };
        assert_eq!(TruncateMetaReq::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn readdir_roundtrip() {
        let r = ReadDirResp {
            entries: vec![
                DirentWire {
                    name: "a".into(),
                    kind: 0,
                    size: 123,
                },
                DirentWire {
                    name: "subdir".into(),
                    kind: 1,
                    size: 0,
                },
            ],
        };
        assert_eq!(ReadDirResp::decode(&r.encode()).unwrap(), r);
        let empty = ReadDirResp::default();
        assert_eq!(ReadDirResp::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn chunk_batch_roundtrip_and_total() {
        let r = ChunkBatchReq {
            path: "/data".into(),
            ops: vec![
                ChunkOp {
                    chunk_id: 0,
                    offset: 100,
                    len: 400,
                },
                ChunkOp {
                    chunk_id: 3,
                    offset: 0,
                    len: 512,
                },
            ],
        };
        assert_eq!(ChunkBatchReq::decode(&r.encode()).unwrap(), r);
        assert_eq!(r.total_len(), Some(912));
        assert!(check_bulk_len(&r, 912).is_ok());
        assert!(check_bulk_len(&r, 911).is_err());
        let wrap = ChunkBatchReq {
            path: "/w".into(),
            ops: vec![
                ChunkOp { chunk_id: 0, offset: 0, len: u64::MAX },
                ChunkOp { chunk_id: 1, offset: 0, len: 2 },
            ],
        };
        assert_eq!(wrap.total_len(), None, "overflow must not wrap");
        assert!(check_bulk_len(&wrap, 1).is_err());
    }

    #[test]
    fn read_chunks_resp_roundtrip() {
        let r = ReadChunksResp {
            lens: vec![512, 0, 77],
        };
        assert_eq!(ReadChunksResp::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn chunk_inventory_roundtrip() {
        let r = ChunkInventoryResp {
            entries: vec![("/a".into(), 3), ("/b:x".into(), 1)],
        };
        assert_eq!(ChunkInventoryResp::decode(&r.encode()).unwrap(), r);
        let empty = ChunkInventoryResp::default();
        assert_eq!(ChunkInventoryResp::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn stats_roundtrip() {
        let r = DaemonStatsResp {
            meta_entries: 1,
            kv_puts: 2,
            kv_gets: 3,
            kv_merges: 4,
            storage_write_bytes: 5,
            storage_read_bytes: 6,
            kv_flushes: 7,
            kv_compactions: 8,
            kv_stalls: 9,
            kv_stall_micros: 10,
            kv_imm_hits: 11,
            kv_group_commits: 12,
            kv_group_commit_records: 13,
            kv_bloom_skips: 14,
            chunk_tasks_spawned: 15,
            chunk_inline_runs: 16,
            fd_cache_hits: 17,
            fd_cache_misses: 18,
            coalesced_ops: 19,
            read_reply_copy_bytes: 20,
        };
        assert_eq!(DaemonStatsResp::decode(&r.encode()).unwrap(), r);
    }
}
