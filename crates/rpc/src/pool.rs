//! The handler thread pool — Margo's execution model.
//!
//! Margo separates *progress* (pulling requests off the network) from
//! *handling* (running the registered callback), with handlers executed
//! by a pool of Argobots execution streams. We reproduce the same
//! split: transports enqueue jobs; a fixed set of worker threads drains
//! the queue. The pool is deliberately simple — an unbounded MPMC
//! channel and `N` workers — because GekkoFS daemons pin the pool to
//! one socket and size it statically (paper §IV: daemon and application
//! pinned to separate sockets).

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Queue slots per worker for daemon-facing pools. With nonblocking
/// client submission the queue is the only thing bounding a daemon's
/// memory under overload; once it fills, `submit` blocks the enqueuer
/// (the in-process client, or a TCP connection reader whose stalled
/// socket then pushes back to the peer) — back-pressure, not OOM.
pub const SERVER_QUEUE_PER_WORKER: usize = 256;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queued: AtomicU64,
    executed: AtomicU64,
}

/// Fixed-size worker pool executing submitted jobs.
pub struct HandlerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl HandlerPool {
    /// Spawn a pool with `threads` workers (min 1) and an unbounded
    /// queue.
    pub fn new(threads: usize) -> HandlerPool {
        Self::build(threads, None)
    }

    /// Spawn a pool with `threads` workers (min 1) and a queue bounded
    /// to `queue_cap` jobs (min 1): [`HandlerPool::submit`] blocks
    /// while the queue is full, applying back-pressure to submitters.
    pub fn bounded(threads: usize, queue_cap: usize) -> HandlerPool {
        Self::build(threads, Some(queue_cap.max(1)))
    }

    fn build(threads: usize, queue_cap: Option<usize>) -> HandlerPool {
        let threads = threads.max(1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = match queue_cap {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        let shared = Arc::new(PoolShared {
            queued: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        // Thread exhaustion is not fatal: whatever subset spawns
        // serves the queue, and with zero workers `submit` degrades to
        // caller-runs.
        let workers = (0..threads)
            .filter_map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gkfs-handler-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            shared.executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .ok()
            })
            .collect();
        HandlerPool {
            tx: Some(tx),
            workers,
            shared,
        }
    }

    /// Enqueue a job. On a bounded pool this blocks while the queue is
    /// full (back-pressure). If the pool has no live workers — shut
    /// down, or thread spawn failed at build time — the job runs on
    /// the calling thread instead: degraded throughput, never a lost
    /// job or a panic on the daemon's request path.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.queued.fetch_add(1, Ordering::Relaxed);
        let job: Job = Box::new(job);
        let job = match &self.tx {
            Some(tx) if !self.workers.is_empty() => match tx.send(job) {
                Ok(()) => return,
                Err(e) => e.into_inner(),
            },
            _ => job,
        };
        job();
        self.shared.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// `(queued, executed)` counters since startup.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.queued.load(Ordering::Relaxed),
            self.shared.executed.load(Ordering::Relaxed),
        )
    }

    /// Drain the queue and join all workers.
    pub fn shutdown(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx); // closes the channel; workers exit after draining
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

impl Drop for HandlerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_jobs() {
        let pool = HandlerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded();
        for _ in 0..1000 {
            let c = counter.clone();
            let tx = done_tx.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..1000 {
            done_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        let (q, _e) = pool.counters();
        assert_eq!(q, 1000);
    }

    #[test]
    fn shutdown_drains_queue() {
        let mut pool = HandlerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let c = counter.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        let (q, e) = pool.counters();
        assert_eq!(q, e);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = HandlerPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let (done_tx, done_rx) = unbounded();
        // Four jobs that can only complete if all four run at once.
        for _ in 0..4 {
            let b = barrier.clone();
            let tx = done_tx.clone();
            pool.submit(move || {
                b.wait();
                let _ = tx.send(());
            });
        }
        for _ in 0..4 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("jobs deadlocked: pool is not concurrent");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = HandlerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn bounded_pool_executes_everything_under_pressure() {
        // Tiny queue, many producers: submits block rather than fail,
        // and every job still runs exactly once.
        let pool = Arc::new(HandlerPool::bounded(2, 2));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let c = counter.clone();
                        pool.submit(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        let mut pool = Arc::into_inner(pool).expect("sole owner after scope");
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 400);
        let (q, e) = pool.counters();
        assert_eq!(q, 400);
        assert_eq!(e, 400);
    }

    #[test]
    fn bounded_queue_blocks_when_full() {
        // One worker parked on a gate; capacity 1. The third submit
        // (1 running + 1 queued) must block until the gate opens.
        let pool = HandlerPool::bounded(1, 1);
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(0);
        pool.submit(move || {
            let _ = gate_rx.recv(); // occupy the worker
        });
        pool.submit(|| {}); // fills the single queue slot
        let blocked = Arc::new(AtomicUsize::new(0));
        let flag = blocked.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                pool.submit(move || {});
                flag.fetch_add(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert_eq!(blocked.load(Ordering::SeqCst), 0, "submit must block on full queue");
            gate_tx.send(()).unwrap(); // release the worker
        });
        assert_eq!(blocked.load(Ordering::SeqCst), 1, "submit unblocks after drain");
    }
}
