//! RPC message frames.
//!
//! A request carries an opcode, a correlation id, a compact body
//! (encoded with the [`gkfs_common::wire`] codec by the caller), and an
//! optional **bulk** payload. The bulk payload is the analogue of
//! Mercury's bulk handles: large data (write payloads, read results)
//! travels out-of-band from the header so the in-process transport can
//! hand it over by reference (the RDMA stand-in) and the TCP transport
//! can stream it without re-buffering the header.

use bytes::Bytes;
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};

/// Registered RPC operation codes — the equivalent of Mercury's
/// registered RPC names. One flat space shared by all daemons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Opcode {
    /// Liveness / deployment handshake.
    Ping = 0,
    /// Create a metadata entry (file or directory).
    Create = 1,
    /// Fetch a metadata entry.
    Stat = 2,
    /// Remove a metadata entry.
    RemoveMeta = 3,
    /// Update (merge) the size field of a metadata entry.
    UpdateSize = 4,
    /// Truncate/overwrite metadata size (decrease).
    TruncateMeta = 5,
    /// Enumerate direct children of a directory (prefix scan).
    ReadDir = 6,
    /// Write one batch of chunks owned by the target daemon.
    WriteChunks = 7,
    /// Read one batch of chunks owned by the target daemon.
    ReadChunks = 8,
    /// Remove all chunks of a file held by the target daemon.
    RemoveChunks = 9,
    /// Truncate chunks beyond a given size on the target daemon.
    TruncateChunks = 10,
    /// Daemon statistics snapshot (tests/benchmarks).
    DaemonStats = 11,
    /// Orderly shutdown.
    Shutdown = 12,
    /// Inventory of paths this daemon holds chunks for (fsck).
    ChunkInventory = 13,
}

impl Opcode {
    /// From u16.
    pub fn from_u16(v: u16) -> Result<Opcode> {
        Ok(match v {
            0 => Opcode::Ping,
            1 => Opcode::Create,
            2 => Opcode::Stat,
            3 => Opcode::RemoveMeta,
            4 => Opcode::UpdateSize,
            5 => Opcode::TruncateMeta,
            6 => Opcode::ReadDir,
            7 => Opcode::WriteChunks,
            8 => Opcode::ReadChunks,
            9 => Opcode::RemoveChunks,
            10 => Opcode::TruncateChunks,
            11 => Opcode::DaemonStats,
            12 => Opcode::Shutdown,
            13 => Opcode::ChunkInventory,
            other => {
                return Err(GkfsError::Rpc(format!("unknown opcode {other}")));
            }
        })
    }
}

/// One RPC request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Opcode.
    pub opcode: Opcode,
    /// Correlation id, unique per connection.
    pub id: u64,
    /// Compact encoded arguments.
    pub body: Bytes,
    /// Out-of-band bulk payload (write data). Empty when unused.
    pub bulk: Bytes,
}

impl Request {
    /// Build a request with opcode and body (id assigned at send time).
    pub fn new(opcode: Opcode, body: impl Into<Bytes>) -> Request {
        Request {
            opcode,
            id: 0,
            body: body.into(),
            bulk: Bytes::new(),
        }
    }

    /// With bulk.
    pub fn with_bulk(mut self, bulk: impl Into<Bytes>) -> Request {
        self.bulk = bulk.into();
        self
    }

    /// Serialize for a byte-stream transport.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(self.body.len() + self.bulk.len() + 32);
        e.u16(self.opcode as u16);
        e.u64(self.id);
        e.bytes(&self.body);
        e.bytes(&self.bulk);
        e.into_vec()
    }

    /// Serialize the frame *prefix* only: everything up to and
    /// including the bulk length word, but not the bulk bytes
    /// themselves. Writing `encode_prefix()` followed by the raw bulk
    /// is byte-identical to [`Request::encode`] — the transport hands
    /// both to a vectored frame writer so a large write payload goes to
    /// the socket as a borrowed slice instead of being concatenated
    /// into a fresh `Vec`.
    pub fn encode_prefix(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(self.body.len() + 32);
        e.u16(self.opcode as u16);
        e.u64(self.id);
        e.bytes(&self.body);
        e.u32(self.bulk.len() as u32);
        e.into_vec()
    }

    /// Deserialize from an owned (refcounted) frame buffer. Body and
    /// bulk are taken as sub-ranges of `frame` rather than decoded
    /// field-by-field, so a transport that reads a whole frame into one
    /// buffer can hand large payloads onward without a per-field copy.
    pub fn decode_owned(frame: &Bytes) -> Result<Request> {
        let mut d = Decoder::new(frame);
        let opcode = Opcode::from_u16(d.u16()?)?;
        let id = d.u64()?;
        let body_len = d.u32()? as usize;
        let body_start = d.position();
        d.raw(body_len)?;
        let bulk_len = d.u32()? as usize;
        let bulk_start = d.position();
        d.raw(bulk_len)?;
        d.finish()?;
        Ok(Request {
            opcode,
            id,
            body: frame.slice(body_start..body_start + body_len),
            bulk: frame.slice(bulk_start..bulk_start + bulk_len),
        })
    }

    /// Deserialize from [`Request::encode`] output.
    pub fn decode(buf: &[u8]) -> Result<Request> {
        let mut d = Decoder::new(buf);
        let opcode = Opcode::from_u16(d.u16()?)?;
        let id = d.u64()?;
        let body = Bytes::copy_from_slice(d.bytes()?);
        let bulk = Bytes::copy_from_slice(d.bytes()?);
        d.finish()?;
        Ok(Request {
            opcode,
            id,
            body,
            bulk,
        })
    }
}

/// Response status: OK or a [`GkfsError`] wire code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Ok.
    Ok,
    /// Err.
    Err(GkfsError),
}

/// One RPC response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Id.
    pub id: u64,
    /// Status.
    pub status: Status,
    /// Compact encoded results.
    pub body: Bytes,
    /// Out-of-band bulk payload (read data). Empty when unused.
    pub bulk: Bytes,
}

impl Response {
    /// Ok.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response {
            id: 0,
            status: Status::Ok,
            body: body.into(),
            bulk: Bytes::new(),
        }
    }

    /// Err.
    pub fn err(e: GkfsError) -> Response {
        Response {
            id: 0,
            status: Status::Err(e),
            body: Bytes::new(),
            bulk: Bytes::new(),
        }
    }

    /// With bulk.
    pub fn with_bulk(mut self, bulk: impl Into<Bytes>) -> Response {
        self.bulk = bulk.into();
        self
    }

    /// Convert into a `Result`, surfacing the remote error.
    pub fn into_result(self) -> Result<Response> {
        match &self.status {
            Status::Ok => Ok(self),
            Status::Err(e) => Err(e.clone()),
        }
    }

    /// Serialize for a byte-stream transport.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(self.body.len() + self.bulk.len() + 32);
        e.u64(self.id);
        match &self.status {
            Status::Ok => {
                e.u32(0);
                e.str("");
            }
            Status::Err(err) => {
                e.u32(err.code());
                e.str(err.detail());
            }
        }
        e.bytes(&self.body);
        e.bytes(&self.bulk);
        e.into_vec()
    }

    /// Serialize the frame *prefix* only — the reply analogue of
    /// [`Request::encode_prefix`]. `encode_prefix()` + raw bulk is
    /// byte-identical to [`Response::encode`]; a `ReadChunks` reply's
    /// scatter-gather buffer is passed to the transport as a borrowed
    /// slice and never re-buffered.
    pub fn encode_prefix(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(self.body.len() + 32);
        e.u64(self.id);
        match &self.status {
            Status::Ok => {
                e.u32(0);
                e.str("");
            }
            Status::Err(err) => {
                e.u32(err.code());
                e.str(err.detail());
            }
        }
        e.bytes(&self.body);
        e.u32(self.bulk.len() as u32);
        e.into_vec()
    }

    /// Deserialize from an owned (refcounted) frame buffer, slicing
    /// body and bulk out of `frame` instead of copying field-by-field.
    pub fn decode_owned(frame: &Bytes) -> Result<Response> {
        let mut d = Decoder::new(frame);
        let id = d.u64()?;
        let code = d.u32()?;
        let detail = d.str()?.to_string();
        let status = if code == 0 {
            Status::Ok
        } else {
            Status::Err(GkfsError::from_code(code, &detail))
        };
        let body_len = d.u32()? as usize;
        let body_start = d.position();
        d.raw(body_len)?;
        let bulk_len = d.u32()? as usize;
        let bulk_start = d.position();
        d.raw(bulk_len)?;
        d.finish()?;
        Ok(Response {
            id,
            status,
            body: frame.slice(body_start..body_start + body_len),
            bulk: frame.slice(bulk_start..bulk_start + bulk_len),
        })
    }

    /// Deserialize from [`Response::encode`] output.
    pub fn decode(buf: &[u8]) -> Result<Response> {
        let mut d = Decoder::new(buf);
        let id = d.u64()?;
        let code = d.u32()?;
        let detail = d.str()?.to_string();
        let status = if code == 0 {
            Status::Ok
        } else {
            Status::Err(GkfsError::from_code(code, &detail))
        };
        let body = Bytes::copy_from_slice(d.bytes()?);
        let bulk = Bytes::copy_from_slice(d.bytes()?);
        d.finish()?;
        Ok(Response {
            id,
            status,
            body,
            bulk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = Request::new(Opcode::WriteChunks, &b"body-bytes"[..])
            .with_bulk(Bytes::from(vec![9u8; 1024]));
        req.id = 77;
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.opcode, Opcode::WriteChunks);
        assert_eq!(back.id, 77);
        assert_eq!(&back.body[..], b"body-bytes");
        assert_eq!(back.bulk.len(), 1024);
    }

    #[test]
    fn response_roundtrip_ok_and_err() {
        let mut r = Response::ok(&b"result"[..]).with_bulk(Bytes::from_static(b"data"));
        r.id = 5;
        let back = Response::decode(&r.encode()).unwrap();
        assert_eq!(back.id, 5);
        assert_eq!(back.status, Status::Ok);
        assert_eq!(&back.bulk[..], b"data");

        let mut r = Response::err(GkfsError::InvalidArgument("bad offset".into()));
        r.id = 6;
        let back = Response::decode(&r.encode()).unwrap();
        match &back.status {
            Status::Err(GkfsError::InvalidArgument(s)) => assert_eq!(s, "bad offset"),
            other => panic!("unexpected status {other:?}"),
        }
        assert!(back.into_result().is_err());
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for v in 0..14u16 {
            let op = Opcode::from_u16(v).unwrap();
            assert_eq!(op as u16, v);
        }
        assert!(Opcode::from_u16(999).is_err());
    }

    #[test]
    fn prefix_plus_bulk_is_byte_identical_to_encode() {
        let mut req = Request::new(Opcode::WriteChunks, &b"args"[..])
            .with_bulk(Bytes::from(vec![3u8; 777]));
        req.id = 42;
        let mut framed = req.encode_prefix();
        framed.extend_from_slice(&req.bulk);
        assert_eq!(framed, req.encode());

        let mut resp = Response::ok(&b"lens"[..]).with_bulk(Bytes::from(vec![7u8; 123]));
        resp.id = 42;
        let mut framed = resp.encode_prefix();
        framed.extend_from_slice(&resp.bulk);
        assert_eq!(framed, resp.encode());

        // Error responses and empty bulks too.
        let mut resp = Response::err(GkfsError::NotFound);
        resp.id = 9;
        let framed = resp.encode_prefix();
        assert_eq!(framed, resp.encode());
    }

    #[test]
    fn decode_owned_agrees_with_decode() {
        let mut req = Request::new(Opcode::ReadChunks, &b"body"[..])
            .with_bulk(Bytes::from(vec![5u8; 64]));
        req.id = 11;
        let frame = Bytes::from(req.encode());
        let a = Request::decode(&frame).unwrap();
        let b = Request::decode_owned(&frame).unwrap();
        assert_eq!((a.opcode, a.id, &a.body[..], &a.bulk[..]), (b.opcode, b.id, &b.body[..], &b.bulk[..]));

        let mut resp = Response::ok(&b"res"[..]).with_bulk(Bytes::from(vec![8u8; 32]));
        resp.id = 12;
        let frame = Bytes::from(resp.encode());
        let a = Response::decode(&frame).unwrap();
        let b = Response::decode_owned(&frame).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!((a.id, &a.body[..], &a.bulk[..]), (b.id, &b.body[..], &b.bulk[..]));

        // Truncated frames error instead of panicking.
        assert!(Request::decode_owned(&Bytes::from_static(&[1, 2, 3])).is_err());
        assert!(Response::decode_owned(&Bytes::new()).is_err());
    }

    #[test]
    fn malformed_frames_error() {
        assert!(Request::decode(&[1, 2, 3]).is_err());
        assert!(Response::decode(&[]).is_err());
        // Unknown opcode in an otherwise well-formed frame.
        let mut req = Request::new(Opcode::Ping, &b""[..]);
        req.id = 1;
        let mut buf = req.encode();
        buf[0] = 0xFF;
        buf[1] = 0xFF;
        assert!(Request::decode(&buf).is_err());
    }
}
