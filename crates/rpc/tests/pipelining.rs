//! Pipelined submission/completion: many outstanding `submit`s per
//! endpoint, responses completing out of order, and fail-fast behavior
//! when the transport dies under in-flight requests.

use bytes::Bytes;
use gkfs_common::GkfsError;
use gkfs_rpc::testing::{register_sleepy_echo, sleepy_body};
use gkfs_rpc::transport::Endpoint;
use gkfs_rpc::{
    EndpointOptions, HandlerRegistry, Opcode, ReplyHandle, Request, RpcServer, TcpEndpoint,
    TcpServer,
};
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const OUTSTANDING: usize = 16;

fn sleepy_registry() -> HandlerRegistry {
    let mut reg = HandlerRegistry::new();
    register_sleepy_echo(&mut reg, Opcode::Ping);
    reg
}

/// Descending delays: within each thread's batch the *last* submitted
/// request finishes *first*, so correct results prove correlation by
/// id, not by arrival order.
fn delay_for(slot: usize) -> u16 {
    ((OUTSTANDING - slot) * 3) as u16
}

fn stress<E: Endpoint + ?Sized>(ep: &E) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let handles: Vec<(Vec<u8>, ReplyHandle)> = (0..OUTSTANDING)
                    .map(|i| {
                        let body = sleepy_body(delay_for(i), format!("t{t}-i{i}").as_bytes());
                        let h = ep
                            .submit(Request::new(Opcode::Ping, Bytes::from(body.clone())))
                            .unwrap();
                        (body, h)
                    })
                    .collect();
                for (body, h) in handles {
                    let resp = h.wait(Duration::from_secs(30)).unwrap();
                    assert_eq!(
                        &resp.body[..],
                        &body[..],
                        "response correlated to the wrong request"
                    );
                }
            });
        }
    });
}

#[test]
fn tcp_pipelining_stress_out_of_order() {
    let server = TcpServer::bind("127.0.0.1:0", sleepy_registry(), 8).unwrap();
    let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
    stress(&*ep);
    assert_eq!(ep.pending_len(), 0, "pending table must drain completely");
    let (req, resp, err, _, _) = server.stats().snapshot();
    assert_eq!(req, (THREADS * OUTSTANDING) as u64);
    assert_eq!(resp, (THREADS * OUTSTANDING) as u64);
    assert_eq!(err, 0);
    server.shutdown();
}

#[test]
fn inproc_pipelining_stress_out_of_order() {
    let server = RpcServer::new(sleepy_registry(), 8);
    let ep = server.endpoint();
    stress(&*ep);
    let (req, resp, err, _, _) = server.stats().snapshot();
    assert_eq!(req, (THREADS * OUTSTANDING) as u64);
    assert_eq!(resp, (THREADS * OUTSTANDING) as u64);
    assert_eq!(err, 0);
}

#[test]
fn timed_out_handle_reaps_its_pending_slot() {
    let server = TcpServer::bind("127.0.0.1:0", sleepy_registry(), 1).unwrap();
    let addr = server.local_addr().to_string();
    let ep = TcpEndpoint::connect_with(
        &addr,
        EndpointOptions::new().with_timeout(Duration::from_millis(20)),
    )
    .unwrap();
    let h = ep
        .submit(Request::new(
            Opcode::Ping,
            Bytes::from(sleepy_body(200, b"slow")),
        ))
        .unwrap();
    assert!(matches!(
        h.wait(Duration::from_millis(20)),
        Err(GkfsError::Timeout)
    ));
    assert_eq!(ep.pending_len(), 0, "timeout must reap the pending slot");
    // The late response is discarded by correlation; the connection
    // stays healthy for later traffic.
    std::thread::sleep(Duration::from_millis(250));
    let resp = ep
        .call(Request::new(Opcode::Ping, Bytes::from(sleepy_body(0, b"ok"))))
        .unwrap();
    assert_eq!(&resp.body[2..], b"ok");
    assert_eq!(ep.pending_len(), 0);
    server.shutdown();
}

/// Regression (reader-thread death): in-flight handles must fail fast
/// with a typed, retryable transport error when the connection dies
/// under them — not burn their full per-call timeout (here 30 s).
#[test]
fn reader_death_fails_submitted_handles_fast() {
    let server = TcpServer::bind("127.0.0.1:0", sleepy_registry(), 2).unwrap();
    let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
    // Long-sleeping request: still in flight when the server dies.
    let h = ep
        .submit(Request::new(
            Opcode::Ping,
            Bytes::from(sleepy_body(2_000, b"doomed")),
        ))
        .unwrap();
    server.shutdown(); // severs the connection under the request
    let t0 = std::time::Instant::now();
    match h.wait(Duration::from_secs(30)) {
        Err(e @ GkfsError::Rpc(_)) => assert!(e.is_retryable()),
        // The connection thread may read the frame just after the
        // shutdown flag is set and answer ShuttingDown before the
        // sever lands — also a fast, typed, retryable outcome.
        Ok(resp) if matches!(resp.status, gkfs_rpc::Status::Err(GkfsError::ShuttingDown)) => {}
        other => panic!("expected connection-loss error, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "must fail fast, not burn the 30 s timeout"
    );
    // Submissions after the close fail fast too: the endpoint re-dials
    // the (dead) server and surfaces the dial failure as a retryable
    // error rather than hanging or leaking pending slots.
    let t0 = std::time::Instant::now();
    match ep.submit(Request::new(Opcode::Ping, Bytes::from(sleepy_body(0, b"x")))) {
        Err(e @ GkfsError::Rpc(_)) => assert!(e.is_retryable()),
        Ok(h) => match h.wait(Duration::from_secs(30)) {
            Err(e @ GkfsError::Rpc(_)) => assert!(e.is_retryable()),
            other => panic!("expected connection-loss error, got {other:?}"),
        },
        Err(other) => panic!("expected Rpc error, got {other:?}"),
    }
    assert!(t0.elapsed() < Duration::from_secs(10));
    assert_eq!(ep.pending_len(), 0, "no leaked pending entries after close");
}

/// Many endpoints, one submitting thread: submit to all daemons before
/// waiting on any — the client fan-out pattern — and confirm the total
/// latency reflects overlap, not the sum of handler delays.
#[test]
fn fan_out_overlaps_daemon_work() {
    let servers: Vec<Arc<RpcServer>> = (0..8).map(|_| RpcServer::new(sleepy_registry(), 1)).collect();
    let eps: Vec<_> = servers.iter().map(|s| s.endpoint()).collect();
    let t0 = std::time::Instant::now();
    let handles: Vec<ReplyHandle> = eps
        .iter()
        .map(|ep| {
            ep.submit(Request::new(
                Opcode::Ping,
                Bytes::from(sleepy_body(100, b"fan")),
            ))
            .unwrap()
        })
        .collect();
    for h in handles {
        h.wait(Duration::from_secs(10)).unwrap();
    }
    let elapsed = t0.elapsed();
    // Serial execution would take 8 × 100 ms; pipelined fan-out should
    // land near one delay. Generous bound for loaded CI machines.
    assert!(
        elapsed < Duration::from_millis(500),
        "fan-out did not overlap: {elapsed:?}"
    );
}
