//! TCP transport robustness: connection churn, many concurrent
//! connections, server restarts, and hostile peers.

use bytes::Bytes;
use gkfs_common::GkfsError;
use gkfs_rpc::transport::Endpoint;
use gkfs_rpc::{EndpointOptions, HandlerRegistry, Opcode, Request, Response, TcpEndpoint, TcpServer};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn echo_registry() -> HandlerRegistry {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| Response::ok(req.body).with_bulk(req.bulk));
    reg
}

#[test]
fn connection_churn() {
    let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 2).unwrap();
    let addr = server.local_addr().to_string();
    // 50 sequential connect/call/drop cycles must all work (no fd
    // leaks, no lingering state).
    for i in 0..50 {
        let ep = TcpEndpoint::connect(&addr).unwrap();
        let resp = ep
            .call(Request::new(Opcode::Ping, Bytes::from(format!("c{i}"))))
            .unwrap();
        assert_eq!(&resp.body[..], format!("c{i}").as_bytes());
    }
    server.shutdown();
}

#[test]
fn many_parallel_connections() {
    let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
    let addr = server.local_addr().to_string();
    std::thread::scope(|s| {
        for t in 0..16 {
            let addr = &addr;
            s.spawn(move || {
                let ep = TcpEndpoint::connect(addr).unwrap();
                for i in 0..50 {
                    let msg = format!("t{t}i{i}");
                    let resp = ep
                        .call(Request::new(Opcode::Ping, Bytes::from(msg.clone())))
                        .unwrap();
                    assert_eq!(&resp.body[..], msg.as_bytes());
                }
            });
        }
    });
    let (req, resp, err, _, _) = server.stats().snapshot();
    assert_eq!(req, 16 * 50);
    assert_eq!(resp, 16 * 50);
    assert_eq!(err, 0);
    server.shutdown();
}

#[test]
fn stale_endpoint_reconnects_after_server_restart() {
    let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 1).unwrap();
    let addr = server.local_addr().to_string();
    let ep = TcpEndpoint::connect(&addr).unwrap();
    ep.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap();
    server.shutdown();
    drop(server);

    // While the daemon is down the endpoint errors fast (and the
    // errors are retryable) — it never hangs.
    let t0 = std::time::Instant::now();
    let r = ep.call(Request::new(Opcode::Ping, &b"y"[..]));
    match r {
        Err(e) => assert!(e.is_retryable(), "down-daemon error must be retryable: {e:?}"),
        Ok(_) => panic!("call to a dead daemon cannot succeed"),
    }
    assert!(t0.elapsed() < Duration::from_secs(5));

    // A fresh server on the SAME port (simulating a daemon restart):
    // the old endpoint auto-reconnects on a later submit — clients
    // survive a daemon restart without being rebuilt.
    let server2 = match TcpServer::bind(&addr, echo_registry(), 1) {
        Ok(s) => s,
        Err(_) => return, // port grabbed by someone else: skip rest
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let resp = loop {
        match ep.call(Request::new(Opcode::Ping, &b"z"[..])) {
            Ok(r) => break r,
            Err(e) => {
                assert!(e.is_retryable(), "restart recovery must stay retryable: {e:?}");
                assert!(
                    std::time::Instant::now() < deadline,
                    "endpoint never reconnected to the restarted daemon"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(&resp.body[..], b"z");
    assert!(ep.reconnects() >= 1, "recovery must go through a re-dial");
    server2.shutdown();
}

#[test]
fn garbage_bytes_do_not_crash_server() {
    let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 1).unwrap();
    let addr = server.local_addr().to_string();

    // A peer that sends raw garbage: the server drops the connection
    // and keeps serving others.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0xFF])
            .unwrap();
        raw.write_all(&[0u8; 64]).unwrap();
        // (drop closes)
    }
    // A peer that claims an absurd frame length.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    }
    // Healthy client still works.
    let ep = TcpEndpoint::connect(&addr).unwrap();
    let resp = ep.call(Request::new(Opcode::Ping, &b"alive"[..])).unwrap();
    assert_eq!(&resp.body[..], b"alive");
    server.shutdown();
}

#[test]
fn zero_timeout_request_times_out_not_hangs() {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| {
        std::thread::sleep(Duration::from_millis(200));
        Response::ok(req.body)
    });
    let server = TcpServer::bind("127.0.0.1:0", reg, 1).unwrap();
    let ep = TcpEndpoint::connect_with(
        &server.local_addr().to_string(),
        EndpointOptions::new().with_timeout(Duration::from_millis(20)),
    )
    .unwrap();
    let r = ep.call(Request::new(Opcode::Ping, &b""[..]));
    assert!(matches!(r, Err(GkfsError::Timeout)));
    // The connection remains usable for later calls (the late response
    // is discarded by correlation id).
    std::thread::sleep(Duration::from_millis(250));
    let ep2 = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
    assert!(ep2.call(Request::new(Opcode::Ping, &b"ok"[..])).is_ok());
    server.shutdown();
}

#[test]
fn peer_death_mid_vectored_write_fails_cleanly_then_reconnects() {
    // A "daemon" that accepts, reads a token amount, and slams the
    // connection shut (RST via SO_LINGER-like immediate drop) while the
    // client is still inside a multi-megabyte vectored frame write. The
    // endpoint must surface a retryable error — not a panic, not a
    // hang, not a torn success — and re-dial once a real server is up.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let killer = std::thread::spawn(move || {
        use std::io::Read;
        let (mut conn, _) = listener.accept().unwrap();
        let mut tiny = [0u8; 16];
        let _ = conn.read(&mut tiny);
        // Drop without draining: the client's in-flight writev hits a
        // closed peer (EPIPE/ECONNRESET) with most of the frame unsent.
        drop(conn);
        // Listener drops here, freeing the port for the real server.
    });

    let ep = TcpEndpoint::connect(&addr).unwrap();
    // 8 MiB of bulk guarantees the frame cannot fit any socket buffer,
    // so the peer dies mid-write, not after.
    let big = Bytes::from(vec![0xAB; 8 * 1024 * 1024]);
    let t0 = std::time::Instant::now();
    let r = ep.call(Request::new(Opcode::Ping, &b"w"[..]).with_bulk(big));
    match r {
        Err(e) => assert!(e.is_retryable(), "mid-writev peer death must be retryable: {e:?}"),
        Ok(_) => panic!("a frame the peer never read cannot succeed"),
    }
    assert!(t0.elapsed() < Duration::from_secs(10), "failure must be prompt");
    killer.join().unwrap();

    // Real daemon on the same port: the endpoint recovers by re-dialing.
    let server = match TcpServer::bind(&addr, echo_registry(), 1) {
        Ok(s) => s,
        Err(_) => return, // port snatched by another process: skip rest
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match ep.call(Request::new(Opcode::Ping, &b"back"[..])) {
            Ok(resp) => {
                assert_eq!(&resp.body[..], b"back");
                break;
            }
            Err(e) => {
                assert!(e.is_retryable(), "recovery errors must stay retryable: {e:?}");
                assert!(
                    std::time::Instant::now() < deadline,
                    "endpoint never recovered after mid-write peer death"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    assert!(ep.reconnects() >= 1, "recovery must re-dial, not reuse the dead socket");
    server.shutdown();
}
