//! True multi-process deployment test: spawn real `gkfs-daemon`
//! processes, collect their addresses exactly as a job launcher would,
//! mount over TCP, and run the file system across process boundaries.

use gkfs_common::ClusterConfig;
use gkfs_rpc::proto::{CreateReq, PathReq};
use gkfs_rpc::{Endpoint, Opcode, Request, TcpEndpoint};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    fn spawn(extra: &[&str]) -> DaemonProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gkfs-daemon"))
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn gkfs-daemon");
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("daemon printed nothing")
            .expect("read daemon stdout");
        let addr = first
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .to_string();
        DaemonProc { child, addr }
    }

    fn stop(mut self) {
        // Closing stdin is the orderly shutdown signal.
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

#[test]
fn three_daemon_processes_serve_one_namespace() {
    let daemons: Vec<DaemonProc> = (0..3).map(|_| DaemonProc::spawn(&[])).collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();

    // Mount from this (fourth) process over real sockets.
    let endpoints: Vec<Arc<dyn Endpoint>> = addrs
        .iter()
        .map(|a| TcpEndpoint::connect(a).unwrap() as Arc<dyn Endpoint>)
        .collect();
    let config = ClusterConfig::new(3).with_chunk_size(16 * 1024);
    let fs = gkfs_client::GekkoClient::mount(endpoints, &config).unwrap();

    // Full workout across process boundaries.
    fs.mkdir("/mp", 0o755).unwrap();
    let data: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
    let h = fs
        .open_handle("/mp/blob", gkfs_common::OpenFlags::RDWR.with_create())
        .unwrap();
    h.pwrite(0, &data).unwrap();
    assert_eq!(fs.stat("/mp/blob").unwrap().size, data.len() as u64);
    assert_eq!(h.pread(0, data.len()).unwrap(), data);
    h.close().unwrap();
    // Striping really crossed processes: more than one daemon holds data.
    let stats = fs.cluster_stats().unwrap();
    let holders = stats.iter().filter(|s| s.storage_write_bytes > 0).count();
    assert!(holders >= 2, "expected striping across processes, got {holders}");

    // A second, independent client process-equivalent sees the data.
    let endpoints2: Vec<Arc<dyn Endpoint>> = addrs
        .iter()
        .map(|a| TcpEndpoint::connect(a).unwrap() as Arc<dyn Endpoint>)
        .collect();
    let fs2 = gkfs_client::GekkoClient::mount(endpoints2, &config).unwrap();
    assert_eq!(fs2.readdir("/mp").unwrap().len(), 1);
    fs2.unlink("/mp/blob").unwrap();
    assert!(fs.stat("/mp/blob").is_err());

    for d in daemons {
        d.stop();
    }
}

#[test]
fn daemon_process_persists_disk_state_across_restart() {
    let root = std::env::temp_dir().join(format!("gkfs-mp-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let root_s = root.to_string_lossy().to_string();

    let addr1 = {
        let d = DaemonProc::spawn(&["--root", &root_s, "--wal"]);
        let ep = TcpEndpoint::connect(&d.addr).unwrap();
        ep.call(Request::new(
            Opcode::Create,
            CreateReq {
                path: "/persisted".into(),
                kind: 0,
                mode: 0o644,
                exclusive: true,
                now_ns: 77,
            }
            .encode(),
        ))
        .unwrap()
        .into_result()
        .unwrap();
        let a = d.addr.clone();
        d.stop();
        a
    };

    // New process, same root: the entry must still be there.
    let d = DaemonProc::spawn(&["--root", &root_s, "--wal"]);
    assert_ne!(d.addr, addr1, "fresh ephemeral port expected");
    let ep = TcpEndpoint::connect(&d.addr).unwrap();
    let resp = ep
        .call(Request::new(Opcode::Stat, PathReq::new("/persisted").encode()))
        .unwrap()
        .into_result()
        .unwrap();
    let meta = gkfs_common::Metadata::decode(&resp.body).unwrap();
    assert_eq!(meta.ctime_ns, 77);
    d.stop();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn daemon_rejects_bad_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_gkfs-daemon"))
        .arg("--bogus")
        .output()
        .unwrap();
    assert!(!out.status.success());

    // And a daemon that cannot bind exits nonzero.
    let mut blocker = Command::new(env!("CARGO_BIN_EXE_gkfs-daemon"))
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = blocker.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner.strip_prefix("LISTENING ").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_gkfs-daemon"))
        .args(["--listen", addr])
        .output()
        .unwrap();
    assert!(!out.status.success(), "bind conflict must fail loudly");
    blocker.stdin.take().map(|mut s| s.write_all(b"").ok());
    drop(blocker.stdin.take());
    let _ = blocker.kill();
    let _ = blocker.wait();
}
