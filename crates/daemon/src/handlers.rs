//! RPC handlers — the daemon's service surface.
//!
//! One handler per opcode, each a thin translation between the wire
//! protocol ([`gkfs_rpc::proto`]) and the two backends (metadata, chunk
//! storage). Handlers run concurrently on the daemon's pool; all
//! synchronization lives in the backends.

use crate::engine::ChunkEngine;
use crate::metadata::MetadataBackend;
use bytes::Bytes;
use gkfs_common::{FileKind, GkfsError, Metadata, Result};
use gkfs_rpc::proto::*;
use gkfs_rpc::{HandlerRegistry, Opcode, Request, Response};
use gkfs_storage::{BatchOp, ChunkStorage};
use std::sync::Arc;

/// Shared state captured by every handler closure.
pub struct Backends {
    /// Meta.
    pub meta: MetadataBackend,
    /// Data.
    pub data: Arc<dyn ChunkStorage>,
    /// Batch adapter: wire-side validation and reply compaction; the
    /// I/O parallelism itself lives inside `data`'s engine.
    pub engine: ChunkEngine,
}

/// Wire ops → batch ops with the running-sum buffer layout the engine
/// and backends rely on: op *i*'s bytes occupy the `bulk`/reply window
/// starting at the sum of all earlier ops' lens.
fn layout_batch(ops: &[ChunkOp]) -> Vec<BatchOp> {
    let mut cursor = 0u64;
    ops.iter()
        .map(|op| {
            let b = BatchOp {
                chunk_id: op.chunk_id,
                offset: op.offset,
                len: op.len,
                buf_offset: cursor,
            };
            cursor += op.len;
            b
        })
        .collect()
}

/// Helper: run a fallible handler body, mapping `Err` onto an error
/// response so failures never tear down the connection.
fn respond(f: impl FnOnce() -> Result<Response>) -> Response {
    f().unwrap_or_else(Response::err)
}

/// Build the full handler registry over the given backends.
pub fn build_registry(backends: Arc<Backends>) -> HandlerRegistry {
    let mut reg = HandlerRegistry::new();

    reg.register_fn(Opcode::Ping, |req: Request| {
        Response::ok(req.body) // echo: used for deployment handshakes
    });

    {
        let b = backends.clone();
        reg.register_fn(Opcode::Create, move |req| {
            respond(|| {
                let r = CreateReq::decode(&req.body)?;
                let mut meta = match r.kind {
                    0 => Metadata::new_file(r.now_ns),
                    1 => Metadata::new_dir(r.now_ns),
                    k => {
                        return Err(GkfsError::InvalidArgument(format!("bad kind {k}")));
                    }
                };
                meta.mode = r.mode;
                b.meta.create(&r.path, &meta, r.exclusive)?;
                Ok(Response::ok(Bytes::new()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::Stat, move |req| {
            respond(|| {
                let r = PathReq::decode(&req.body)?;
                let meta = b.meta.stat(&r.path)?;
                Ok(Response::ok(meta.encode()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::RemoveMeta, move |req| {
            respond(|| {
                let r = PathReq::decode(&req.body)?;
                let meta = b.meta.remove(&r.path)?;
                let kind = match meta.kind {
                    FileKind::File => 0,
                    FileKind::Directory => 1,
                };
                Ok(Response::ok(RemoveMetaResp { kind }.encode()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::UpdateSize, move |req| {
            respond(|| {
                let r = UpdateSizeReq::decode(&req.body)?;
                b.meta.update_size(&r.path, r.size, r.mtime_ns)?;
                Ok(Response::ok(Bytes::new()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::TruncateMeta, move |req| {
            respond(|| {
                let r = TruncateMetaReq::decode(&req.body)?;
                b.meta.truncate(&r.path, r.new_size, r.mtime_ns)?;
                Ok(Response::ok(Bytes::new()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::ReadDir, move |req| {
            respond(|| {
                let r = PathReq::decode(&req.body)?;
                let entries = b
                    .meta
                    .readdir(&r.path)?
                    .into_iter()
                    .map(|d| DirentWire {
                        name: d.name,
                        kind: match d.kind {
                            FileKind::File => 0,
                            FileKind::Directory => 1,
                        },
                        size: d.size,
                    })
                    .collect();
                Ok(Response::ok(ReadDirResp { entries }.encode()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::WriteChunks, move |req| {
            respond(|| {
                let r = ChunkBatchReq::decode(&req.body)?;
                check_bulk_len(&r, req.bulk.len())?;
                let ops = layout_batch(&r.ops);
                b.engine.write_batch(&b.data, &r.path, &ops, &req.bulk)?;
                Ok(Response::ok(Bytes::new()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::ReadChunks, move |req| {
            respond(|| {
                let r = ChunkBatchReq::decode(&req.body)?;
                let ops = layout_batch(&r.ops);
                let (bulk, lens) = b.engine.read_batch(&b.data, &r.path, &ops)?;
                Ok(Response::ok(ReadChunksResp { lens }.encode()).with_bulk(bulk))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::RemoveChunks, move |req| {
            respond(|| {
                let r = PathReq::decode(&req.body)?;
                b.data.remove_chunks(&r.path)?;
                Ok(Response::ok(Bytes::new()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::TruncateChunks, move |req| {
            respond(|| {
                let r = TruncateChunksReq::decode(&req.body)?;
                b.data.truncate_chunks(&r.path, r.keep_chunk, r.keep_bytes)?;
                Ok(Response::ok(Bytes::new()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::ChunkInventory, move |_req| {
            respond(|| {
                let entries = b
                    .data
                    .list_paths()?
                    .into_iter()
                    .map(|(p, c)| (p, c as u64))
                    .collect();
                Ok(Response::ok(ChunkInventoryResp { entries }.encode()))
            })
        });
    }

    {
        let b = backends.clone();
        reg.register_fn(Opcode::DaemonStats, move |_req| {
            respond(|| {
                use std::sync::atomic::Ordering::Relaxed;
                let kv = b.meta.db().stats();
                let (_, w_bytes, _, r_bytes) = b.data.stats().snapshot();
                let (fd_hits, fd_misses, coalesced) = b.data.stats().engine_snapshot();
                let (tasks_spawned, inline_runs) = b.data.stats().task_snapshot();
                let reply_copies = b.engine.reply_copy_bytes();
                let resp = DaemonStatsResp {
                    meta_entries: b.meta.entry_count()? as u64,
                    kv_puts: kv.puts.load(Relaxed),
                    kv_gets: kv.gets.load(Relaxed),
                    kv_merges: kv.merges.load(Relaxed),
                    storage_write_bytes: w_bytes,
                    storage_read_bytes: r_bytes,
                    kv_flushes: kv.flushes.load(Relaxed),
                    kv_compactions: kv.compactions.load(Relaxed),
                    kv_stalls: kv.stalls.load(Relaxed),
                    kv_stall_micros: kv.stall_micros.load(Relaxed),
                    kv_imm_hits: kv.imm_hits.load(Relaxed),
                    kv_group_commits: kv.group_commits.load(Relaxed),
                    kv_group_commit_records: kv.group_commit_records.load(Relaxed),
                    kv_bloom_skips: kv.bloom_skips.load(Relaxed),
                    chunk_tasks_spawned: tasks_spawned,
                    chunk_inline_runs: inline_runs,
                    fd_cache_hits: fd_hits,
                    fd_cache_misses: fd_misses,
                    coalesced_ops: coalesced,
                    read_reply_copy_bytes: reply_copies,
                };
                Ok(Response::ok(resp.encode()))
            })
        });
    }

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_storage::MemChunkStorage;

    fn registry() -> HandlerRegistry {
        build_registry(backends())
    }

    fn backends() -> Arc<Backends> {
        Arc::new(Backends {
            meta: MetadataBackend::open_memory().unwrap(),
            data: Arc::new(MemChunkStorage::new()),
            engine: ChunkEngine::new(),
        })
    }

    fn call(reg: &HandlerRegistry, op: Opcode, body: Vec<u8>) -> Response {
        reg.dispatch(Request::new(op, body))
    }

    fn call_bulk(reg: &HandlerRegistry, op: Opcode, body: Vec<u8>, bulk: Vec<u8>) -> Response {
        reg.dispatch(Request::new(op, body).with_bulk(bulk))
    }

    #[test]
    fn create_stat_remove_through_rpc() {
        let reg = registry();
        let create = CreateReq {
            path: "/f".into(),
            kind: 0,
            mode: 0o644,
            exclusive: true,
            now_ns: 42,
        };
        call(&reg, Opcode::Create, create.encode()).into_result().unwrap();
        // Duplicate exclusive create fails.
        let resp = call(&reg, Opcode::Create, create.encode());
        assert!(matches!(
            resp.into_result(),
            Err(GkfsError::Exists)
        ));
        // Stat returns the metadata.
        let resp = call(&reg, Opcode::Stat, PathReq::new("/f").encode())
            .into_result()
            .unwrap();
        let meta = Metadata::decode(&resp.body).unwrap();
        assert_eq!(meta.ctime_ns, 42);
        // Remove reports the kind.
        let resp = call(&reg, Opcode::RemoveMeta, PathReq::new("/f").encode())
            .into_result()
            .unwrap();
        assert_eq!(RemoveMetaResp::decode(&resp.body).unwrap().kind, 0);
        // Stat now fails.
        let resp = call(&reg, Opcode::Stat, PathReq::new("/f").encode());
        assert!(matches!(resp.into_result(), Err(GkfsError::NotFound)));
    }

    #[test]
    fn write_then_read_chunks() {
        let reg = registry();
        let batch = ChunkBatchReq {
            path: "/data".into(),
            ops: vec![
                ChunkOp { chunk_id: 0, offset: 0, len: 5 },
                ChunkOp { chunk_id: 1, offset: 10, len: 3 },
            ],
        };
        call_bulk(&reg, Opcode::WriteChunks, batch.encode(), b"hello+++".to_vec())
            .into_result()
            .unwrap();
        let resp = call(&reg, Opcode::ReadChunks, batch.encode())
            .into_result()
            .unwrap();
        let lens = ReadChunksResp::decode(&resp.body).unwrap().lens;
        assert_eq!(lens, vec![5, 3]);
        assert_eq!(&resp.bulk[..], b"hello+++");
    }

    /// Acceptance: reply assembly is scatter/gather. A full-length
    /// multi-chunk read goes straight into the pre-sized reply buffer —
    /// zero compaction bytes; only a short read forces copies.
    #[test]
    fn read_reply_assembly_copies_nothing_on_full_batches() {
        let b = backends();
        let reg = build_registry(b.clone());
        let n = 16usize;
        let ops: Vec<ChunkOp> = (0..n as u64)
            .map(|c| ChunkOp { chunk_id: c, offset: 0, len: 4096 })
            .collect();
        let batch = ChunkBatchReq { path: "/sg".into(), ops };
        let bulk: Vec<u8> = (0..n * 4096).map(|i| (i % 241) as u8).collect();
        call_bulk(&reg, Opcode::WriteChunks, batch.encode(), bulk.clone())
            .into_result()
            .unwrap();
        let resp = call(&reg, Opcode::ReadChunks, batch.encode())
            .into_result()
            .unwrap();
        assert_eq!(&resp.bulk[..], &bulk[..]);
        assert_eq!(b.engine.reply_copy_bytes(), 0, "full-length batch must not compact");

        // Now force a short read: chunk n lands with only 100 bytes,
        // and an op after it must shift left in the reply.
        let short = ChunkBatchReq {
            path: "/sg".into(),
            ops: vec![
                ChunkOp { chunk_id: n as u64, offset: 0, len: 4096 },
                ChunkOp { chunk_id: 0, offset: 0, len: 4096 },
            ],
        };
        call_bulk(
            &reg,
            Opcode::WriteChunks,
            ChunkBatchReq {
                path: "/sg".into(),
                ops: vec![ChunkOp { chunk_id: n as u64, offset: 0, len: 100 }],
            }
            .encode(),
            vec![7u8; 100],
        )
        .into_result()
        .unwrap();
        let resp = call(&reg, Opcode::ReadChunks, short.encode())
            .into_result()
            .unwrap();
        let lens = ReadChunksResp::decode(&resp.body).unwrap().lens;
        assert_eq!(lens, vec![100, 4096]);
        assert_eq!(resp.bulk.len(), 4196, "dense reply after short read");
        assert_eq!(b.engine.reply_copy_bytes(), 4096, "only the shifted op's bytes copied");
    }

    #[test]
    fn write_with_wrong_bulk_length_rejected() {
        let reg = registry();
        let batch = ChunkBatchReq {
            path: "/data".into(),
            ops: vec![ChunkOp { chunk_id: 0, offset: 0, len: 100 }],
        };
        let resp = call_bulk(&reg, Opcode::WriteChunks, batch.encode(), vec![0; 50]);
        assert!(matches!(
            resp.into_result(),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn size_update_and_truncate_via_rpc() {
        let reg = registry();
        call(
            &reg,
            Opcode::Create,
            CreateReq {
                path: "/f".into(),
                kind: 0,
                mode: 0o644,
                exclusive: true,
                now_ns: 0,
            }
            .encode(),
        )
        .into_result()
        .unwrap();
        call(
            &reg,
            Opcode::UpdateSize,
            UpdateSizeReq { path: "/f".into(), size: 4096, mtime_ns: 1 }.encode(),
        )
        .into_result()
        .unwrap();
        let resp = call(&reg, Opcode::Stat, PathReq::new("/f").encode())
            .into_result()
            .unwrap();
        assert_eq!(Metadata::decode(&resp.body).unwrap().size, 4096);
        call(
            &reg,
            Opcode::TruncateMeta,
            TruncateMetaReq { path: "/f".into(), new_size: 10, mtime_ns: 2 }.encode(),
        )
        .into_result()
        .unwrap();
        let resp = call(&reg, Opcode::Stat, PathReq::new("/f").encode())
            .into_result()
            .unwrap();
        assert_eq!(Metadata::decode(&resp.body).unwrap().size, 10);
    }

    #[test]
    fn readdir_and_stats() {
        let reg = registry();
        for p in ["/d", "/d/a", "/d/b"] {
            call(
                &reg,
                Opcode::Create,
                CreateReq {
                    path: p.into(),
                    kind: if p == "/d" { 1 } else { 0 },
                    mode: 0o755,
                    exclusive: true,
                    now_ns: 0,
                }
                .encode(),
            )
            .into_result()
            .unwrap();
        }
        let resp = call(&reg, Opcode::ReadDir, PathReq::new("/d").encode())
            .into_result()
            .unwrap();
        let rd = ReadDirResp::decode(&resp.body).unwrap();
        assert_eq!(rd.entries.len(), 2);

        let resp = call(&reg, Opcode::DaemonStats, Vec::new()).into_result().unwrap();
        let stats = DaemonStatsResp::decode(&resp.body).unwrap();
        assert_eq!(stats.meta_entries, 3);
        assert!(stats.kv_puts >= 3);
    }

    #[test]
    fn malformed_body_is_error_response_not_crash() {
        let reg = registry();
        let resp = call(&reg, Opcode::Create, vec![1, 2, 3]);
        assert!(resp.into_result().is_err());
        let resp = call(&reg, Opcode::Stat, vec![0xFF; 2]);
        assert!(resp.into_result().is_err());
    }
}
