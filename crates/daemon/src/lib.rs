//! # gkfs-daemon — the GekkoFS server process
//!
//! Paper §III-B-b: *"GekkoFS daemons consist of three parts: 1) A
//! key-value store (KV store) used for storing metadata; 2) an I/O
//! persistence layer that reads/writes data from/to the underlying
//! local storage system (one file per chunk); and 3) an RPC-based
//! communication layer that accepts local and remote connections to
//! handle file system operations."*
//!
//! * [`metadata`] — the metadata backend over [`gkfs_kvstore`],
//!   including the size merge operator that makes write-size updates
//!   read-free.
//! * [`handlers`] — the RPC handler set, one per opcode.
//! * [`engine`] — the chunk task engine: per-chunk fan-out of data
//!   batches over a bounded I/O pool (the Argobots ULT model, §III-B).
//! * [`daemon`] — daemon lifecycle: construction, in-process endpoint
//!   creation, TCP serving, shutdown.
//!
//! Each daemon is fully independent (*"receives forwarded file system
//! operations from clients and processes them independently"*): it
//! never talks to other daemons, has no view of the distributor, and
//! trusts clients to route operations to the right owner.

#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod handlers;
pub mod metadata;

pub use daemon::Daemon;
pub use metadata::MetadataBackend;
