//! `gkfs-daemon` — the per-node GekkoFS server process.
//!
//! A real deployment starts one of these on every node of a job (the
//! paper: "deployed in under 20 seconds on a 512 node cluster by any
//! user" — i.e. plain user-space processes, no root, no kernel
//! modules):
//!
//! ```sh
//! gkfs-daemon --listen 0.0.0.0:9820 --root /local/ssd/gkfs &
//! ```
//!
//! The daemon prints `LISTENING <addr>` once ready (launchers collect
//! these lines into the hosts file clients mount from) and serves
//! until stdin closes or the process is terminated — tying its
//! lifetime to the launching job script, which is exactly the
//! "temporary file system" lifecycle of §III.

use gkfs_common::DaemonConfig;
use gkfs_daemon::Daemon;
use std::io::Read;

fn usage() -> ! {
    eprintln!(
        "usage: gkfs-daemon [--listen ADDR] [--root DIR] [--handlers N] \
         [--chunk-size BYTES] [--wal]\n\
         \n\
         --listen ADDR       TCP listen address (default 127.0.0.1:0)\n\
         --root DIR          node-local storage directory (default: in-memory)\n\
         --handlers N        RPC handler threads (default 4)\n\
         --chunk-size BYTES  chunk size, power of two (default 524288)\n\
         --wal               enable the metadata write-ahead log\n\
         --no-stdin          don't watch stdin; serve until killed"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut config = DaemonConfig::default();
    let mut watch_stdin = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--root" => {
                config.root_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--handlers" => {
                config.handler_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--chunk-size" => {
                config.chunk_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--wal" => config.kv_wal = true,
            "--no-stdin" => watch_stdin = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let daemon = match Daemon::spawn(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gkfs-daemon: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let addr = match daemon.serve_tcp(&listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gkfs-daemon: failed to listen on {listen}: {e}");
            std::process::exit(1);
        }
    };
    // The launcher scrapes this line into the hosts file.
    println!("LISTENING {addr}");
    // Flush eagerly: launchers read the line through a pipe.
    use std::io::Write;
    std::io::stdout().flush().ok();

    if watch_stdin {
        // Serve until the controlling job closes our stdin (or kills
        // us). Launchers that cannot keep a pipe open use --no-stdin.
        let mut sink = [0u8; 64];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break, // EOF: job script ended
                Ok(_) => {}              // ignore chatter
            }
        }
        daemon.shutdown();
    } else {
        // Serve until killed.
        loop {
            std::thread::park();
        }
    }
}
