//! The metadata backend: GekkoFS' flat namespace over the KV store.
//!
//! Every file-system object is one KV pair keyed by its absolute path.
//! Directory entries are *objects*, not directory blocks (paper §II:
//! *"replaces directory entries by objects, stored within a strongly
//! consistent key-value store"*); `readdir` is a prefix scan.
//!
//! Size updates from writes use a **merge operator** instead of
//! read-modify-write: the operand carries `(candidate_size, mtime)`
//! and folding takes the maximum of sizes. This is the mechanism the
//! paper's shared-file experiment exercises (§IV-B — the daemon
//! "maintains the shared file's metadata whose size needs to be
//! constantly updated").

use gkfs_common::path as gpath;
use gkfs_common::types::Dirent;
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Metadata, Result};
#[cfg(test)]
use gkfs_common::FileKind;
use gkfs_kvstore::{Db, DbOptions, MergeOperator};
use std::sync::Arc;

/// Merge operator over encoded [`Metadata`] values. Operands are
/// `(candidate_size: u64, mtime_ns: u64)` pairs; folding keeps the
/// maximum size and latest mtime. A merge against a missing base (a
/// size update racing a concurrent remove) resurrects nothing: it
/// produces a plain file record so the fold stays total, and the
/// subsequent tombstone from the remove shadows it.
#[derive(Debug, Default)]
pub struct MetaSizeMergeOperator;

/// Encode a size-update operand.
pub fn encode_size_operand(size: u64, mtime_ns: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(size).u64(mtime_ns);
    e.into_vec()
}

fn decode_size_operand(buf: &[u8]) -> Option<(u64, u64)> {
    let mut d = Decoder::new(buf);
    let size = d.u64().ok()?;
    let mtime = d.u64().ok()?;
    d.finish().ok()?;
    Some((size, mtime))
}

impl MergeOperator for MetaSizeMergeOperator {
    fn full_merge(&self, _key: &[u8], base: Option<&[u8]>, operands: &[Vec<u8>]) -> Vec<u8> {
        let mut meta = base
            .and_then(|b| Metadata::decode(b).ok())
            .unwrap_or_else(|| Metadata::new_file(0));
        for op in operands {
            if let Some((size, mtime)) = decode_size_operand(op) {
                meta.size = meta.size.max(size);
                meta.mtime_ns = meta.mtime_ns.max(mtime);
            }
        }
        meta.encode()
    }
}

/// Metadata operations executed by the daemon on behalf of clients.
pub struct MetadataBackend {
    db: Arc<Db>,
}

impl MetadataBackend {
    /// Build over a fresh in-memory KV store.
    pub fn open_memory() -> Result<MetadataBackend> {
        let opts = DbOptions {
            merge_operator: Some(Arc::new(MetaSizeMergeOperator)),
            ..DbOptions::default()
        };
        Ok(MetadataBackend {
            db: Db::open_memory(opts)?,
        })
    }

    /// Build over a KV store persisted under `dir`, with WAL as asked.
    pub fn open_dir(dir: impl Into<std::path::PathBuf>, wal: bool) -> Result<MetadataBackend> {
        let opts = DbOptions {
            merge_operator: Some(Arc::new(MetaSizeMergeOperator)),
            wal,
            ..DbOptions::default()
        };
        Ok(MetadataBackend {
            db: Db::open_dir(dir, opts)?,
        })
    }

    /// Underlying store (stats, tests).
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// Orderly shutdown: drain queued background flushes/compactions,
    /// stop the store's worker threads, and surface any deferred
    /// background error. Dropping without this is crash-equivalent
    /// (recovery then runs from manifest + WAL).
    pub fn shutdown(&self) -> Result<()> {
        self.db.shutdown()
    }

    /// Create an entry. With `exclusive`, an existing entry fails with
    /// `Exists`; without, it is a no-op success (open-with-`O_CREAT`).
    pub fn create(&self, path: &str, meta: &Metadata, exclusive: bool) -> Result<()> {
        let inserted = self.db.put_if_absent(path.as_bytes(), &meta.encode())?;
        if !inserted && exclusive {
            return Err(GkfsError::Exists);
        }
        Ok(())
    }

    /// Fetch an entry's metadata.
    pub fn stat(&self, path: &str) -> Result<Metadata> {
        match self.db.get(path.as_bytes())? {
            Some(v) => Metadata::decode(&v),
            None => Err(GkfsError::NotFound),
        }
    }

    /// Remove an entry, returning its (pre-removal) metadata.
    pub fn remove(&self, path: &str) -> Result<Metadata> {
        let meta = self.stat(path)?;
        self.db.delete(path.as_bytes())?;
        Ok(meta)
    }

    /// Merge a size candidate into a file's metadata (read-free).
    pub fn update_size(&self, path: &str, size: u64, mtime_ns: u64) -> Result<()> {
        self.db
            .merge(path.as_bytes(), &encode_size_operand(size, mtime_ns))
    }

    /// Set an exact size (truncate). Errors on directories.
    pub fn truncate(&self, path: &str, new_size: u64, mtime_ns: u64) -> Result<()> {
        let mut meta = self.stat(path)?;
        if meta.is_dir() {
            return Err(GkfsError::IsDirectory);
        }
        meta.size = new_size;
        meta.mtime_ns = mtime_ns;
        self.db.put(path.as_bytes(), &meta.encode())
    }

    /// Direct children of `dir` known to this daemon — one shard of the
    /// global (eventually consistent) `readdir`.
    pub fn readdir(&self, dir: &str) -> Result<Vec<Dirent>> {
        let prefix = gpath::dir_prefix(dir);
        let mut out = Vec::new();
        for (k, v) in self.db.scan_prefix(prefix.as_bytes())? {
            let child = std::str::from_utf8(&k)
                .map_err(|e| GkfsError::Corruption(format!("non-utf8 key: {e}")))?;
            if !gpath::is_direct_child(dir, child) {
                continue;
            }
            let meta = Metadata::decode(&v)?;
            out.push(Dirent {
                name: gpath::name(child).to_string(),
                kind: meta.kind,
                size: meta.size,
            });
        }
        Ok(out)
    }

    /// Does `dir` have any descendant entries on this daemon?
    pub fn has_children(&self, dir: &str) -> Result<bool> {
        let prefix = gpath::dir_prefix(dir);
        Ok(!self.db.scan_prefix(prefix.as_bytes())?.is_empty())
    }

    /// Total entries held by this daemon.
    pub fn entry_count(&self) -> Result<usize> {
        self.db.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> MetadataBackend {
        MetadataBackend::open_memory().unwrap()
    }

    #[test]
    fn create_stat_remove_cycle() {
        let b = backend();
        let meta = Metadata::new_file(100);
        b.create("/f", &meta, true).unwrap();
        assert_eq!(b.stat("/f").unwrap(), meta);
        let removed = b.remove("/f").unwrap();
        assert_eq!(removed, meta);
        assert_eq!(b.stat("/f"), Err(GkfsError::NotFound));
        assert_eq!(b.remove("/f"), Err(GkfsError::NotFound));
    }

    #[test]
    fn exclusive_create_conflicts() {
        let b = backend();
        b.create("/f", &Metadata::new_file(1), true).unwrap();
        assert_eq!(
            b.create("/f", &Metadata::new_file(2), true),
            Err(GkfsError::Exists)
        );
        // Non-exclusive create of an existing entry succeeds and does
        // not clobber the original.
        b.create("/f", &Metadata::new_file(3), false).unwrap();
        assert_eq!(b.stat("/f").unwrap().ctime_ns, 1);
    }

    #[test]
    fn size_updates_take_max() {
        let b = backend();
        b.create("/f", &Metadata::new_file(0), true).unwrap();
        b.update_size("/f", 1000, 5).unwrap();
        b.update_size("/f", 500, 6).unwrap(); // smaller: ignored for size
        b.update_size("/f", 2000, 7).unwrap();
        let m = b.stat("/f").unwrap();
        assert_eq!(m.size, 2000);
        assert_eq!(m.mtime_ns, 7);
        assert_eq!(m.kind, FileKind::File);
    }

    #[test]
    fn concurrent_size_updates_converge_to_max() {
        let b = backend();
        b.create("/shared", &Metadata::new_file(0), true).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..500u64 {
                        b.update_size("/shared", t * 1000 + i, i).unwrap();
                    }
                });
            }
        });
        assert_eq!(b.stat("/shared").unwrap().size, 7499);
    }

    #[test]
    fn truncate_sets_exact_size() {
        let b = backend();
        b.create("/f", &Metadata::new_file(0), true).unwrap();
        b.update_size("/f", 10_000, 1).unwrap();
        b.truncate("/f", 100, 2).unwrap();
        assert_eq!(b.stat("/f").unwrap().size, 100);
        // Truncate can also extend (POSIX ftruncate).
        b.truncate("/f", 5000, 3).unwrap();
        assert_eq!(b.stat("/f").unwrap().size, 5000);
        // Directories refuse.
        b.create("/d", &Metadata::new_dir(0), true).unwrap();
        assert_eq!(b.truncate("/d", 0, 4), Err(GkfsError::IsDirectory));
        // Missing files refuse.
        assert_eq!(b.truncate("/ghost", 0, 5), Err(GkfsError::NotFound));
    }

    #[test]
    fn readdir_returns_direct_children_only() {
        let b = backend();
        b.create("/dir", &Metadata::new_dir(0), true).unwrap();
        b.create("/dir/a", &Metadata::new_file(0), true).unwrap();
        b.create("/dir/sub", &Metadata::new_dir(0), true).unwrap();
        b.create("/dir/sub/deep", &Metadata::new_file(0), true).unwrap();
        b.create("/dirx", &Metadata::new_file(0), true).unwrap();
        let mut names: Vec<(String, FileKind)> = b
            .readdir("/dir")
            .unwrap()
            .into_iter()
            .map(|d| (d.name, d.kind))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                ("a".to_string(), FileKind::File),
                ("sub".to_string(), FileKind::Directory)
            ]
        );
        // Root listing sees /dir and /dirx but not nested entries.
        let root: Vec<String> = b.readdir("/").unwrap().into_iter().map(|d| d.name).collect();
        assert_eq!(root.len(), 2);
    }

    #[test]
    fn has_children_sees_descendants_at_any_depth() {
        let b = backend();
        b.create("/d", &Metadata::new_dir(0), true).unwrap();
        assert!(!b.has_children("/d").unwrap());
        b.create("/d/x/y", &Metadata::new_file(0), true).unwrap();
        assert!(b.has_children("/d").unwrap());
    }

    #[test]
    fn merge_racing_remove_is_shadowed() {
        // A size update applied after a remove must not resurrect the
        // file for long: the operator materializes a record, but the
        // usual sequence is update-then-remove, where the tombstone
        // wins. Verify the remove-then-update edge produces a record
        // (fold stays total) that a second remove clears.
        let b = backend();
        b.create("/f", &Metadata::new_file(0), true).unwrap();
        b.remove("/f").unwrap();
        b.update_size("/f", 77, 1).unwrap();
        assert_eq!(b.stat("/f").unwrap().size, 77);
        b.remove("/f").unwrap();
        assert_eq!(b.stat("/f"), Err(GkfsError::NotFound));
    }

    #[test]
    fn operand_encoding_roundtrip() {
        let op = encode_size_operand(123, 456);
        assert_eq!(decode_size_operand(&op), Some((123, 456)));
        assert_eq!(decode_size_operand(b"short"), None);
    }
}
