//! The chunk task engine — per-chunk fan-out for the data path.
//!
//! Paper §III-B: a daemon splits each I/O request into its chunks and
//! hands every chunk to an Argobots user-level thread so chunk I/O
//! overlaps. This module is that dispatch layer over
//! [`gkfs_common::TaskPool`]: a `WriteChunks`/`ReadChunks` batch is cut
//! into contiguous *segments* (aligned to same-chunk runs so backend
//! coalescing is never split), the segments run on the pool's workers,
//! and the handler thread gathers results in op order. Saturation
//! degrades gracefully — when the pool queue is full the handler runs
//! the segment itself (caller-runs, like the RPC server's accept path),
//! so overload collapses to the serial pre-engine behavior instead of
//! queuing without bound.
//!
//! Read replies are scatter/gather: the handler sizes one reply buffer
//! up front and every segment writes its bytes directly into its own
//! disjoint window — no per-op `extend_from_slice` concatenation. Only
//! a short read (EOF inside the batch) forces compaction copies, and
//! those are counted in `reply_copy_bytes` so the "no-copy on the happy
//! path" claim is checkable from `gkfs-cli df`.

use bytes::Bytes;
use gkfs_common::{DaemonConfig, GkfsError, Result, TaskPool};
use gkfs_storage::{BatchOp, ChunkStorage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Reject read batches whose reply would exceed this (a malformed or
/// hostile request, not a real stripe: clients cap far below it).
pub const MAX_READ_BATCH_BYTES: u64 = 256 * 1024 * 1024;

/// Per-daemon chunk dispatch: the task pool plus engine counters.
pub struct ChunkEngine {
    pool: TaskPool,
    /// Bytes moved while compacting a read reply after short reads.
    reply_copy_bytes: AtomicU64,
}

/// Raw base pointer of the shared reply buffer, made sendable so
/// segment tasks can carry their window across threads.
struct SendPtr(*mut u8);

// SAFETY: only ever sliced over one segment's own window — windows of
// distinct segments are disjoint by construction (running-sum
// `buf_offset` layout in `read_batch`), and the buffer outlives every
// task because the handler blocks in `gather` until all tasks report.
unsafe impl Send for SendPtr {}

/// `(start, end)` op-index ranges: at most `max_tasks` contiguous
/// segments, never splitting a run of ops on the same chunk (those are
/// the backend's coalescing unit).
fn segment(ops: &[BatchOp], max_tasks: usize) -> Vec<(usize, usize)> {
    let target = ops.len().div_ceil(max_tasks.max(1)).max(1);
    let mut segs = Vec::new();
    let mut start = 0;
    while start < ops.len() {
        let mut end = (start + target).min(ops.len());
        // Extend to the end of the current same-chunk run.
        while end < ops.len() && ops[end].chunk_id == ops[end - 1].chunk_id {
            end += 1;
        }
        segs.push((start, end));
        start = end;
    }
    segs
}

impl ChunkEngine {
    /// Engine sized from the daemon's config knobs. The worker count
    /// is capped at the machine's available parallelism: Argobots in
    /// the paper multiplexes chunk ULTs over a fixed set of execution
    /// streams rather than oversubscribing kernel threads, and extra
    /// workers beyond the core count only add context switches (on a
    /// single-core node the engine degenerates to the inline path).
    pub fn new(config: &DaemonConfig) -> ChunkEngine {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ChunkEngine {
            pool: TaskPool::new(
                "chunk-io",
                config.chunk_io_threads.min(cores),
                config.chunk_queue_depth,
            ),
            reply_copy_bytes: AtomicU64::new(0),
        }
    }

    /// Uncapped worker count, so tests exercise the multi-segment
    /// scatter/gather path even on a single-core machine.
    #[cfg(test)]
    fn with_workers(threads: usize, depth: usize) -> ChunkEngine {
        ChunkEngine {
            pool: TaskPool::new("chunk-io", threads, depth),
            reply_copy_bytes: AtomicU64::new(0),
        }
    }

    /// `(tasks_spawned, inline_fallbacks, reply_copy_bytes)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        let (spawned, inline) = self.pool.counters();
        (spawned, inline, self.reply_copy_bytes.load(Ordering::Relaxed))
    }

    /// Execute a write batch: fan segments out over the pool, run
    /// overflow inline, first error in op order wins. `bulk` is shared
    /// by reference count — tasks never copy the payload.
    pub fn write_batch(
        &self,
        storage: &Arc<dyn ChunkStorage>,
        path: &str,
        ops: &[BatchOp],
        bulk: &Bytes,
    ) -> Result<()> {
        let segs = segment(ops, self.pool.workers());
        if segs.len() <= 1 {
            return storage.write_chunks_batch(path, ops, bulk);
        }
        let (tx, rx) = mpsc::channel::<(usize, Result<()>)>();
        for (seg_idx, &(start, end)) in segs.iter().enumerate() {
            let job = {
                let storage = storage.clone();
                let path = path.to_string();
                let seg_ops = ops[start..end].to_vec();
                let bulk = bulk.clone();
                let tx = tx.clone();
                move || {
                    let res = storage.write_chunks_batch(&path, &seg_ops, &bulk);
                    let _ = tx.send((seg_idx, res));
                }
            };
            if let Err(job) = self.pool.try_submit(Box::new(job)) {
                job(); // caller-runs: the handler thread absorbs overflow
            }
        }
        drop(tx);
        gather(rx, segs.len()).map(|_| ())
    }

    /// Execute a read batch into one pre-sized reply buffer; returns
    /// `(bulk, per-op lens)` with the bulk already compacted to the
    /// dense concatenation the wire contract requires.
    pub fn read_batch(
        &self,
        storage: &Arc<dyn ChunkStorage>,
        path: &str,
        ops: &[BatchOp],
    ) -> Result<(Vec<u8>, Vec<u64>)> {
        // Wire-controlled lens: an unchecked sum wraps in release
        // builds (overflow-checks off) and would slip a huge batch
        // under the size cap while the per-segment windows stay huge,
        // turning the unsafe scatter path below into out-of-bounds
        // writes. Sum checked, and verify the dense running-sum
        // `buf_offset` layout the disjoint-window argument rests on.
        let mut total: u64 = 0;
        for op in ops {
            if op.buf_offset != total {
                return Err(GkfsError::InvalidArgument(
                    "batch buffer layout is not the dense running sum".into(),
                ));
            }
            match total.checked_add(op.len) {
                Some(t) if t <= MAX_READ_BATCH_BYTES => total = t,
                _ => {
                    return Err(GkfsError::InvalidArgument(format!(
                        "read batch exceeds {MAX_READ_BATCH_BYTES} bytes"
                    )))
                }
            }
        }
        let mut out = vec![0u8; total as usize];
        let segs = segment(ops, self.pool.workers());
        let mut seg_lens: Vec<Option<Vec<u64>>> = vec![None; segs.len()];
        if segs.len() <= 1 {
            let lens = storage.read_chunks_batch(path, ops, &mut out)?;
            if let Some(slot) = seg_lens.first_mut() {
                *slot = Some(lens);
            }
        } else {
            let base = SendPtr(out.as_mut_ptr());
            let (tx, rx) = mpsc::channel::<(usize, Result<Vec<u64>>)>();
            for (seg_idx, &(start, end)) in segs.iter().enumerate() {
                let win_start = ops[start].buf_offset;
                // Safe by the dense-layout validation above: every
                // buf_offset is the exact running sum, so window
                // bounds come straight from it (no re-summing that
                // could diverge from the checked `total`).
                let win_end = if end < ops.len() { ops[end].buf_offset } else { total };
                let win_len = win_end - win_start;
                // Rebase the segment's ops onto its own window so the
                // task only ever forms a slice it exclusively owns.
                let seg_ops: Vec<BatchOp> = ops[start..end]
                    .iter()
                    .map(|o| BatchOp {
                        buf_offset: o.buf_offset - win_start,
                        ..*o
                    })
                    .collect();
                // SAFETY: `base` stays valid and unaliased for this
                // window: the buffer lives on this stack frame past the
                // `gather` below, and no other segment's window
                // overlaps [win_start, win_start + win_len).
                let win = unsafe {
                    let ptr = base.0.add(win_start as usize);
                    SendPtr(ptr)
                };
                let job = {
                    let storage = storage.clone();
                    let path = path.to_string();
                    let tx = tx.clone();
                    move || {
                        let win = win;
                        // SAFETY: disjoint window of the shared reply
                        // buffer; see the invariants on `SendPtr`.
                        let out: &mut [u8] = unsafe {
                            std::slice::from_raw_parts_mut(win.0, win_len as usize)
                        };
                        let res = storage.read_chunks_batch(&path, &seg_ops, out);
                        let _ = tx.send((seg_idx, res));
                    }
                };
                if let Err(job) = self.pool.try_submit(Box::new(job)) {
                    job();
                }
            }
            drop(tx);
            // Blocks until every task has reported (or provably died):
            // only after this may `out` move or drop.
            for (idx, lens) in gather(rx, segs.len())? {
                seg_lens[idx] = Some(lens);
            }
        }
        let mut lens = Vec::with_capacity(ops.len());
        for seg in seg_lens {
            lens.extend(seg.unwrap_or_default());
        }
        // Compact: short reads leave holes; the wire format wants the
        // dense concatenation. Happy path (every op full-length) moves
        // nothing and counts nothing.
        let mut dense = 0usize;
        for (op, &n) in ops.iter().zip(&lens) {
            let n = n as usize;
            let planned = op.buf_offset as usize;
            if planned != dense && n > 0 {
                out.copy_within(planned..planned + n, dense);
                self.reply_copy_bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
            dense += n;
        }
        out.truncate(dense);
        Ok((out, lens))
    }
}

/// Collect one result per segment, returning successes or the error
/// with the lowest segment index (op order). A closed channel with
/// results missing means a task died without reporting — surfaced as
/// an RPC-layer error rather than a hang or a partial reply.
fn gather<T>(
    rx: mpsc::Receiver<(usize, Result<T>)>,
    expect: usize,
) -> Result<Vec<(usize, T)>> {
    let mut oks = Vec::with_capacity(expect);
    let mut first_err: Option<(usize, GkfsError)> = None;
    for _ in 0..expect {
        match rx.recv() {
            Ok((idx, Ok(v))) => oks.push((idx, v)),
            Ok((idx, Err(e))) => {
                if first_err.as_ref().is_none_or(|(i, _)| idx < *i) {
                    first_err = Some((idx, e));
                }
            }
            Err(_) => {
                return Err(first_err.map(|(_, e)| e).unwrap_or_else(|| {
                    GkfsError::Rpc("chunk task lost without result".into())
                }));
            }
        }
    }
    match first_err {
        None => Ok(oks),
        Some((_, e)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_storage::MemChunkStorage;

    fn engine(threads: usize) -> ChunkEngine {
        ChunkEngine::with_workers(threads, DaemonConfig::default().chunk_queue_depth)
    }

    fn layout(specs: &[(u64, u64, u64)]) -> Vec<BatchOp> {
        let mut cursor = 0;
        specs
            .iter()
            .map(|&(chunk_id, offset, len)| {
                let op = BatchOp { chunk_id, offset, len, buf_offset: cursor };
                cursor += len;
                op
            })
            .collect()
    }

    #[test]
    fn segments_align_to_chunk_runs() {
        let ops = layout(&[(0, 0, 4), (0, 4, 4), (1, 0, 4), (2, 0, 4), (2, 4, 4)]);
        let segs = segment(&ops, 2);
        assert_eq!(segs, vec![(0, 3), (3, 5)]);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous cover");
        }
        // A run never straddles segments.
        for &(_, e) in &segs {
            if e < ops.len() {
                assert_ne!(ops[e - 1].chunk_id, ops[e].chunk_id);
            }
        }
    }

    #[test]
    fn segments_degenerate_cases() {
        assert!(segment(&[], 4).is_empty());
        let one = layout(&[(0, 0, 8)]);
        assert_eq!(segment(&one, 4), vec![(0, 1)]);
        // max_tasks == 0 behaves like 1 (single inline segment).
        let many = layout(&[(0, 0, 4), (1, 0, 4), (2, 0, 4)]);
        assert_eq!(segment(&many, 0), vec![(0, 3)]);
    }

    #[test]
    fn write_read_roundtrip_through_pool() {
        for threads in [0usize, 1, 4] {
            let eng = engine(threads);
            let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
            let ops = layout(&[(0, 0, 64), (1, 0, 64), (2, 0, 64), (3, 0, 64)]);
            let bulk: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
            eng.write_batch(&storage, "/e", &ops, &Bytes::from(bulk.clone()))
                .unwrap();
            let (out, lens) = eng.read_batch(&storage, "/e", &ops).unwrap();
            assert_eq!(lens, vec![64; 4], "threads={threads}");
            assert_eq!(out, bulk, "threads={threads}");
            let (_, _, copies) = eng.counters();
            assert_eq!(copies, 0, "full-length reads must not compact");
        }
    }

    #[test]
    fn short_reads_compact_densely() {
        let eng = engine(2);
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        // Chunk 0 holds 16 bytes, chunk 1 holds 32: reading 32 from
        // each leaves a hole after chunk 0's short read.
        storage.write_chunk("/s", 0, 0, &[1u8; 16]).unwrap();
        storage.write_chunk("/s", 1, 0, &[2u8; 32]).unwrap();
        let ops = layout(&[(0, 0, 32), (1, 0, 32)]);
        let (out, lens) = eng.read_batch(&storage, "/s", &ops).unwrap();
        assert_eq!(lens, vec![16, 32]);
        assert_eq!(out.len(), 48, "dense reply: no hole");
        assert_eq!(&out[..16], &[1u8; 16]);
        assert_eq!(&out[16..], &[2u8; 32]);
        let (_, _, copies) = eng.counters();
        assert_eq!(copies, 32, "chunk 1's bytes moved left once");
    }

    #[test]
    fn oversized_read_batch_rejected() {
        let eng = engine(1);
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        let ops = layout(&[(0, 0, MAX_READ_BATCH_BYTES + 1)]);
        assert!(matches!(
            eng.read_batch(&storage, "/big", &ops),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn wrapping_len_sum_rejected() {
        let eng = engine(2);
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        // Lens summing past 2^64: an unchecked (wrapping) total would
        // come out tiny and pass the size cap while the segment
        // windows stay huge.
        let ops = vec![
            BatchOp { chunk_id: 0, offset: 0, len: u64::MAX, buf_offset: 0 },
            BatchOp { chunk_id: 1, offset: 0, len: 3, buf_offset: u64::MAX },
        ];
        assert!(matches!(
            eng.read_batch(&storage, "/wrap", &ops),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn non_dense_layout_rejected() {
        let eng = engine(2);
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        let ops = vec![BatchOp { chunk_id: 0, offset: 0, len: 8, buf_offset: 4 }];
        assert!(matches!(
            eng.read_batch(&storage, "/hole", &ops),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn concurrent_batches_from_many_handler_threads() {
        let eng = Arc::new(engine(4));
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let eng = eng.clone();
                let storage = storage.clone();
                s.spawn(move || {
                    let path = format!("/t{t}");
                    let ops = layout(&[(0, 0, 128), (1, 0, 128), (2, 0, 128)]);
                    let bulk = Bytes::from(vec![t as u8; 384]);
                    for _ in 0..20 {
                        eng.write_batch(&storage, &path, &ops, &bulk).unwrap();
                        let (out, lens) = eng.read_batch(&storage, &path, &ops).unwrap();
                        assert_eq!(lens, vec![128; 3]);
                        assert!(out.iter().all(|&b| b == t as u8));
                    }
                });
            }
        });
    }
}
