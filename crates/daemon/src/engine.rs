//! The chunk batch engine — the daemon's edge of the data path.
//!
//! Paper §III-B: a daemon splits each I/O request into its chunks and
//! hands every chunk to an Argobots user-level thread so chunk I/O
//! overlaps. Earlier revisions did that fan-out here, in the daemon;
//! the parallelism now lives *inside* the storage backend behind the
//! completion-based [`ChunkStorage::submit_batch`] API, so direct
//! storage users (benches, tools, future RDMA paths) get the same
//! overlap and the daemon is a thin adapter:
//!
//! * validate the wire-controlled geometry (size cap, dense layout),
//! * submit the batch and wait on its [`BatchCompletion`],
//! * compact the read reply for the wire.
//!
//! Read replies are scatter/gather end to end: storage sizes one reply
//! buffer and its segment tasks write their bytes directly into
//! disjoint windows — no per-op concatenation. Only a short read (EOF
//! inside the batch) forces compaction copies here, and those are
//! counted in `reply_copy_bytes` so the "no-copy on the happy path"
//! claim is checkable from `gkfs-cli df` (and gated in CI).

use bytes::Bytes;
use gkfs_common::{GkfsError, Result};
use gkfs_storage::{BatchOp, BatchPayload, ChunkStorage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reject read batches whose reply would exceed this (a malformed or
/// hostile request, not a real stripe: clients cap far below it).
/// Mirrors the storage layer's own batch cap.
pub const MAX_READ_BATCH_BYTES: u64 = gkfs_storage::MAX_BATCH_BYTES;

/// Per-daemon batch adapter: wire-side validation plus reply-assembly
/// counters. The I/O engine itself (task pool or io_uring) belongs to
/// the storage backend.
#[derive(Default)]
pub struct ChunkEngine {
    /// Bytes moved while compacting a read reply after short reads.
    reply_copy_bytes: AtomicU64,
}

impl ChunkEngine {
    /// A fresh adapter (all counters zero).
    pub fn new() -> ChunkEngine {
        ChunkEngine::default()
    }

    /// Bytes moved compacting read replies after short reads — zero on
    /// the happy path (every op full-length).
    pub fn reply_copy_bytes(&self) -> u64 {
        self.reply_copy_bytes.load(Ordering::Relaxed)
    }

    /// Execute a write batch. `bulk` is shared by reference count —
    /// the storage backend's segment tasks never copy the payload.
    pub fn write_batch(
        &self,
        storage: &Arc<dyn ChunkStorage>,
        path: &str,
        ops: &[BatchOp],
        bulk: &Bytes,
    ) -> Result<()> {
        storage
            .submit_batch(path, ops, BatchPayload::Write(bulk.clone()))
            .wait()
            .map(|_| ())
    }

    /// Execute a read batch; returns `(bulk, per-op lens)` with the
    /// bulk already compacted to the dense concatenation the wire
    /// contract requires.
    pub fn read_batch(
        &self,
        storage: &Arc<dyn ChunkStorage>,
        path: &str,
        ops: &[BatchOp],
    ) -> Result<(Vec<u8>, Vec<u64>)> {
        // Wire-controlled lens: validate before any allocation so a
        // hostile batch can't force a huge zeroed buffer. The storage
        // layer re-checks (its API is public), but the daemon owns the
        // error the client sees.
        gkfs_storage::validate_dense_layout(ops)?;
        let out = storage.submit_batch(path, ops, BatchPayload::Read).wait()?;
        let (mut bulk, lens) = (out.data, out.lens);
        if lens.len() != ops.len() {
            return Err(GkfsError::Rpc("storage returned mismatched batch lens".into()));
        }
        // Compact: short reads leave holes; the wire format wants the
        // dense concatenation. Happy path (every op full-length) moves
        // nothing and counts nothing.
        let mut dense = 0usize;
        for (op, &n) in ops.iter().zip(&lens) {
            let n = n as usize;
            let planned = op.buf_offset as usize;
            if planned != dense && n > 0 {
                bulk.copy_within(planned..planned + n, dense);
                self.reply_copy_bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
            dense += n;
        }
        bulk.truncate(dense);
        Ok((bulk, lens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_common::IoBackend;
    use gkfs_storage::{FileChunkStorage, MemChunkStorage};

    fn layout(specs: &[(u64, u64, u64)]) -> Vec<BatchOp> {
        let mut cursor = 0;
        specs
            .iter()
            .map(|&(chunk_id, offset, len)| {
                let op = BatchOp { chunk_id, offset, len, buf_offset: cursor };
                cursor += len;
                op
            })
            .collect()
    }

    /// Backends for end-to-end engine tests: the serial in-memory
    /// store and a file store on the parallel pool engine, so the
    /// multi-segment scatter/gather path runs even on small machines.
    fn storages(tag: &str) -> Vec<(&'static str, Arc<dyn ChunkStorage>, Option<std::path::PathBuf>)> {
        let dir = std::env::temp_dir().join(format!("gkfs-eng-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        vec![
            ("mem", Arc::new(MemChunkStorage::new()), None),
            (
                "file-pool",
                Arc::new(FileChunkStorage::open_with(&dir, IoBackend::Pool, 4, 64).unwrap()),
                Some(dir),
            ),
        ]
    }

    #[test]
    fn write_read_roundtrip() {
        for (name, storage, dir) in storages("rt") {
            let eng = ChunkEngine::new();
            let ops = layout(&[(0, 0, 64), (1, 0, 64), (2, 0, 64), (3, 0, 64)]);
            let bulk: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
            eng.write_batch(&storage, "/e", &ops, &Bytes::from(bulk.clone()))
                .unwrap();
            let (out, lens) = eng.read_batch(&storage, "/e", &ops).unwrap();
            assert_eq!(lens, vec![64; 4], "{name}");
            assert_eq!(out, bulk, "{name}");
            assert_eq!(eng.reply_copy_bytes(), 0, "full-length reads must not compact");
            if let Some(dir) = dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }

    #[test]
    fn short_reads_compact_densely() {
        for (name, storage, dir) in storages("short") {
            let eng = ChunkEngine::new();
            // Chunk 0 holds 16 bytes, chunk 1 holds 32: reading 32 from
            // each leaves a hole after chunk 0's short read.
            storage.write_chunk("/s", 0, 0, &[1u8; 16]).unwrap();
            storage.write_chunk("/s", 1, 0, &[2u8; 32]).unwrap();
            let ops = layout(&[(0, 0, 32), (1, 0, 32)]);
            let (out, lens) = eng.read_batch(&storage, "/s", &ops).unwrap();
            assert_eq!(lens, vec![16, 32], "{name}");
            assert_eq!(out.len(), 48, "dense reply: no hole ({name})");
            assert_eq!(&out[..16], &[1u8; 16], "{name}");
            assert_eq!(&out[16..], &[2u8; 32], "{name}");
            assert_eq!(eng.reply_copy_bytes(), 32, "chunk 1's bytes moved left once ({name})");
            if let Some(dir) = dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }

    #[test]
    fn oversized_read_batch_rejected() {
        let eng = ChunkEngine::new();
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        let ops = layout(&[(0, 0, MAX_READ_BATCH_BYTES + 1)]);
        assert!(matches!(
            eng.read_batch(&storage, "/big", &ops),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn wrapping_len_sum_rejected() {
        let eng = ChunkEngine::new();
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        // Lens summing past 2^64: an unchecked (wrapping) total would
        // come out tiny and pass the size cap while the segment
        // windows stay huge.
        let ops = vec![
            BatchOp { chunk_id: 0, offset: 0, len: u64::MAX, buf_offset: 0 },
            BatchOp { chunk_id: 1, offset: 0, len: 3, buf_offset: u64::MAX },
        ];
        assert!(matches!(
            eng.read_batch(&storage, "/wrap", &ops),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn non_dense_layout_rejected() {
        let eng = ChunkEngine::new();
        let storage: Arc<dyn ChunkStorage> = Arc::new(MemChunkStorage::new());
        let ops = vec![BatchOp { chunk_id: 0, offset: 0, len: 8, buf_offset: 4 }];
        assert!(matches!(
            eng.read_batch(&storage, "/hole", &ops),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn concurrent_batches_from_many_handler_threads() {
        let dir = std::env::temp_dir().join(format!("gkfs-eng-conc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let eng = Arc::new(ChunkEngine::new());
        let storage: Arc<dyn ChunkStorage> =
            Arc::new(FileChunkStorage::open_with(&dir, IoBackend::Pool, 4, 64).unwrap());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let eng = eng.clone();
                let storage = storage.clone();
                s.spawn(move || {
                    let path = format!("/t{t}");
                    let ops = layout(&[(0, 0, 128), (1, 0, 128), (2, 0, 128)]);
                    let bulk = Bytes::from(vec![t as u8; 384]);
                    for _ in 0..20 {
                        eng.write_batch(&storage, &path, &ops, &bulk).unwrap();
                        let (out, lens) = eng.read_batch(&storage, &path, &ops).unwrap();
                        assert_eq!(lens, vec![128; 3]);
                        assert!(out.iter().all(|&b| b == t as u8));
                    }
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
