//! Daemon lifecycle.
//!
//! A [`Daemon`] owns the two backends and an RPC server. It can be
//! reached in-process (zero-copy endpoints for the in-process cluster)
//! and/or over TCP (separate processes / machines). The paper stresses
//! cheap deployment — *"can be easily deployed in under 20 seconds on
//! a 512 node cluster"* — which here means construction is just
//! opening the backends and spawning the handler pool.

use crate::handlers::{build_registry, Backends};
use crate::metadata::MetadataBackend;
use gkfs_common::lock::{rank, OrderedMutex};
use gkfs_common::{DaemonConfig, Result};
use gkfs_rpc::transport::tcp::TcpServer;
use gkfs_rpc::{Endpoint, RpcServer};
use gkfs_storage::{ChunkStorage, FileChunkStorage, MemChunkStorage};
use std::sync::Arc;

/// One GekkoFS daemon: metadata KV store + chunk storage + RPC server.
pub struct Daemon {
    backends: Arc<Backends>,
    rpc: Arc<RpcServer>,
    tcp: OrderedMutex<Option<Arc<TcpServer>>>,
    config: DaemonConfig,
}

impl Daemon {
    /// Construct and start a daemon according to `config`:
    /// `root_dir = None` → fully in-memory backends; otherwise the KV
    /// store and chunk files live under the given directory (the
    /// node-local SSD in the paper's deployment).
    pub fn spawn(config: DaemonConfig) -> Result<Arc<Daemon>> {
        let (meta, data): (MetadataBackend, Arc<dyn ChunkStorage>) = match &config.root_dir {
            None => (
                MetadataBackend::open_memory()?,
                Arc::new(MemChunkStorage::new()),
            ),
            Some(root) => {
                // Size the storage I/O pool like the paper sizes
                // Argobots execution streams: a fixed set bounded by
                // the machine, never oversubscribing kernel threads.
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                (
                    MetadataBackend::open_dir(root.join("metadata"), config.kv_wal)?,
                    Arc::new(FileChunkStorage::open_with(
                        root.join("data"),
                        config.io_backend,
                        config.chunk_io_threads.min(cores),
                        config.chunk_queue_depth,
                    )?),
                )
            }
        };
        let engine = crate::engine::ChunkEngine::new();
        let backends = Arc::new(Backends { meta, data, engine });
        let registry = build_registry(backends.clone());
        let rpc = RpcServer::new(registry, config.handler_threads);
        gkfs_common::gkfs_info!(
            "daemon up: root={:?} handlers={} chunk={} chunk_io={}",
            config.root_dir,
            config.handler_threads,
            config.chunk_size,
            config.chunk_io_threads
        );
        Ok(Arc::new(Daemon {
            backends,
            rpc,
            tcp: OrderedMutex::new(rank::DAEMON_TCP, None),
            config,
        }))
    }

    /// In-process client endpoint (the RDMA-like zero-copy path).
    pub fn endpoint(self: &Arc<Daemon>) -> Arc<dyn Endpoint> {
        self.rpc.endpoint()
    }

    /// In-process client endpoint with explicit options — chaos and
    /// fault-injection tests shrink the per-call timeout so dropped
    /// requests burn milliseconds, not the 30 s default.
    pub fn endpoint_with(
        self: &Arc<Daemon>,
        opts: gkfs_rpc::EndpointOptions,
    ) -> Arc<dyn Endpoint> {
        self.rpc.endpoint_with(opts)
    }

    /// Additionally serve TCP on `addr` (e.g. `"127.0.0.1:0"`).
    /// Returns the bound address.
    pub fn serve_tcp(self: &Arc<Daemon>, addr: &str) -> Result<std::net::SocketAddr> {
        let registry = build_registry(self.backends.clone());
        let server = TcpServer::bind(addr, registry, self.config.handler_threads)?;
        let bound = server.local_addr();
        gkfs_common::gkfs_info!("daemon listening on {bound}");
        *self.tcp.lock() = Some(server);
        Ok(bound)
    }

    /// The daemon's backends (tests, stats collection).
    pub fn backends(&self) -> &Arc<Backends> {
        &self.backends
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Begin an orderly shutdown: refuse new requests, stop TCP, then
    /// drain the KV store's background flush/compaction work so every
    /// frozen memtable reaches an SSTable before the process exits.
    pub fn shutdown(&self) {
        gkfs_common::gkfs_info!("daemon shutting down");
        self.rpc.begin_shutdown();
        // Take the server out before winding it down: an `if let` on
        // `.lock().take()` would hold the guard across the whole TCP
        // teardown (accept-thread join and connection severing).
        let tcp = self.tcp.lock().take();
        if let Some(tcp) = tcp {
            tcp.shutdown();
        }
        if let Err(e) = self.backends.meta.shutdown() {
            gkfs_common::gkfs_info!("metadata store shutdown error: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkfs_common::GkfsError;
    use gkfs_rpc::proto::{CreateReq, PathReq};
    use gkfs_rpc::{Opcode, Request};

    #[test]
    fn spawn_and_serve_inproc() {
        let d = Daemon::spawn(DaemonConfig::default()).unwrap();
        let ep = d.endpoint();
        let create = CreateReq {
            path: "/hello".into(),
            kind: 0,
            mode: 0o644,
            exclusive: true,
            now_ns: 0,
        };
        ep.call(Request::new(Opcode::Create, create.encode()))
            .unwrap()
            .into_result()
            .unwrap();
        let resp = ep
            .call(Request::new(Opcode::Stat, PathReq::new("/hello").encode()))
            .unwrap()
            .into_result()
            .unwrap();
        assert!(!resp.body.is_empty());
    }

    #[test]
    fn serve_tcp_and_shutdown() {
        let d = Daemon::spawn(DaemonConfig::default()).unwrap();
        let addr = d.serve_tcp("127.0.0.1:0").unwrap();
        let ep = gkfs_rpc::TcpEndpoint::connect(&addr.to_string()).unwrap();
        ep.call(Request::new(
            Opcode::Create,
            CreateReq {
                path: "/tcp-file".into(),
                kind: 0,
                mode: 0o644,
                exclusive: true,
                now_ns: 0,
            }
            .encode(),
        ))
        .unwrap()
        .into_result()
        .unwrap();
        d.shutdown();
        // In-process endpoint now refuses.
        let ep2 = d.endpoint();
        assert!(matches!(
            ep2.call(Request::new(Opcode::Ping, Vec::new())),
            Err(GkfsError::ShuttingDown)
        ));
    }

    #[test]
    fn disk_backed_daemon_persists_metadata() {
        let dir = std::env::temp_dir().join(format!("gkfs-daemon-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DaemonConfig {
            root_dir: Some(dir.clone()),
            kv_wal: true,
            ..DaemonConfig::default()
        };
        {
            let d = Daemon::spawn(cfg.clone()).unwrap();
            d.backends()
                .meta
                .create("/persist", &gkfs_common::Metadata::new_file(9), true)
                .unwrap();
            d.backends()
                .data
                .write_chunk("/persist", 0, 0, b"bytes")
                .unwrap();
            d.shutdown();
        }
        {
            let d = Daemon::spawn(cfg).unwrap();
            assert_eq!(d.backends().meta.stat("/persist").unwrap().ctime_ns, 9);
            assert_eq!(
                d.backends().data.read_chunk("/persist", 0, 0, 5).unwrap(),
                b"bytes"
            );
            d.shutdown();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
