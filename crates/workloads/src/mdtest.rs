//! mdtest: parallel create / stat / remove in one directory.
//!
//! Mirrors the paper's §IV-A methodology: each process performs its
//! operations on its own disjoint set of zero-byte files, all inside a
//! single directory (`single dir`) or inside a per-process directory
//! (`unique dir`). Phases are separated by barriers and timed by wall
//! clock across all processes, which is how mdtest reports
//! "operations per second".

use gekkofs::{Cluster, GekkoClient, OpenFlags, Result};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// mdtest parameters.
#[derive(Debug, Clone)]
pub struct MdtestConfig {
    /// Number of concurrent "ranks" (threads, each with its own
    /// mounted client). The paper ran 16 per node.
    pub processes: usize,
    /// Files each rank creates/stats/removes (paper: 100,000).
    pub files_per_process: usize,
    /// Parent directory for the workload.
    pub work_dir: String,
    /// `false` = all ranks share one directory (the hard case);
    /// `true` = one directory per rank.
    pub unique_dir: bool,
}

impl Default for MdtestConfig {
    fn default() -> Self {
        MdtestConfig {
            processes: 4,
            files_per_process: 1000,
            work_dir: "/mdtest".into(),
            unique_dir: false,
        }
    }
}

/// mdtest phase timings and derived rates.
#[derive(Debug, Clone)]
pub struct MdtestResult {
    /// Files processed per phase across all ranks.
    pub total_files: usize,
    /// Wall-clock of the create phase.
    pub create_time: Duration,
    /// Wall-clock of the stat phase.
    pub stat_time: Duration,
    /// Wall-clock of the remove phase.
    pub remove_time: Duration,
}

impl MdtestResult {
    /// Aggregate create throughput.
    pub fn creates_per_sec(&self) -> f64 {
        self.total_files as f64 / self.create_time.as_secs_f64()
    }
    /// Aggregate stat throughput.
    pub fn stats_per_sec(&self) -> f64 {
        self.total_files as f64 / self.stat_time.as_secs_f64()
    }
    /// Aggregate remove throughput.
    pub fn removes_per_sec(&self) -> f64 {
        self.total_files as f64 / self.remove_time.as_secs_f64()
    }
}

fn file_path(cfg: &MdtestConfig, rank: usize, i: usize) -> String {
    if cfg.unique_dir {
        format!("{}/rank{}/file.{}.{}", cfg.work_dir, rank, rank, i)
    } else {
        format!("{}/file.{}.{}", cfg.work_dir, rank, i)
    }
}

/// Run the three mdtest phases against a cluster. Each rank mounts its
/// own client (as each MPI process links its own preload library).
pub fn run_mdtest(cluster: &Cluster, cfg: &MdtestConfig) -> Result<MdtestResult> {
    run_mdtest_with(|| cluster.mount(), cfg)
}

/// Like [`run_mdtest`], but the caller supplies how ranks mount —
/// e.g. fresh TCP connections to a remote deployment (the
/// `gkfs-mdtest` binary) instead of an in-process cluster.
pub fn run_mdtest_with(
    make_client: impl Fn() -> Result<GekkoClient>,
    cfg: &MdtestConfig,
) -> Result<MdtestResult> {
    let clients: Vec<GekkoClient> = (0..cfg.processes)
        .map(|_| make_client())
        .collect::<Result<_>>()?;

    // Setup (untimed, like mdtest's tree creation).
    clients[0].mkdir(&cfg.work_dir, 0o755).ok();
    if cfg.unique_dir {
        for (rank, client) in clients.iter().enumerate().take(cfg.processes) {
            client
                .mkdir(&format!("{}/rank{}", cfg.work_dir, rank), 0o755)
                .ok();
        }
    }

    let barrier = Barrier::new(cfg.processes);
    let mut phase_times = [Duration::ZERO; 3];

    for (phase_idx, phase) in ["create", "stat", "remove"].iter().enumerate() {
        let start_gate = Barrier::new(cfg.processes + 1);
        let t = std::thread::scope(|s| -> Result<Duration> {
            let handles: Vec<_> = clients
                .iter()
                .enumerate()
                .map(|(rank, client)| {
                    let barrier = &barrier;
                    let start_gate = &start_gate;
                    let cfg = &cfg;
                    s.spawn(move || -> Result<()> {
                        start_gate.wait();
                        for i in 0..cfg.files_per_process {
                            let path = file_path(cfg, rank, i);
                            match *phase {
                                "create" => {
                                    // mdtest: open(O_CREAT|O_EXCL) + close.
                                    let fd = client.open(
                                        &path,
                                        OpenFlags::WRONLY.with_create().with_exclusive(),
                                    )?;
                                    client.close(fd)?;
                                }
                                "stat" => {
                                    client.stat(&path)?;
                                }
                                _ => {
                                    client.unlink(&path)?;
                                }
                            }
                        }
                        barrier.wait();
                        Ok(())
                    })
                })
                .collect();
            start_gate.wait();
            let t0 = Instant::now();
            for h in handles {
                h.join().unwrap()?;
            }
            Ok(t0.elapsed())
        })?;
        phase_times[phase_idx] = t;
    }

    Ok(MdtestResult {
        total_files: cfg.processes * cfg.files_per_process,
        create_time: phase_times[0],
        stat_time: phase_times[1],
        remove_time: phase_times[2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gekkofs::ClusterConfig;

    #[test]
    fn mdtest_single_dir_runs_clean() {
        let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
        let cfg = MdtestConfig {
            processes: 4,
            files_per_process: 200,
            work_dir: "/md".into(),
            unique_dir: false,
        };
        let result = run_mdtest(&cluster, &cfg).unwrap();
        assert_eq!(result.total_files, 800);
        assert!(result.creates_per_sec() > 0.0);
        assert!(result.stats_per_sec() > 0.0);
        assert!(result.removes_per_sec() > 0.0);
        // After remove, the directory is empty again.
        let fs = cluster.mount().unwrap();
        assert!(fs.readdir("/md").unwrap().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn mdtest_unique_dir_runs_clean() {
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        let cfg = MdtestConfig {
            processes: 3,
            files_per_process: 100,
            work_dir: "/mdu".into(),
            unique_dir: true,
        };
        let result = run_mdtest(&cluster, &cfg).unwrap();
        assert_eq!(result.total_files, 300);
        let fs = cluster.mount().unwrap();
        // Rank directories remain, but are empty.
        let entries = fs.readdir("/mdu").unwrap();
        assert_eq!(entries.len(), 3);
        for e in entries {
            assert!(fs.readdir(&format!("/mdu/{}", e.name)).unwrap().is_empty());
        }
        cluster.shutdown();
    }

    #[test]
    fn mdtest_create_is_exclusive_across_runs() {
        // Running the create phase twice without remove must fail.
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        let fs = cluster.mount().unwrap();
        fs.mkdir("/dup", 0o755).unwrap();
        let path = "/dup/file.0.0";
        let fd = fs
            .open(path, OpenFlags::WRONLY.with_create().with_exclusive())
            .unwrap();
        fs.close(fd).unwrap();
        assert!(fs
            .open(path, OpenFlags::WRONLY.with_create().with_exclusive())
            .is_err());
        cluster.shutdown();
    }
}
