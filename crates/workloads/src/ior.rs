//! IOR: bulk data throughput with configurable transfer sizes.
//!
//! Mirrors §IV-B's methodology: each process writes `block_size` bytes
//! in `transfer_size` units, then reads them back, either to its own
//! file (*file-per-process*) or into its rank-offset region of one
//! shared file. Random mode shuffles the transfer order within each
//! process's block, reproducing the paper's random-access experiment
//! (which degrades only for transfers smaller than the chunk size).

use gekkofs::{Cluster, GekkoClient, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// IOR parameters.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// Concurrent ranks (threads with their own clients); paper: 16
    /// per node.
    pub processes: usize,
    /// Bytes per I/O call (paper: 8 KiB, 64 KiB, 1 MiB, 64 MiB).
    pub transfer_size: u64,
    /// Total bytes each rank writes/reads (paper: 4 GiB).
    pub block_size: u64,
    /// One file per rank vs. one shared file.
    pub file_per_process: bool,
    /// Shuffle transfer order (random access) instead of sequential.
    pub random: bool,
    /// Directory (file-per-process) or file prefix.
    pub work_dir: String,
}

impl Default for IorConfig {
    fn default() -> Self {
        IorConfig {
            processes: 4,
            transfer_size: 64 * 1024,
            block_size: 1024 * 1024,
            file_per_process: true,
            random: false,
            work_dir: "/ior".into(),
        }
    }
}

/// Aggregate throughput of one IOR run.
#[derive(Debug, Clone)]
pub struct IorResult {
    /// Bytes moved per phase across all ranks.
    pub total_bytes: u64,
    /// Wall-clock of the write phase.
    pub write_time: Duration,
    /// Wall-clock of the read phase.
    pub read_time: Duration,
    /// I/O calls per rank per phase.
    pub transfers_per_process: u64,
    /// Total transfers across all ranks (per phase).
    pub total_transfers: u64,
}

impl IorResult {
    /// Aggregate write bandwidth.
    pub fn write_mib_per_sec(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0) / self.write_time.as_secs_f64()
    }
    /// Aggregate read bandwidth.
    pub fn read_mib_per_sec(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0) / self.read_time.as_secs_f64()
    }
    /// Write I/O operations per second (one op = one transfer).
    pub fn write_iops(&self) -> f64 {
        self.total_transfers as f64 / self.write_time.as_secs_f64()
    }
    /// Read I/O operations per second.
    pub fn read_iops(&self) -> f64 {
        self.total_transfers as f64 / self.read_time.as_secs_f64()
    }
}

fn target_path(cfg: &IorConfig, rank: usize) -> String {
    if cfg.file_per_process {
        format!("{}/data.{rank}", cfg.work_dir)
    } else {
        format!("{}/shared", cfg.work_dir)
    }
}

/// Offsets a rank touches, in issue order.
fn offsets_for(cfg: &IorConfig, rank: usize) -> Vec<u64> {
    let transfers = cfg.block_size / cfg.transfer_size;
    let base = if cfg.file_per_process {
        0
    } else {
        rank as u64 * cfg.block_size
    };
    let mut offs: Vec<u64> = (0..transfers)
        .map(|i| base + i * cfg.transfer_size)
        .collect();
    if cfg.random {
        // Deterministic per-rank shuffle so runs are reproducible.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x10e + rank as u64);
        offs.shuffle(&mut rng);
    }
    offs
}

/// A rank's transfer buffer: distinguishable per rank for verification.
fn pattern(rank: usize, len: u64) -> Vec<u8> {
    (0..len).map(|i| (i as u8) ^ (rank as u8 | 0x40)).collect()
}

/// Run one IOR write phase + read phase against a cluster.
pub fn run_ior(cluster: &Cluster, cfg: &IorConfig) -> Result<IorResult> {
    run_ior_with(|| cluster.mount(), cfg)
}

/// Like [`run_ior`], with caller-supplied mounting (see
/// [`crate::mdtest::run_mdtest_with`]).
pub fn run_ior_with(
    make_client: impl Fn() -> Result<GekkoClient>,
    cfg: &IorConfig,
) -> Result<IorResult> {
    assert!(
        cfg.block_size.is_multiple_of(cfg.transfer_size),
        "block size must be a multiple of transfer size"
    );
    let clients: Vec<GekkoClient> = (0..cfg.processes)
        .map(|_| make_client())
        .collect::<Result<_>>()?;
    clients[0].mkdir(&cfg.work_dir, 0o755).ok();
    // Create targets up front (untimed, as IOR does in its setup).
    if cfg.file_per_process {
        for (rank, c) in clients.iter().enumerate() {
            c.create(&target_path(cfg, rank), 0o644)?;
        }
    } else {
        clients[0].create(&target_path(cfg, 0), 0o644)?;
    }

    let mut times = [Duration::ZERO; 2];
    for (phase_idx, phase) in ["write", "read"].iter().enumerate() {
        let start_gate = Barrier::new(cfg.processes + 1);
        let end_barrier = Barrier::new(cfg.processes);
        let t = std::thread::scope(|s| -> Result<Duration> {
            let handles: Vec<_> = clients
                .iter()
                .enumerate()
                .map(|(rank, client)| {
                    let start_gate = &start_gate;
                    let end_barrier = &end_barrier;
                    let cfg = &cfg;
                    s.spawn(move || -> Result<()> {
                        let path = target_path(cfg, rank);
                        let offsets = offsets_for(cfg, rank);
                        let buf = pattern(rank, cfg.transfer_size);
                        // Open is untimed setup, as in IOR proper; the
                        // handle carries the write-back buffer that
                        // coalesces sub-chunk sequential transfers.
                        let flags = if *phase == "write" {
                            gekkofs::OpenFlags::WRONLY
                        } else {
                            gekkofs::OpenFlags::RDONLY
                        };
                        let h = client.open_handle(&path, flags)?;
                        start_gate.wait();
                        for off in offsets {
                            if *phase == "write" {
                                h.pwrite(off, &buf)?;
                            } else {
                                let data = h.pread(off, cfg.transfer_size as usize)?;
                                debug_assert_eq!(data.len() as u64, cfg.transfer_size);
                            }
                        }
                        h.close()?;
                        client.flush_all()?;
                        end_barrier.wait();
                        Ok(())
                    })
                })
                .collect();
            start_gate.wait();
            let t0 = Instant::now();
            for h in handles {
                h.join().unwrap()?;
            }
            Ok(t0.elapsed())
        })?;
        times[phase_idx] = t;
    }

    let transfers_per_process = cfg.block_size / cfg.transfer_size;
    Ok(IorResult {
        total_bytes: cfg.processes as u64 * cfg.block_size,
        write_time: times[0],
        read_time: times[1],
        transfers_per_process,
        total_transfers: transfers_per_process * cfg.processes as u64,
    })
}

/// Verify the data written by [`run_ior`] (not part of the timed runs).
pub fn verify_ior(cluster: &Cluster, cfg: &IorConfig) -> Result<bool> {
    let client = cluster.mount()?;
    for rank in 0..cfg.processes {
        let path = target_path(cfg, rank);
        let base = if cfg.file_per_process {
            0
        } else {
            rank as u64 * cfg.block_size
        };
        let expect = pattern(rank, cfg.transfer_size);
        let h = client.open_handle(&path, gekkofs::OpenFlags::RDONLY)?;
        for i in 0..(cfg.block_size / cfg.transfer_size) {
            let off = base + i * cfg.transfer_size;
            let data = h.pread(off, cfg.transfer_size as usize)?;
            if data != expect {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gekkofs::ClusterConfig;

    fn small_cluster() -> Cluster {
        Cluster::deploy(ClusterConfig::new(4).with_chunk_size(16 * 1024)).unwrap()
    }

    #[test]
    fn ior_file_per_process_sequential() {
        let cluster = small_cluster();
        let cfg = IorConfig {
            processes: 4,
            transfer_size: 8 * 1024,
            block_size: 128 * 1024,
            file_per_process: true,
            random: false,
            work_dir: "/ior-fpp".into(),
        };
        let r = run_ior(&cluster, &cfg).unwrap();
        assert_eq!(r.total_bytes, 4 * 128 * 1024);
        assert!(r.write_mib_per_sec() > 0.0);
        assert!(r.read_mib_per_sec() > 0.0);
        assert!(verify_ior(&cluster, &cfg).unwrap());
        cluster.shutdown();
    }

    #[test]
    fn ior_shared_file_sequential() {
        let cluster = small_cluster();
        let cfg = IorConfig {
            processes: 4,
            transfer_size: 8 * 1024,
            block_size: 64 * 1024,
            file_per_process: false,
            random: false,
            work_dir: "/ior-shared".into(),
        };
        let _r = run_ior(&cluster, &cfg).unwrap();
        assert!(verify_ior(&cluster, &cfg).unwrap());
        // Shared file ends up exactly processes * block bytes long.
        let fs = cluster.mount().unwrap();
        assert_eq!(fs.stat("/ior-shared/shared").unwrap().size, 4 * 64 * 1024);
        cluster.shutdown();
    }

    #[test]
    fn ior_random_access_produces_same_data() {
        let cluster = small_cluster();
        let cfg = IorConfig {
            processes: 2,
            transfer_size: 4 * 1024,
            block_size: 64 * 1024,
            file_per_process: true,
            random: true,
            work_dir: "/ior-rand".into(),
        };
        run_ior(&cluster, &cfg).unwrap();
        assert!(verify_ior(&cluster, &cfg).unwrap());
        cluster.shutdown();
    }

    #[test]
    fn ior_shared_with_size_cache() {
        // The §IV-B configuration: shared file plus the client size
        // cache. Data must still be correct.
        let cluster = Cluster::deploy(
            ClusterConfig::new(4)
                .with_chunk_size(16 * 1024)
                .with_size_cache(16),
        )
        .unwrap();
        let cfg = IorConfig {
            processes: 4,
            transfer_size: 4 * 1024,
            block_size: 32 * 1024,
            file_per_process: false,
            random: false,
            work_dir: "/ior-cache".into(),
        };
        run_ior(&cluster, &cfg).unwrap();
        assert!(verify_ior(&cluster, &cfg).unwrap());
        let fs = cluster.mount().unwrap();
        assert_eq!(fs.stat("/ior-cache/shared").unwrap().size, 4 * 32 * 1024);
        cluster.shutdown();
    }

    #[test]
    fn offsets_cover_block_exactly() {
        let cfg = IorConfig {
            processes: 2,
            transfer_size: 1024,
            block_size: 16 * 1024,
            file_per_process: false,
            random: true,
            work_dir: "/x".into(),
        };
        for rank in 0..2 {
            let mut offs = offsets_for(&cfg, rank);
            offs.sort();
            let base = rank as u64 * cfg.block_size;
            let expect: Vec<u64> = (0..16).map(|i| base + i * 1024).collect();
            assert_eq!(offs, expect);
        }
    }
}
