//! # gkfs-workloads — mdtest and IOR, reimplemented as drivers
//!
//! The paper's evaluation uses two unmodified microbenchmarks from the
//! HPC I/O community ([hpc/ior](https://github.com/hpc/ior)):
//!
//! * **mdtest** (§IV-A): every process creates, stats, and removes
//!   N zero-byte files in a single shared directory (or one directory
//!   per process) — "an important workload in many HPC applications
//!   and among the most difficult workloads for a general-purpose
//!   PFS".
//! * **IOR** (§IV-B): every process writes and reads a fixed volume
//!   with a given transfer size — sequentially or randomly, to its own
//!   file (file-per-process) or to one shared file.
//!
//! These drivers run against the *real* file system through
//! [`gekkofs::GekkoClient`]; the `gkfs-sim` crate models the same
//! workloads at 512-node scale. Each simulated "process" is a thread
//! with its own mounted client, synchronized phase-by-phase with
//! barriers exactly like MPI ranks in the original tools.

#![warn(missing_docs)]

pub mod ior;
pub mod mdtest;
pub mod mdtest_small;
pub mod smallfile;
pub mod trace;

pub use ior::{run_ior, run_ior_with, IorConfig, IorResult};
pub use mdtest::{run_mdtest, run_mdtest_with, MdtestConfig, MdtestResult};
pub use mdtest_small::{
    run_mdtest_small, run_mdtest_small_with, MdtestSmallConfig, MdtestSmallResult,
};
pub use smallfile::{run_smallfile, SmallFileConfig, SmallFileResult};
pub use trace::{checkpoint_trace, parse_trace, replay_trace, ReplayResult, TraceEntry, TraceOp};
