//! mdtest-small: the metadata benchmark with a small data payload.
//!
//! Plain mdtest (§IV-A) creates zero-byte files, which exercises only
//! the metadata path. The paper's motivating workloads ("large numbers
//! of metadata operations … and small I/O requests", §I) couple the
//! two: every file is created, filled with a few KiB, statted and
//! removed. This driver models that — per file:
//!
//! 1. `open(O_CREAT|O_EXCL|O_WRONLY)` → [`gekkofs::FileHandle`]
//! 2. the payload written as small sequential `pwrite`s
//!    (`transfer_size` bytes each — the §I "small I/O requests")
//! 3. `close` (which flushes the handle's write-back buffer)
//! 4. a `stat` phase over all files
//! 5. an `unlink` phase
//!
//! Unlike the wall-clock-oriented drivers, this one also reports the
//! **client RPC count** (via [`gekkofs::ClientStats::rpcs_issued`]),
//! because the handle API's whole point is to shrink it: the
//! exclusive-create open skips the open-time stat, the write-back
//! buffer coalesces the payload into one chunk write, and the handle
//! size cache keeps reads/`SEEK_END` off the stat path. The CI RPC
//! regression gate (`tests/rpc_budget.rs`) is built on these numbers.

use gekkofs::{Cluster, GekkoClient, OpenFlags, Result};
use std::sync::atomic::Ordering;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// mdtest-small parameters.
#[derive(Debug, Clone)]
pub struct MdtestSmallConfig {
    /// Concurrent ranks (threads, each with its own mounted client).
    pub processes: usize,
    /// Files each rank creates/writes/stats/removes.
    pub files_per_process: usize,
    /// Payload bytes written to each file (small by design).
    pub file_size: usize,
    /// Bytes per `pwrite` — the payload is issued as
    /// `file_size / transfer_size` sequential writes, which is what the
    /// write-back buffer coalesces (and what the synchronous protocol
    /// pays per-call RPCs for).
    pub transfer_size: usize,
    /// Parent directory for the corpus.
    pub work_dir: String,
}

impl Default for MdtestSmallConfig {
    fn default() -> Self {
        MdtestSmallConfig {
            processes: 4,
            files_per_process: 500,
            file_size: 4 * 1024,
            transfer_size: 512,
            work_dir: "/mdtest-small".into(),
        }
    }
}

/// Timings and RPC accounting for one mdtest-small run.
#[derive(Debug, Clone)]
pub struct MdtestSmallResult {
    /// Files processed per phase across all ranks.
    pub total_files: usize,
    /// Bytes written across all ranks.
    pub total_bytes: u64,
    /// Wall-clock of the create+write+close phase.
    pub create_write_time: Duration,
    /// Wall-clock of the stat phase.
    pub stat_time: Duration,
    /// Wall-clock of the remove phase.
    pub remove_time: Duration,
    /// RPCs the clients issued across the whole run (mount excluded).
    pub rpcs_issued: u64,
    /// Bytes absorbed by write-back buffers (0 when disabled).
    pub wb_buffered_bytes: u64,
    /// Coalesced write-back flushes.
    pub wb_flushes: u64,
}

impl MdtestSmallResult {
    /// Files fully processed (create+write+stat+remove) per second of
    /// summed phase time.
    pub fn files_per_sec(&self) -> f64 {
        let total = self.create_write_time + self.stat_time + self.remove_time;
        self.total_files as f64 / total.as_secs_f64()
    }

    /// RPCs per file across the full create/write/stat/remove chain —
    /// the figure the CI regression gate bounds.
    pub fn rpcs_per_file(&self) -> f64 {
        self.rpcs_issued as f64 / self.total_files as f64
    }
}

fn file_path(cfg: &MdtestSmallConfig, rank: usize, i: usize) -> String {
    format!("{}/small.{rank:03}.{i:05}", cfg.work_dir)
}

fn payload(rank: usize, i: usize, len: usize) -> Vec<u8> {
    let tag = (rank * 17 + i) as u8;
    (0..len).map(|b| tag ^ (b as u8)).collect()
}

/// Run mdtest-small against an in-process cluster.
pub fn run_mdtest_small(cluster: &Cluster, cfg: &MdtestSmallConfig) -> Result<MdtestSmallResult> {
    run_mdtest_small_with(|| cluster.mount(), cfg)
}

/// Like [`run_mdtest_small`], with caller-supplied mounting.
pub fn run_mdtest_small_with(
    make_client: impl Fn() -> Result<GekkoClient>,
    cfg: &MdtestSmallConfig,
) -> Result<MdtestSmallResult> {
    let clients: Vec<GekkoClient> = (0..cfg.processes)
        .map(|_| make_client())
        .collect::<Result<_>>()?;
    clients[0].mkdir(&cfg.work_dir, 0o755).ok();

    // Snapshot RPC counters after mount/setup so the figure reflects
    // only the benchmark's own traffic.
    let rpc_base: u64 = clients
        .iter()
        .map(|c| c.stats().rpcs_issued.load(Ordering::Relaxed))
        .sum();

    let mut phase_times = [Duration::ZERO; 3];
    for (phase_idx, phase) in ["create-write", "stat", "remove"].iter().enumerate() {
        let start_gate = Barrier::new(cfg.processes + 1);
        let t = std::thread::scope(|s| -> Result<Duration> {
            let handles: Vec<_> = clients
                .iter()
                .enumerate()
                .map(|(rank, client)| {
                    let start_gate = &start_gate;
                    let cfg = &cfg;
                    s.spawn(move || -> Result<()> {
                        start_gate.wait();
                        for i in 0..cfg.files_per_process {
                            let path = file_path(cfg, rank, i);
                            match *phase {
                                "create-write" => {
                                    let h = client.open_handle(
                                        &path,
                                        OpenFlags::WRONLY.with_create().with_exclusive(),
                                    )?;
                                    let data = payload(rank, i, cfg.file_size);
                                    let step = cfg.transfer_size.max(1);
                                    let mut off = 0usize;
                                    while off < data.len() {
                                        let end = (off + step).min(data.len());
                                        h.pwrite(off as u64, &data[off..end])?;
                                        off = end;
                                    }
                                    h.close()?;
                                }
                                "stat" => {
                                    client.stat(&path)?;
                                }
                                _ => client.unlink(&path)?,
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            start_gate.wait();
            let t0 = Instant::now();
            for h in handles {
                h.join().unwrap()?;
            }
            Ok(t0.elapsed())
        })?;
        phase_times[phase_idx] = t;
    }

    let sum = |f: fn(&gekkofs::ClientStats) -> u64| -> u64 {
        clients.iter().map(|c| f(c.stats())).sum()
    };
    let total_files = cfg.processes * cfg.files_per_process;
    Ok(MdtestSmallResult {
        total_files,
        total_bytes: (total_files * cfg.file_size) as u64,
        create_write_time: phase_times[0],
        stat_time: phase_times[1],
        remove_time: phase_times[2],
        rpcs_issued: sum(|s| s.rpcs_issued.load(Ordering::Relaxed)) - rpc_base,
        wb_buffered_bytes: sum(|s| s.wb_buffered_bytes.load(Ordering::Relaxed)),
        wb_flushes: sum(|s| s.wb_flushes.load(Ordering::Relaxed)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gekkofs::ClusterConfig;

    #[test]
    fn mdtest_small_runs_clean() {
        let cluster = Cluster::deploy(ClusterConfig::new(2).with_chunk_size(64 * 1024)).unwrap();
        let cfg = MdtestSmallConfig {
            processes: 2,
            files_per_process: 50,
            file_size: 4 * 1024,
            transfer_size: 512,
            work_dir: "/mds".into(),
        };
        let r = run_mdtest_small(&cluster, &cfg).unwrap();
        assert_eq!(r.total_files, 100);
        assert!(r.rpcs_issued > 0, "counter is wired");
        // After remove, the directory is empty again.
        let fs = cluster.mount().unwrap();
        assert!(fs.readdir("/mds").unwrap().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn write_back_cuts_mdtest_small_rpcs() {
        // The acceptance bar for the handle redesign: with write-back
        // on, the create/write/stat/remove chain issues at least 2x
        // fewer RPCs per file than the pre-handle protocol did
        // (create + stat-on-write + write + size-update + stat-on-read
        // ... ~= 2 extra round trips per file).
        let base = ClusterConfig::new(2).with_chunk_size(64 * 1024);
        let cfg = MdtestSmallConfig {
            processes: 1,
            files_per_process: 64,
            file_size: 4 * 1024,
            transfer_size: 512, // 8 small writes per file
            work_dir: "/mds-wb".into(),
        };

        let cluster = Cluster::deploy(base.clone()).unwrap();
        let plain = run_mdtest_small(&cluster, &cfg).unwrap();
        cluster.shutdown();

        let cluster = Cluster::deploy(base.with_write_back(64 * 1024)).unwrap();
        let buffered = run_mdtest_small(&cluster, &cfg).unwrap();
        cluster.shutdown();

        assert!(buffered.wb_flushes > 0, "write-back engaged");
        // Write-through pays per-pwrite chunk + size-update RPCs (8
        // small writes per file here); write-back coalesces each file
        // into one flush. That alone must halve the total RPC count.
        assert!(
            buffered.rpcs_issued * 2 <= plain.rpcs_issued,
            "write-back must cut RPCs >= 2x: {} vs {}",
            buffered.rpcs_issued,
            plain.rpcs_issued
        );
        // Both run the redesigned handle path; the hard 2x bound vs the
        // old per-call protocol lives in tests/rpc_budget.rs where the
        // old protocol's cost is pinned as a constant baseline.
        assert!(
            buffered.rpcs_per_file() <= 8.0,
            "rpcs per file regressed: {}",
            buffered.rpcs_per_file()
        );
    }
}
