//! I/O trace replay.
//!
//! The GekkoFS authors come from storage-system tracing (the paper
//! cites their Spectrum Scale tracing study [37]), and burst-buffer
//! evaluation in practice means replaying *application* I/O traces,
//! not just synthetic kernels. This module defines a minimal
//! line-oriented trace format, a parser, a recorder-style writer, and
//! a multi-rank replayer that drives the real file system.
//!
//! Format — one op per line, `#` comments, whitespace-separated:
//!
//! ```text
//! # rank op      args...
//! 0 mkdir  /out
//! 0 create /out/data
//! 0 write  /out/data 0 4096        # path offset len
//! 1 read   /out/data 0 4096        # path offset len
//! * barrier                        # all ranks sync
//! 0 stat   /out/data
//! 0 unlink /out/data
//! ```
//!
//! `rank` is a number or `*` (all ranks). Writes generate
//! deterministic payloads; reads verify length (content checks happen
//! in the tests, where the expected pattern is known).

use gekkofs::{GekkoClient, GkfsError, OpenFlags, Result};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One parsed trace operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `mkdir <path>`
    Mkdir(String),
    /// `create <path>`
    Create(String),
    /// `write <path> <offset> <len>`
    Write(String, u64, u64),
    /// `read <path> <offset> <len>`
    Read(String, u64, u64),
    /// `stat <path>`
    Stat(String),
    /// `unlink <path>`
    Unlink(String),
    /// `rmdir <path>`
    Rmdir(String),
    /// `truncate <path> <size>`
    Truncate(String, u64),
    /// `readdir <path>`
    Readdir(String),
    /// `barrier` — synchronize all ranks.
    Barrier,
}

/// A trace entry: which ranks execute the op (`None` = all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Executing rank, or `None` for every rank.
    pub rank: Option<usize>,
    /// The operation.
    pub op: TraceOp,
}

/// Parse a trace from text. Errors carry the offending line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEntry>> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let bad = |what: &str| {
            GkfsError::InvalidArgument(format!("trace line {}: {what}: {raw}", lineno + 1))
        };
        let rank_tok = tok.next().ok_or_else(|| bad("missing rank"))?;
        let rank = if rank_tok == "*" {
            None
        } else {
            Some(
                rank_tok
                    .parse::<usize>()
                    .map_err(|_| bad("bad rank"))?,
            )
        };
        let opname = tok.next().ok_or_else(|| bad("missing op"))?;
        let mut path = || -> Result<String> {
            tok.next()
                .map(str::to_string)
                .ok_or_else(|| bad("missing path"))
        };
        let op = match opname {
            "mkdir" => TraceOp::Mkdir(path()?),
            "create" => TraceOp::Create(path()?),
            "stat" => TraceOp::Stat(path()?),
            "unlink" => TraceOp::Unlink(path()?),
            "rmdir" => TraceOp::Rmdir(path()?),
            "readdir" => TraceOp::Readdir(path()?),
            "truncate" => {
                let p = path()?;
                let size = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("missing size"))?;
                TraceOp::Truncate(p, size)
            }
            "write" | "read" => {
                let p = path()?;
                let offset = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("missing offset"))?;
                let len = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("missing len"))?;
                if opname == "write" {
                    TraceOp::Write(p, offset, len)
                } else {
                    TraceOp::Read(p, offset, len)
                }
            }
            "barrier" => TraceOp::Barrier,
            other => return Err(bad(&format!("unknown op {other:?}"))),
        };
        out.push(TraceEntry { rank, op });
    }
    Ok(out)
}

/// Serialize a trace back to the text format (the "recorder" half).
pub fn format_trace(entries: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        let rank = e
            .rank
            .map(|r| r.to_string())
            .unwrap_or_else(|| "*".to_string());
        let line = match &e.op {
            TraceOp::Mkdir(p) => format!("{rank} mkdir {p}"),
            TraceOp::Create(p) => format!("{rank} create {p}"),
            TraceOp::Write(p, o, l) => format!("{rank} write {p} {o} {l}"),
            TraceOp::Read(p, o, l) => format!("{rank} read {p} {o} {l}"),
            TraceOp::Stat(p) => format!("{rank} stat {p}"),
            TraceOp::Unlink(p) => format!("{rank} unlink {p}"),
            TraceOp::Rmdir(p) => format!("{rank} rmdir {p}"),
            TraceOp::Truncate(p, s) => format!("{rank} truncate {p} {s}"),
            TraceOp::Readdir(p) => format!("{rank} readdir {p}"),
            TraceOp::Barrier => format!("{rank} barrier"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Deterministic write payload so replays are reproducible and reads
/// verifiable.
pub fn trace_pattern(rank: usize, offset: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((offset + i) as u8) ^ (rank as u8).wrapping_mul(37))
        .collect()
}

/// Replay statistics.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Operations executed across all ranks (barriers excluded).
    pub ops_executed: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Wall-clock for the whole replay.
    pub elapsed: Duration,
}

impl ReplayResult {
    /// Aggregate operation rate.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops_executed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Replay a trace with `ranks` concurrent clients. Each rank executes
/// its own entries in order; `barrier` entries synchronize everyone
/// (MPI-style). Per-rank ops between barriers run concurrently across
/// ranks.
pub fn replay_trace(
    make_client: impl Fn() -> Result<GekkoClient>,
    ranks: usize,
    trace: &[TraceEntry],
) -> Result<ReplayResult> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let clients: Vec<GekkoClient> = (0..ranks).map(|_| make_client()).collect::<Result<_>>()?;
    let barrier = Barrier::new(ranks);
    let ops = AtomicU64::new(0);
    let written = AtomicU64::new(0);
    let read = AtomicU64::new(0);

    let t0 = Instant::now();
    std::thread::scope(|s| -> Result<()> {
        let handles: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(rank, client)| {
                let barrier = &barrier;
                let ops = &ops;
                let written = &written;
                let read = &read;
                s.spawn(move || -> Result<()> {
                    for entry in trace {
                        let mine = entry.rank.map(|r| r == rank).unwrap_or(true);
                        match &entry.op {
                            TraceOp::Barrier => {
                                barrier.wait();
                                continue;
                            }
                            _ if !mine => continue,
                            TraceOp::Mkdir(p) => client.mkdir(p, 0o755)?,
                            TraceOp::Create(p) => client.create(p, 0o644)?,
                            TraceOp::Write(p, off, len) => {
                                let data = trace_pattern(rank, *off, *len);
                                let h = client.open_handle(p, OpenFlags::WRONLY)?;
                                h.pwrite(*off, &data)?;
                                h.close()?;
                                written.fetch_add(*len, Ordering::Relaxed);
                            }
                            TraceOp::Read(p, off, len) => {
                                let h = client.open_handle(p, OpenFlags::RDONLY)?;
                                let data = h.pread(*off, *len as usize)?;
                                h.close()?;
                                read.fetch_add(data.len() as u64, Ordering::Relaxed);
                            }
                            TraceOp::Stat(p) => {
                                client.stat(p)?;
                            }
                            TraceOp::Unlink(p) => client.unlink(p)?,
                            TraceOp::Rmdir(p) => client.rmdir(p)?,
                            TraceOp::Truncate(p, size) => client.truncate(p, *size)?,
                            TraceOp::Readdir(p) => {
                                client.readdir(p)?;
                            }
                        }
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap()?;
        }
        Ok(())
    })?;

    Ok(ReplayResult {
        ops_executed: ops.load(std::sync::atomic::Ordering::Relaxed),
        bytes_written: written.load(std::sync::atomic::Ordering::Relaxed),
        bytes_read: read.load(std::sync::atomic::Ordering::Relaxed),
        elapsed: t0.elapsed(),
    })
}

/// Generate a synthetic checkpoint-restart trace: `ranks` ranks each
/// dump `steps` checkpoints of `bytes` each, with barriers between
/// steps, then read back the final step (the N-N burst pattern the
/// paper's burst-buffer deployment targets).
pub fn checkpoint_trace(ranks: usize, steps: usize, bytes: u64) -> Vec<TraceEntry> {
    let mut t = Vec::new();
    t.push(TraceEntry {
        rank: Some(0),
        op: TraceOp::Mkdir("/ckpt".into()),
    });
    t.push(TraceEntry {
        rank: None,
        op: TraceOp::Barrier,
    });
    for step in 0..steps {
        for rank in 0..ranks {
            let path = format!("/ckpt/s{step}.r{rank}");
            t.push(TraceEntry {
                rank: Some(rank),
                op: TraceOp::Create(path.clone()),
            });
            t.push(TraceEntry {
                rank: Some(rank),
                op: TraceOp::Write(path, 0, bytes),
            });
        }
        t.push(TraceEntry {
            rank: None,
            op: TraceOp::Barrier,
        });
        // Keep only the latest two steps (the common retention policy).
        if step >= 2 {
            for rank in 0..ranks {
                t.push(TraceEntry {
                    rank: Some(rank),
                    op: TraceOp::Unlink(format!("/ckpt/s{}.r{rank}", step - 2)),
                });
            }
        }
    }
    t.push(TraceEntry {
        rank: None,
        op: TraceOp::Barrier,
    });
    // Restart: everyone reads its own final checkpoint.
    for rank in 0..ranks {
        t.push(TraceEntry {
            rank: Some(rank),
            op: TraceOp::Read(format!("/ckpt/s{}.r{rank}", steps - 1), 0, bytes),
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gekkofs::{Cluster, ClusterConfig};

    #[test]
    fn parse_and_format_roundtrip() {
        let text = "\
# demo trace
0 mkdir /out
* barrier
0 create /out/a
1 write /out/a 0 4096
* barrier
1 read /out/a 1024 512
0 stat /out/a
0 truncate /out/a 100
0 readdir /out
0 unlink /out/a
0 rmdir /out
";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed.len(), 11);
        assert_eq!(parsed[0].rank, Some(0));
        assert_eq!(parsed[1], TraceEntry { rank: None, op: TraceOp::Barrier });
        assert_eq!(
            parsed[3].op,
            TraceOp::Write("/out/a".into(), 0, 4096)
        );
        // format -> parse is the identity.
        let reparsed = parse_trace(&format_trace(&parsed)).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("0 write /a\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse_trace("0 mkdir /ok\nx create /b\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_trace("0 frobnicate /a\n").is_err());
    }

    #[test]
    fn replay_executes_against_real_fs() {
        let cluster = Cluster::deploy(ClusterConfig::new(3).with_chunk_size(8192)).unwrap();
        let trace = parse_trace(
            "0 mkdir /t\n\
             * barrier\n\
             0 create /t/shared\n\
             * barrier\n\
             0 write /t/shared 0 10000\n\
             1 write /t/shared 10000 10000\n\
             * barrier\n\
             * read /t/shared 0 20000\n\
             0 stat /t/shared\n",
        )
        .unwrap();
        let r = replay_trace(|| cluster.mount(), 2, &trace).unwrap();
        assert_eq!(r.bytes_written, 20_000);
        assert_eq!(r.bytes_read, 2 * 20_000, "both ranks read the whole file");
        assert!(r.ops_executed >= 6);
        // The data really is the rank-stamped pattern.
        let fs = cluster.mount().unwrap();
        let h = fs.open_handle("/t/shared", OpenFlags::RDONLY).unwrap();
        let data = h.pread(0, 20_000).unwrap();
        assert_eq!(&data[..10_000], &trace_pattern(0, 0, 10_000)[..]);
        assert_eq!(&data[10_000..], &trace_pattern(1, 10_000, 10_000)[..]);
        cluster.shutdown();
    }

    #[test]
    fn checkpoint_trace_replays_clean() {
        let cluster = Cluster::deploy(ClusterConfig::new(4).with_chunk_size(16 * 1024)).unwrap();
        let trace = checkpoint_trace(4, 5, 50_000);
        let r = replay_trace(|| cluster.mount(), 4, &trace).unwrap();
        assert_eq!(r.bytes_written, 4 * 5 * 50_000);
        assert_eq!(r.bytes_read, 4 * 50_000, "restart reads the last step");
        // Retention policy left exactly the last two steps.
        let fs = cluster.mount().unwrap();
        assert_eq!(fs.readdir("/ckpt").unwrap().len(), 2 * 4);
        cluster.shutdown();
    }

    #[test]
    fn replay_surfaces_application_errors() {
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        // Unlink of a missing file must fail the replay, like the
        // application it models would fail.
        let trace = parse_trace("0 unlink /never\n").unwrap();
        assert!(replay_trace(|| cluster.mount(), 1, &trace).is_err());
        cluster.shutdown();
    }
}
