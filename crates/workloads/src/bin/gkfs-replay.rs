//! `gkfs-replay` — replay an application I/O trace against a live
//! GekkoFS deployment.
//!
//! ```sh
//! gkfs-replay --hosts hosts.txt --ranks 8 trace.txt
//! gkfs-replay --hosts hosts.txt --ranks 8 --gen-checkpoint 5 1048576
//! ```
//!
//! The trace format is documented in `gkfs_workloads::trace`; with
//! `--gen-checkpoint STEPS BYTES` a synthetic N-N checkpoint/restart
//! trace is generated instead of reading a file (pass `--dump` to
//! print it rather than run it).

use gekkofs::{ClusterConfig, GekkoClient};
use gkfs_rpc::{Endpoint, TcpEndpoint};
use gkfs_workloads::trace::{checkpoint_trace, format_trace, parse_trace, replay_trace};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: gkfs-replay --hosts LIST|FILE [--ranks N] [--chunk-size BYTES] \
         (TRACE-FILE | --gen-checkpoint STEPS BYTES) [--dump]"
    );
    std::process::exit(2);
}

fn read_hosts(hosts: &str) -> Vec<String> {
    if std::path::Path::new(hosts).exists() {
        std::fs::read_to_string(hosts)
            .unwrap_or_default()
            .lines()
            .map(|l| l.trim().trim_start_matches("LISTENING").trim().to_string())
            .filter(|l| !l.is_empty())
            .collect()
    } else {
        hosts.split(',').map(|s| s.trim().to_string()).collect()
    }
}

fn main() {
    let mut hosts = None;
    let mut ranks = 4usize;
    let mut chunk_size = gekkofs::DEFAULT_CHUNK_SIZE;
    let mut trace_file = None;
    let mut gen_checkpoint: Option<(usize, u64)> = None;
    let mut dump = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hosts" => hosts = args.next(),
            "--ranks" => ranks = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--chunk-size" => {
                chunk_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--gen-checkpoint" => {
                let steps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                let bytes = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                gen_checkpoint = Some((steps, bytes));
            }
            "--dump" => dump = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with("--") => trace_file = Some(other.to_string()),
            _ => usage(),
        }
    }

    let trace = match (trace_file, gen_checkpoint) {
        (Some(f), None) => {
            let text = std::fs::read_to_string(&f).unwrap_or_else(|e| {
                eprintln!("gkfs-replay: cannot read {f}: {e}");
                std::process::exit(1);
            });
            parse_trace(&text).unwrap_or_else(|e| {
                eprintln!("gkfs-replay: {e}");
                std::process::exit(1);
            })
        }
        (None, Some((steps, bytes))) => checkpoint_trace(ranks, steps, bytes),
        _ => usage(),
    };

    if dump {
        print!("{}", format_trace(&trace));
        return;
    }

    let Some(hosts) = hosts else { usage() };
    let addrs = read_hosts(&hosts);
    if addrs.is_empty() {
        eprintln!("gkfs-replay: no daemon addresses");
        std::process::exit(1);
    }
    let config = ClusterConfig::new(addrs.len()).with_chunk_size(chunk_size);
    let make_client = || -> gekkofs::Result<GekkoClient> {
        let endpoints: gekkofs::Result<Vec<Arc<dyn Endpoint>>> = addrs
            .iter()
            .map(|a| TcpEndpoint::connect(a).map(|e| e as Arc<dyn Endpoint>))
            .collect();
        GekkoClient::mount(endpoints?, &config)
    };

    println!(
        "gkfs-replay: {} entries, {ranks} ranks, {} daemons",
        trace.len(),
        addrs.len()
    );
    match replay_trace(make_client, ranks, &trace) {
        Ok(r) => {
            println!(
                "  {} ops in {:?} ({:.0} ops/s), {} B written, {} B read",
                r.ops_executed,
                r.elapsed,
                r.ops_per_sec(),
                r.bytes_written,
                r.bytes_read
            );
        }
        Err(e) => {
            eprintln!("gkfs-replay: {e}");
            std::process::exit(1);
        }
    }
}
