//! `gkfs-mdtest` — the §IV-A metadata benchmark as a standalone tool,
//! runnable against any live GekkoFS deployment (like the original
//! mdtest against a mounted file system).
//!
//! ```sh
//! gkfs-mdtest --hosts hosts.txt --procs 16 --files 10000 [--unique-dir]
//! ```

use gekkofs::{ClusterConfig, GekkoClient};
use gkfs_rpc::{Endpoint, TcpEndpoint};
use gkfs_workloads::{run_mdtest_with, MdtestConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: gkfs-mdtest --hosts LIST|FILE [--procs N] [--files N] \
         [--work-dir PATH] [--unique-dir] [--chunk-size BYTES]"
    );
    std::process::exit(2);
}

fn read_hosts(hosts: &str) -> Vec<String> {
    if std::path::Path::new(hosts).exists() {
        std::fs::read_to_string(hosts)
            .unwrap_or_default()
            .lines()
            .map(|l| l.trim().trim_start_matches("LISTENING").trim().to_string())
            .filter(|l| !l.is_empty())
            .collect()
    } else {
        hosts.split(',').map(|s| s.trim().to_string()).collect()
    }
}

fn main() {
    let mut hosts = None;
    let mut cfg = MdtestConfig {
        processes: 8,
        files_per_process: 5_000,
        work_dir: "/mdtest".into(),
        unique_dir: false,
    };
    let mut chunk_size = gekkofs::DEFAULT_CHUNK_SIZE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hosts" => hosts = args.next(),
            "--procs" => cfg.processes = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--files" => {
                cfg.files_per_process =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--work-dir" => cfg.work_dir = args.next().unwrap_or_else(|| usage()),
            "--unique-dir" => cfg.unique_dir = true,
            "--chunk-size" => {
                chunk_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(hosts) = hosts else { usage() };
    let addrs = read_hosts(&hosts);
    if addrs.is_empty() {
        eprintln!("gkfs-mdtest: no daemon addresses");
        std::process::exit(1);
    }
    let config = ClusterConfig::new(addrs.len()).with_chunk_size(chunk_size);

    println!(
        "gkfs-mdtest: {} daemons, {} procs x {} files, {} dir",
        addrs.len(),
        cfg.processes,
        cfg.files_per_process,
        if cfg.unique_dir { "unique" } else { "single" }
    );
    let make_client = || -> gekkofs::Result<GekkoClient> {
        let endpoints: gekkofs::Result<Vec<Arc<dyn Endpoint>>> = addrs
            .iter()
            .map(|a| TcpEndpoint::connect(a).map(|e| e as Arc<dyn Endpoint>))
            .collect();
        GekkoClient::mount(endpoints?, &config)
    };
    match run_mdtest_with(make_client, &cfg) {
        Ok(r) => {
            println!("  files : {}", r.total_files);
            println!("  create: {:>12.0} ops/s", r.creates_per_sec());
            println!("  stat  : {:>12.0} ops/s", r.stats_per_sec());
            println!("  remove: {:>12.0} ops/s", r.removes_per_sec());
        }
        Err(e) => {
            eprintln!("gkfs-mdtest: {e}");
            std::process::exit(1);
        }
    }
}
