//! `gkfs-ior` — the §IV-B data benchmark as a standalone tool, for
//! live GekkoFS deployments.
//!
//! ```sh
//! gkfs-ior --hosts hosts.txt --procs 16 --xfer 65536 --block 268435456 \
//!          [--shared] [--random] [--size-cache N]
//! ```

use gekkofs::{ClusterConfig, GekkoClient};
use gkfs_rpc::{Endpoint, TcpEndpoint};
use gkfs_workloads::{run_ior_with, IorConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: gkfs-ior --hosts LIST|FILE [--procs N] [--xfer BYTES] \
         [--block BYTES] [--shared] [--random] [--size-cache N] \
         [--work-dir PATH] [--chunk-size BYTES]"
    );
    std::process::exit(2);
}

fn read_hosts(hosts: &str) -> Vec<String> {
    if std::path::Path::new(hosts).exists() {
        std::fs::read_to_string(hosts)
            .unwrap_or_default()
            .lines()
            .map(|l| l.trim().trim_start_matches("LISTENING").trim().to_string())
            .filter(|l| !l.is_empty())
            .collect()
    } else {
        hosts.split(',').map(|s| s.trim().to_string()).collect()
    }
}

fn main() {
    let mut hosts = None;
    let mut cfg = IorConfig {
        processes: 8,
        transfer_size: 64 * 1024,
        block_size: 16 * 1024 * 1024,
        file_per_process: true,
        random: false,
        work_dir: "/ior".into(),
    };
    let mut chunk_size = gekkofs::DEFAULT_CHUNK_SIZE;
    let mut size_cache = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hosts" => hosts = args.next(),
            "--procs" => cfg.processes = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--xfer" => {
                cfg.transfer_size =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--block" => {
                cfg.block_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--shared" => cfg.file_per_process = false,
            "--random" => cfg.random = true,
            "--size-cache" => {
                size_cache = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--work-dir" => cfg.work_dir = args.next().unwrap_or_else(|| usage()),
            "--chunk-size" => {
                chunk_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(hosts) = hosts else { usage() };
    let addrs = read_hosts(&hosts);
    if addrs.is_empty() {
        eprintln!("gkfs-ior: no daemon addresses");
        std::process::exit(1);
    }
    let config = ClusterConfig::new(addrs.len())
        .with_chunk_size(chunk_size)
        .with_size_cache(size_cache);

    println!(
        "gkfs-ior: {} daemons, {} procs, {} B transfers, {} B/proc, {}{}",
        addrs.len(),
        cfg.processes,
        cfg.transfer_size,
        cfg.block_size,
        if cfg.file_per_process { "file-per-process" } else { "shared file" },
        if cfg.random { ", random" } else { ", sequential" },
    );
    let make_client = || -> gekkofs::Result<GekkoClient> {
        let endpoints: gekkofs::Result<Vec<Arc<dyn Endpoint>>> = addrs
            .iter()
            .map(|a| TcpEndpoint::connect(a).map(|e| e as Arc<dyn Endpoint>))
            .collect();
        GekkoClient::mount(endpoints?, &config)
    };
    match run_ior_with(make_client, &cfg) {
        Ok(r) => {
            println!(
                "  write: {:>10.1} MiB/s  ({:.0} ops/s)",
                r.write_mib_per_sec(),
                r.write_iops()
            );
            println!(
                "  read : {:>10.1} MiB/s  ({:.0} ops/s)",
                r.read_mib_per_sec(),
                r.read_iops()
            );
        }
        Err(e) => {
            eprintln!("gkfs-ior: {e}");
            std::process::exit(1);
        }
    }
}
