//! Small-file ingest: the data-driven-science workload from the
//! paper's introduction.
//!
//! §I motivates GekkoFS with workloads that differ from classic HPC
//! streaming: *"large numbers of metadata operations, data
//! synchronization, non-contiguous and random access patterns, and
//! small I/O requests"*. This driver models the canonical case — an
//! ingest/training pipeline over many small files:
//!
//! 1. **ingest**: every rank creates `files_per_process` files of
//!    `file_size` bytes each (create + write + close per file);
//! 2. **scan**: every rank reads a random permutation of *all* ranks'
//!    files (the shuffled-read phase of a training epoch);
//! 3. **list**: one `readdir` over the whole corpus (`ls -l`).
//!
//! Unlike pure mdtest this couples the metadata and data paths: each
//! file touches both the KV store and chunk storage, and the scan
//! phase reads across ranks (which is exactly what the BurstFS-style
//! write-local placement cannot serve — see the locality ablation).

use gekkofs::{Cluster, GekkoClient, OpenFlags, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Small-file workload parameters.
#[derive(Debug, Clone)]
pub struct SmallFileConfig {
    /// Concurrent ranks.
    pub processes: usize,
    /// Files each rank ingests.
    pub files_per_process: usize,
    /// Bytes per file (small by design: the paper's motivation is
    /// "small I/O requests").
    pub file_size: usize,
    /// Corpus directory.
    pub work_dir: String,
}

impl Default for SmallFileConfig {
    fn default() -> Self {
        SmallFileConfig {
            processes: 4,
            files_per_process: 200,
            file_size: 16 * 1024,
            work_dir: "/corpus".into(),
        }
    }
}

/// Timings of one small-file run.
#[derive(Debug, Clone)]
pub struct SmallFileResult {
    /// Files ingested across all ranks.
    pub total_files: usize,
    /// Bytes read during the scan phase.
    pub total_bytes: u64,
    /// Wall-clock of the ingest phase.
    pub ingest_time: Duration,
    /// Wall-clock of the shuffled scan phase.
    pub scan_time: Duration,
    /// Wall-clock of the final listing.
    pub list_time: Duration,
    /// Entries the final listing returned.
    pub listed_entries: usize,
}

impl SmallFileResult {
    /// Files ingested per second (create+write+close chains).
    pub fn ingest_files_per_sec(&self) -> f64 {
        self.total_files as f64 / self.ingest_time.as_secs_f64()
    }
    /// Shuffled-read throughput in MiB/s.
    pub fn scan_mib_per_sec(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0) / self.scan_time.as_secs_f64()
    }
}

fn file_path(cfg: &SmallFileConfig, rank: usize, i: usize) -> String {
    format!("{}/sample.{rank:03}.{i:05}", cfg.work_dir)
}

fn file_payload(rank: usize, i: usize, len: usize) -> Vec<u8> {
    let tag = (rank * 131 + i) as u8;
    (0..len).map(|b| tag ^ (b as u8)).collect()
}

/// Run ingest + shuffled scan + listing.
pub fn run_smallfile(cluster: &Cluster, cfg: &SmallFileConfig) -> Result<SmallFileResult> {
    let clients: Vec<GekkoClient> = (0..cfg.processes)
        .map(|_| cluster.mount())
        .collect::<Result<_>>()?;
    clients[0].mkdir(&cfg.work_dir, 0o755).ok();

    // Phase 1: ingest.
    let gate = Barrier::new(cfg.processes + 1);
    let ingest_time = std::thread::scope(|s| -> Result<Duration> {
        let handles: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(rank, client)| {
                let gate = &gate;
                s.spawn(move || -> Result<()> {
                    gate.wait();
                    for i in 0..cfg.files_per_process {
                        let path = file_path(cfg, rank, i);
                        let fd = client
                            .open(&path, OpenFlags::WRONLY.with_create().with_exclusive())?;
                        client.write(fd, &file_payload(rank, i, cfg.file_size))?;
                        client.close(fd)?;
                    }
                    Ok(())
                })
            })
            .collect();
        gate.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().unwrap()?;
        }
        Ok(t0.elapsed())
    })?;

    // Phase 2: shuffled cross-rank scan (every rank reads every file
    // once, in its own random order).
    let gate = Barrier::new(cfg.processes + 1);
    let scan_time = std::thread::scope(|s| -> Result<Duration> {
        let handles: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(rank, client)| {
                let gate = &gate;
                s.spawn(move || -> Result<()> {
                    let mut order: Vec<(usize, usize)> = (0..cfg.processes)
                        .flat_map(|r| (0..cfg.files_per_process).map(move |i| (r, i)))
                        .collect();
                    let mut rng = rand::rngs::StdRng::seed_from_u64(rank as u64);
                    order.shuffle(&mut rng);
                    gate.wait();
                    for (r, i) in order {
                        let path = file_path(cfg, r, i);
                        let h = client.open_handle(&path, OpenFlags::RDONLY)?;
                        let data = h.pread(0, cfg.file_size)?;
                        debug_assert_eq!(data, file_payload(r, i, cfg.file_size));
                        h.close()?;
                    }
                    Ok(())
                })
            })
            .collect();
        gate.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().unwrap()?;
        }
        Ok(t0.elapsed())
    })?;

    // Phase 3: one `ls -l` over the corpus.
    let t0 = Instant::now();
    let entries = clients[0].readdir(&cfg.work_dir)?;
    let list_time = t0.elapsed();

    let total_files = cfg.processes * cfg.files_per_process;
    Ok(SmallFileResult {
        total_files,
        // Scan reads every file `processes` times.
        total_bytes: (total_files * cfg.file_size * cfg.processes) as u64,
        ingest_time,
        scan_time,
        list_time,
        listed_entries: entries.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gekkofs::ClusterConfig;

    #[test]
    fn smallfile_pipeline_runs_clean() {
        let cluster = Cluster::deploy(ClusterConfig::new(4).with_chunk_size(8 * 1024)).unwrap();
        let cfg = SmallFileConfig {
            processes: 3,
            files_per_process: 40,
            file_size: 4 * 1024,
            work_dir: "/sf".into(),
        };
        let r = run_smallfile(&cluster, &cfg).unwrap();
        assert_eq!(r.total_files, 120);
        assert_eq!(r.listed_entries, 120);
        assert!(r.ingest_files_per_sec() > 0.0);
        assert!(r.scan_mib_per_sec() > 0.0);
        // The listing carries correct sizes (ls -l).
        let fs = cluster.mount().unwrap();
        for e in fs.readdir("/sf").unwrap() {
            assert_eq!(e.size, 4 * 1024);
        }
        cluster.shutdown();
    }

    #[test]
    fn smallfile_benefits_from_stat_cache() {
        // The scan phase stats every file before reading; with the §V
        // stat cache a re-scan of the same corpus saves round trips.
        let cluster = Cluster::deploy(
            ClusterConfig::new(2)
                .with_chunk_size(8 * 1024)
                .with_stat_cache_ttl_ms(60_000),
        )
        .unwrap();
        let cfg = SmallFileConfig {
            processes: 2,
            files_per_process: 30,
            file_size: 2 * 1024,
            work_dir: "/sfc".into(),
        };
        run_smallfile(&cluster, &cfg).unwrap();
        cluster.shutdown();
    }
}
