//! # gkfs-kvstore — an embedded LSM-tree key-value store
//!
//! GekkoFS stores all metadata in a per-daemon RocksDB instance
//! (paper §III-B-b: *"Each daemon operates a single local RocksDB KV
//! store. RocksDB is optimized for NAND storage technologies with low
//! latencies"*). This crate is the from-scratch substitute: a
//! log-structured merge tree with the same write path that makes
//! metadata creates fast —
//!
//! 1. append to a segmented write-ahead log ([`wal`]) — concurrent
//!    writers share one append/fsync via **group commit**,
//! 2. insert into a sorted in-memory [`memtable`],
//! 3. on memtable-full, swap in a fresh memtable and hand the frozen
//!    one to a **background flush thread** as an immutable memtable
//!    (still readable) until its sorted table ([`sstable`], with
//!    per-table bloom filters from [`bloom`]) lands in L0,
//! 4. compact L0 into L1 on a **background compaction thread**, with
//!    configurable L0 slowdown/stall backpressure ([`db`]).
//!
//! Foreground writers never wait for flush or compaction I/O — they
//! block only for the memtable pointer swap, the same property that
//! lets RocksDB absorb millions of metadata creates per second in the
//! paper's evaluation (§IV). Reads clone an `Arc` snapshot of
//! `{memtable, immutables, L0, L1}` and search entirely outside the
//! store's locks.
//!
//! Like RocksDB, the store supports **merge operators** ([`merge`]):
//! GekkoFS uses one to coalesce file-size updates without
//! read-modify-write round trips, which is exactly the mechanism behind
//! the paper's shared-file fix (§IV-B).
//!
//! Storage is abstracted behind [`blobstore::BlobStore`] so the same
//! engine runs fully in memory (tests, in-process clusters) or on a
//! real directory (persistent daemons).
//!
//! ```
//! use gkfs_kvstore::{Db, DbOptions};
//!
//! let db = Db::open_memory(DbOptions::default()).unwrap();
//! db.put(b"/file/a", b"meta-a").unwrap();
//! assert_eq!(db.get(b"/file/a").unwrap().as_deref(), Some(&b"meta-a"[..]));
//! db.delete(b"/file/a").unwrap();
//! assert!(db.get(b"/file/a").unwrap().is_none());
//! ```

#![warn(missing_docs)]

pub mod blobstore;
pub mod bloom;
pub mod db;
pub mod memtable;
pub mod merge;
pub mod sstable;
pub mod wal;

pub use blobstore::{BlobStore, FsBlobStore, MemBlobStore};
pub use db::{Db, DbOptions, DbStats, WriteBatch};
pub use merge::{Add64MergeOperator, MergeOperator};
