//! The database facade: WAL + memtable + leveled tables.
//!
//! Write path (the RocksDB shape the paper relies on for fast creates):
//! append to WAL, insert into the memtable, return. When the memtable
//! exceeds its budget it is flushed to an L0 SSTable; when enough L0
//! tables pile up, everything is compacted into a single sorted L1 run
//! (a deliberately simple two-level policy — GekkoFS metadata values
//! are tiny and the file system is ephemeral, so write amplification
//! matters less than code you can reason about).
//!
//! Merge operands that cannot be folded in the memtable are resolved at
//! **flush time** against the table levels, so SSTables only ever
//! contain `Put`/`Delete` entries. This keeps reads and compaction
//! simple while preserving the read-free write path that makes merge
//! operators attractive (§IV-B's size-update fix).
//!
//! Concurrency: one `RwLock` over the whole state. Point reads take
//! the read lock; mutations take the write lock briefly (memtable
//! insert); flush/compaction happen inline under the write lock. A
//! GekkoFS daemon runs one `Db` shared by its handler pool.

use crate::blobstore::{BlobStore, FsBlobStore, MemBlobStore};
use crate::memtable::{MemTable, Value};
use crate::merge::MergeOperator;
use crate::sstable::{Table, TableBuilder, Tag};
use crate::wal::{replay, WalRecord};
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for a [`Db`].
#[derive(Clone)]
pub struct DbOptions {
    /// Memtable budget in bytes before a flush is triggered.
    pub memtable_bytes: usize,
    /// Number of L0 tables that triggers a full compaction.
    pub l0_compaction_trigger: usize,
    /// Write-ahead logging. GekkoFS deployments are ephemeral, so the
    /// daemon usually runs without it; tests for crash recovery turn
    /// it on.
    pub wal: bool,
    /// Optional merge operator (required before calling [`Db::merge`]).
    pub merge_operator: Option<Arc<dyn MergeOperator>>,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            memtable_bytes: 4 * 1024 * 1024,
            l0_compaction_trigger: 4,
            wal: false,
            merge_operator: None,
        }
    }
}

impl std::fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOptions")
            .field("memtable_bytes", &self.memtable_bytes)
            .field("l0_compaction_trigger", &self.l0_compaction_trigger)
            .field("wal", &self.wal)
            .field("merge_operator", &self.merge_operator.is_some())
            .finish()
    }
}

/// Operational counters, readable at any time.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Point inserts/overwrites served.
    pub puts: AtomicU64,
    /// Point lookups served.
    pub gets: AtomicU64,
    /// Deletions served.
    pub deletes: AtomicU64,
    /// Merge operands applied.
    pub merges: AtomicU64,
    /// Prefix/range scans served.
    pub scans: AtomicU64,
    /// Memtable flushes performed.
    pub flushes: AtomicU64,
    /// Full compactions performed.
    pub compactions: AtomicU64,
    /// Point lookups answered without touching a table thanks to a
    /// bloom-filter miss.
    pub bloom_skips: AtomicU64,
}

impl DbStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

struct TableHandle {
    id: u64,
    table: Table,
}

struct State {
    mem: MemTable,
    /// Flushed tables, newest last. May overlap each other.
    l0: Vec<TableHandle>,
    /// One sorted, non-overlapping run (possibly several blobs split by
    /// size), ordered by key range.
    l1: Vec<TableHandle>,
}

/// A group of mutations applied atomically: concurrent readers see
/// either none or all of them, and crash recovery replays all-or-none
/// (the batch is one WAL record). The RocksDB `WriteBatch` analogue —
/// GekkoFS-style metadata transactions (e.g. create + parent touch)
/// build on this.
#[derive(Default, Debug, Clone)]
pub struct WriteBatch {
    records: Vec<WalRecord>,
}

impl WriteBatch {
    /// Start an empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue an insert/overwrite.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.records.push(WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        });
        self
    }

    /// Queue a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.records.push(WalRecord::Delete { key: key.to_vec() });
        self
    }

    /// Queue a merge operand.
    pub fn merge(&mut self, key: &[u8], operand: &[u8]) -> &mut Self {
        self.records.push(WalRecord::Merge {
            key: key.to_vec(),
            operand: operand.to_vec(),
        });
        self
    }

    /// Number of queued mutations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no mutations are queued.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// An embedded LSM key-value store. Cloning the handle is cheap and
/// shares the underlying database.
pub struct Db {
    state: RwLock<State>,
    store: Arc<dyn BlobStore>,
    opts: DbOptions,
    next_id: AtomicU64,
    stats: DbStats,
}

const MANIFEST: &str = "MANIFEST";

impl Db {
    /// Open a database over an arbitrary blob store, recovering any
    /// existing manifest and WAL.
    pub fn open(store: Arc<dyn BlobStore>, opts: DbOptions) -> Result<Arc<Db>> {
        let mut state = State {
            mem: MemTable::new(),
            l0: Vec::new(),
            l1: Vec::new(),
        };
        let mut max_id = 0u64;

        // Recover table levels from the manifest, if present.
        if let Ok(blob) = store.get_blob(MANIFEST) {
            let mut d = Decoder::new(&blob);
            for level in [&mut state.l0, &mut state.l1] {
                let n = d.u32()?;
                for _ in 0..n {
                    let id = d.u64()?;
                    max_id = max_id.max(id);
                    let table = Table::open(store.get_blob(&table_name(id))?)?;
                    level.push(TableHandle { id, table });
                }
            }
            d.finish()?;
        }

        let db = Db {
            state: RwLock::new(state),
            store,
            opts,
            next_id: AtomicU64::new(max_id + 1),
            stats: DbStats::default(),
        };

        // Replay the WAL into the memtable.
        if db.opts.wal {
            let log = db.store.read_log().unwrap_or_default();
            let records = replay(&log)?;
            let mut st = db.state.write();
            fn apply(
                st: &mut State,
                rec: WalRecord,
                merge_op: &Option<Arc<dyn MergeOperator>>,
            ) -> Result<()> {
                match rec {
                    WalRecord::Put { key, value } => st.mem.put(&key, &value),
                    WalRecord::Delete { key } => st.mem.delete(&key),
                    WalRecord::Merge { key, operand } => {
                        let op = merge_op.as_ref().ok_or_else(|| {
                            GkfsError::InvalidArgument(
                                "WAL contains merges but no merge operator configured".into(),
                            )
                        })?;
                        st.mem.merge(&key, &operand, op.as_ref());
                    }
                    WalRecord::Batch(inner) => {
                        for r in inner {
                            apply(st, r, merge_op)?;
                        }
                    }
                }
                Ok(())
            }
            let merge_op = db.opts.merge_operator.clone();
            for rec in records {
                apply(&mut st, rec, &merge_op)?;
            }
        }
        Ok(Arc::new(db))
    }

    /// Open a fully in-memory database (tests, in-process daemons).
    pub fn open_memory(opts: DbOptions) -> Result<Arc<Db>> {
        Db::open(Arc::new(MemBlobStore::new()), opts)
    }

    /// Open a database persisted under `dir`.
    pub fn open_dir(dir: impl Into<std::path::PathBuf>, opts: DbOptions) -> Result<Arc<Db>> {
        Db::open(Arc::new(FsBlobStore::open(dir)?), opts)
    }

    /// Stats.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        DbStats::bump(&self.stats.puts);
        if self.opts.wal {
            self.store.append_log(
                &WalRecord::Put {
                    key: key.to_vec(),
                    value: value.to_vec(),
                }
                .encode(),
            )?;
        }
        let mut st = self.state.write();
        st.mem.put(key, value);
        self.maybe_flush(&mut st)
    }

    /// Insert `key` only if absent. Returns `true` if inserted,
    /// `false` if the key already existed. Atomic with respect to all
    /// other writers — this backs GekkoFS' exclusive create.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        let mut st = self.state.write();
        let exists = match st.mem.get(key) {
            Some(Value::Put(_)) | Some(Value::Merge(_)) => true,
            Some(Value::Delete) => false,
            None => self.get_from_tables(&st, key)?.is_some(),
        };
        if exists {
            return Ok(false);
        }
        DbStats::bump(&self.stats.puts);
        if self.opts.wal {
            self.store.append_log(
                &WalRecord::Put {
                    key: key.to_vec(),
                    value: value.to_vec(),
                }
                .encode(),
            )?;
        }
        st.mem.put(key, value);
        self.maybe_flush(&mut st)?;
        Ok(true)
    }

    /// Delete `key` (idempotent).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        DbStats::bump(&self.stats.deletes);
        if self.opts.wal {
            self.store
                .append_log(&WalRecord::Delete { key: key.to_vec() }.encode())?;
        }
        let mut st = self.state.write();
        st.mem.delete(key);
        self.maybe_flush(&mut st)
    }

    /// Apply a merge operand to `key` (requires a configured merge
    /// operator).
    pub fn merge(&self, key: &[u8], operand: &[u8]) -> Result<()> {
        DbStats::bump(&self.stats.merges);
        let op = self.merge_operator()?;
        if self.opts.wal {
            self.store.append_log(
                &WalRecord::Merge {
                    key: key.to_vec(),
                    operand: operand.to_vec(),
                }
                .encode(),
            )?;
        }
        let mut st = self.state.write();
        st.mem.merge(key, operand, op.as_ref());
        self.maybe_flush(&mut st)
    }

    fn merge_operator(&self) -> Result<Arc<dyn MergeOperator>> {
        self.opts
            .merge_operator
            .clone()
            .ok_or_else(|| GkfsError::InvalidArgument("no merge operator configured".into()))
    }

    /// Apply a [`WriteBatch`] atomically: one lock acquisition, one
    /// WAL record, no interleaving with other writers or readers.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let needs_merge_op = batch
            .records
            .iter()
            .any(|r| matches!(r, WalRecord::Merge { .. }));
        let op = if needs_merge_op {
            Some(self.merge_operator()?)
        } else {
            None
        };
        if self.opts.wal {
            self.store
                .append_log(&WalRecord::Batch(batch.records.clone()).encode())?;
        }
        let mut st = self.state.write();
        for rec in &batch.records {
            match rec {
                WalRecord::Put { key, value } => {
                    DbStats::bump(&self.stats.puts);
                    st.mem.put(key, value);
                }
                WalRecord::Delete { key } => {
                    DbStats::bump(&self.stats.deletes);
                    st.mem.delete(key);
                }
                WalRecord::Merge { key, operand } => {
                    DbStats::bump(&self.stats.merges);
                    st.mem.merge(key, operand, op.as_deref().unwrap());
                }
                WalRecord::Batch(_) => unreachable!("batches do not nest"),
            }
        }
        self.maybe_flush(&mut st)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        DbStats::bump(&self.stats.gets);
        let st = self.state.read();
        match st.mem.get(key) {
            Some(Value::Put(v)) => return Ok(Some(v.clone())),
            Some(Value::Delete) => return Ok(None),
            Some(Value::Merge(ops)) => {
                let base = self.get_from_tables(&st, key)?;
                let op = self.merge_operator()?;
                return Ok(Some(op.full_merge(key, base.as_deref(), ops)));
            }
            None => {}
        }
        self.get_from_tables(&st, key)
    }

    /// Does `key` exist? (Cheaper than `get` for existence checks —
    /// used by the daemon's create path.)
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    fn get_from_tables(&self, st: &State, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // L0 newest first — later flushes shadow earlier ones.
        for th in st.l0.iter().rev() {
            if !th.table.may_contain(key) {
                DbStats::bump(&self.stats.bloom_skips);
                continue;
            }
            match th.table.get(key)? {
                Some((Tag::Put, v)) => return Ok(Some(v)),
                Some((Tag::Delete, _)) => return Ok(None),
                None => {}
            }
        }
        for th in &st.l1 {
            if !th.table.may_contain(key) {
                DbStats::bump(&self.stats.bloom_skips);
                continue;
            }
            match th.table.get(key)? {
                Some((Tag::Put, v)) => return Ok(Some(v)),
                Some((Tag::Delete, _)) => return Ok(None),
                None => {}
            }
        }
        Ok(None)
    }

    /// All live `(key, value)` pairs whose key starts with `prefix`, in
    /// key order. This powers the daemon's `readdir` prefix scan over
    /// the flat namespace.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        DbStats::bump(&self.stats.scans);
        let st = self.state.read();

        // Accumulate oldest-to-newest so newer sources shadow older.
        let mut acc: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let in_prefix = |k: &[u8]| k.starts_with(prefix);

        for th in st.l1.iter().chain(st.l0.iter()) {
            for entry in th.table.iter_from(prefix) {
                let (tag, k, v) = entry?;
                if !in_prefix(&k) {
                    break;
                }
                match tag {
                    Tag::Put => acc.insert(k, Some(v)),
                    Tag::Delete => acc.insert(k, None),
                };
            }
        }
        let op = self.opts.merge_operator.clone();
        for (k, v) in st.mem.range(prefix, None) {
            if !in_prefix(k) {
                break;
            }
            match v {
                Value::Put(val) => {
                    acc.insert(k.to_vec(), Some(val.clone()));
                }
                Value::Delete => {
                    acc.insert(k.to_vec(), None);
                }
                Value::Merge(ops) => {
                    let base = acc.get(k).cloned().flatten();
                    let op = op.as_ref().ok_or_else(|| {
                        GkfsError::InvalidArgument("no merge operator configured".into())
                    })?;
                    acc.insert(k.to_vec(), Some(op.full_merge(k, base.as_deref(), ops)));
                }
            }
        }

        Ok(acc
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// All live `(key, value)` pairs with `start <= key < end`
    /// (`end = None` means unbounded), in key order.
    pub fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        DbStats::bump(&self.stats.scans);
        let st = self.state.read();
        let in_range =
            |k: &[u8]| k >= start && end.map(|e| k < e).unwrap_or(true);

        let mut acc: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for th in st.l1.iter().chain(st.l0.iter()) {
            for entry in th.table.iter_from(start) {
                let (tag, k, v) = entry?;
                if let Some(e) = end {
                    if k.as_slice() >= e {
                        break;
                    }
                }
                match tag {
                    Tag::Put => acc.insert(k, Some(v)),
                    Tag::Delete => acc.insert(k, None),
                };
            }
        }
        let op = self.opts.merge_operator.clone();
        for (k, v) in st.mem.range(start, end) {
            if !in_range(k) {
                break;
            }
            match v {
                Value::Put(val) => {
                    acc.insert(k.to_vec(), Some(val.clone()));
                }
                Value::Delete => {
                    acc.insert(k.to_vec(), None);
                }
                Value::Merge(ops) => {
                    let base = acc.get(k).cloned().flatten();
                    let op = op.as_ref().ok_or_else(|| {
                        GkfsError::InvalidArgument("no merge operator configured".into())
                    })?;
                    acc.insert(k.to_vec(), Some(op.full_merge(k, base.as_deref(), ops)));
                }
            }
        }
        Ok(acc
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Total number of live keys (scan; test/diagnostic use).
    pub fn len(&self) -> Result<usize> {
        Ok(self.scan_prefix(&[])?.len())
    }

    /// True when no mutations are queued.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Force a memtable flush (normally automatic).
    pub fn flush(&self) -> Result<()> {
        let mut st = self.state.write();
        self.flush_locked(&mut st)
    }

    fn maybe_flush(&self, st: &mut State) -> Result<()> {
        if st.mem.approx_bytes() >= self.opts.memtable_bytes {
            self.flush_locked(st)?;
        }
        Ok(())
    }

    fn flush_locked(&self, st: &mut State) -> Result<()> {
        if st.mem.is_empty() {
            return Ok(());
        }
        DbStats::bump(&self.stats.flushes);
        let entries = st.mem.take();
        let mut builder = TableBuilder::new(entries.len());
        for (k, v) in &entries {
            match v {
                Value::Put(val) => builder.add(Tag::Put, k, val),
                Value::Delete => builder.add(Tag::Delete, k, b""),
                Value::Merge(ops) => {
                    // Resolve the merge against the table levels now so
                    // tables never contain merge records.
                    let base = self.get_from_tables(st, k)?;
                    let op = self.merge_operator()?;
                    builder.add(Tag::Put, k, &op.full_merge(k, base.as_deref(), ops));
                }
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let blob = builder.finish();
        self.store.put_blob(&table_name(id), &blob)?;
        let table = Table::open(Arc::new(blob))?;
        st.l0.push(TableHandle { id, table });
        self.write_manifest(st)?;
        if self.opts.wal {
            self.store.reset_log()?;
        }
        if st.l0.len() >= self.opts.l0_compaction_trigger {
            self.compact_locked(st)?;
        }
        Ok(())
    }

    /// Force a full compaction (normally automatic).
    pub fn compact(&self) -> Result<()> {
        let mut st = self.state.write();
        self.flush_locked(&mut st)?;
        self.compact_locked(&mut st)
    }

    /// Merge all L0 tables and the L1 run into a fresh L1 run.
    /// Because this is a *full* compaction, tombstones can be dropped.
    fn compact_locked(&self, st: &mut State) -> Result<()> {
        if st.l0.is_empty() && st.l1.len() <= 1 {
            return Ok(());
        }
        DbStats::bump(&self.stats.compactions);

        // Newest-wins accumulation, oldest sources first.
        let mut acc: BTreeMap<Vec<u8>, (Tag, Vec<u8>)> = BTreeMap::new();
        for th in st.l1.iter().chain(st.l0.iter()) {
            for entry in th.table.iter() {
                let (tag, k, v) = entry?;
                acc.insert(k, (tag, v));
            }
        }

        // Emit live entries into size-bounded output tables.
        const TARGET_TABLE_BYTES: usize = 8 * 1024 * 1024;
        let mut new_l1: Vec<TableHandle> = Vec::new();
        let mut builder = TableBuilder::new(acc.len());
        let mut bytes = 0usize;
        let mut live = 0usize;
        for (k, (tag, v)) in &acc {
            if *tag == Tag::Delete {
                continue; // full compaction: tombstones drop out
            }
            builder.add(Tag::Put, k, v);
            bytes += k.len() + v.len();
            live += 1;
            if bytes >= TARGET_TABLE_BYTES {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let blob = std::mem::replace(&mut builder, TableBuilder::new(acc.len() - live))
                    .finish();
                self.store.put_blob(&table_name(id), &blob)?;
                new_l1.push(TableHandle {
                    id,
                    table: Table::open(Arc::new(blob))?,
                });
                bytes = 0;
            }
        }
        if !builder.is_empty() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let blob = builder.finish();
            self.store.put_blob(&table_name(id), &blob)?;
            new_l1.push(TableHandle {
                id,
                table: Table::open(Arc::new(blob))?,
            });
        }

        let old: Vec<u64> = st
            .l0
            .iter()
            .chain(st.l1.iter())
            .map(|th| th.id)
            .collect();
        st.l0.clear();
        st.l1 = new_l1;
        self.write_manifest(st)?;
        for id in old {
            self.store.delete_blob(&table_name(id))?;
        }
        Ok(())
    }

    fn write_manifest(&self, st: &State) -> Result<()> {
        let mut e = Encoder::new();
        e.u32(st.l0.len() as u32);
        for th in &st.l0 {
            e.u64(th.id);
        }
        e.u32(st.l1.len() as u32);
        for th in &st.l1 {
            e.u64(th.id);
        }
        self.store.put_blob(MANIFEST, e.as_slice())
    }

    /// Diagnostic snapshot of the level shape: `(memtable_keys, l0
    /// tables, l1 tables)`.
    pub fn level_shape(&self) -> (usize, usize, usize) {
        let st = self.state.read();
        (st.mem.len(), st.l0.len(), st.l1.len())
    }

    /// Human-readable one-call status dump — the RocksDB
    /// `GetProperty("rocksdb.stats")` analogue, used by operators and
    /// the daemon's diagnostics.
    pub fn stats_summary(&self) -> String {
        let (mem, l0, l1) = self.level_shape();
        let s = &self.stats;
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "levels: memtable={mem} keys, L0={l0} tables, L1={l1} tables\n\
             ops: puts={} gets={} deletes={} merges={} scans={}\n\
             maintenance: flushes={} compactions={} bloom_skips={}",
            ld(&s.puts),
            ld(&s.gets),
            ld(&s.deletes),
            ld(&s.merges),
            ld(&s.scans),
            ld(&s.flushes),
            ld(&s.compactions),
            ld(&s.bloom_skips),
        )
    }
}

fn table_name(id: u64) -> String {
    format!("sst-{id:012}.sst")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{Add64MergeOperator, Max64MergeOperator};

    fn small_opts() -> DbOptions {
        DbOptions {
            memtable_bytes: 4096, // force frequent flushes in tests
            l0_compaction_trigger: 3,
            wal: false,
            merge_operator: Some(Arc::new(Max64MergeOperator)),
        }
    }

    #[test]
    fn put_get_delete_through_levels() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..500 {
            db.put(format!("/k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let (_, l0, l1) = db.level_shape();
        assert!(l0 + l1 > 0, "expected flushes to have happened");
        for i in (0..500).step_by(17) {
            assert_eq!(
                db.get(format!("/k{i:04}").as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
        db.delete(b"/k0000").unwrap();
        assert!(db.get(b"/k0000").unwrap().is_none());
        // Deleted key stays gone across flush + compaction.
        db.compact().unwrap();
        assert!(db.get(b"/k0000").unwrap().is_none());
        assert_eq!(db.len().unwrap(), 499);
    }

    #[test]
    fn overwrite_latest_wins_across_levels() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/x", b"old").unwrap();
        db.flush().unwrap();
        db.put(b"/x", b"new").unwrap();
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"new"[..]));
        db.flush().unwrap();
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"new"[..]));
        db.compact().unwrap();
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn tombstone_shadows_older_table() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/gone", b"v").unwrap();
        db.flush().unwrap();
        db.delete(b"/gone").unwrap();
        db.flush().unwrap();
        assert!(db.get(b"/gone").unwrap().is_none());
        let scan = db.scan_prefix(b"/gone").unwrap();
        assert!(scan.is_empty());
    }

    #[test]
    fn merge_max_across_flushes() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/f:size", &100u64.to_le_bytes()).unwrap();
        db.flush().unwrap();
        // Base now lives in a table; merges must stack and resolve.
        db.merge(b"/f:size", &50u64.to_le_bytes()).unwrap();
        db.merge(b"/f:size", &300u64.to_le_bytes()).unwrap();
        let v = db.get(b"/f:size").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 300);
        db.flush().unwrap();
        let v = db.get(b"/f:size").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 300);
    }

    #[test]
    fn merge_without_operator_errors() {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        assert!(matches!(
            db.merge(b"/k", b"x"),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn scan_prefix_merges_all_sources() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/dir/a", b"1").unwrap();
        db.flush().unwrap();
        db.put(b"/dir/b", b"2").unwrap();
        db.flush().unwrap();
        db.put(b"/dir/c", b"3").unwrap(); // stays in memtable
        db.put(b"/other/x", b"9").unwrap();
        db.delete(b"/dir/a").unwrap(); // tombstone in memtable
        let entries = db.scan_prefix(b"/dir/").unwrap();
        let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"/dir/b"[..], b"/dir/c"]);
    }

    #[test]
    fn scan_prefix_resolves_memtable_merges() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/f", &10u64.to_le_bytes()).unwrap();
        db.flush().unwrap();
        db.merge(b"/f", &99u64.to_le_bytes()).unwrap();
        let entries = db.scan_prefix(b"/f").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            u64::from_le_bytes(entries[0].1[..].try_into().unwrap()),
            99
        );
    }

    #[test]
    fn compaction_reduces_table_count_and_preserves_data() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..2000 {
            db.put(format!("/k{i:05}").as_bytes(), b"payload-payload").unwrap();
        }
        db.compact().unwrap();
        let (mem, l0, l1) = db.level_shape();
        assert_eq!(mem, 0);
        assert_eq!(l0, 0);
        assert!(l1 >= 1);
        assert_eq!(db.len().unwrap(), 2000);
        assert_eq!(
            db.get(b"/k01234").unwrap().as_deref(),
            Some(&b"payload-payload"[..])
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let store = Arc::new(MemBlobStore::new());
        let mut opts = small_opts();
        opts.wal = true;
        {
            let db = Db::open(store.clone(), opts.clone()).unwrap();
            for i in 0..100 {
                db.put(format!("/p{i}").as_bytes(), b"v").unwrap();
            }
            db.merge(b"/p0:size", &7u64.to_le_bytes()).unwrap();
            // No explicit flush: some state is only in the WAL.
        }
        {
            let db = Db::open(store, opts).unwrap();
            assert_eq!(db.get(b"/p42").unwrap().as_deref(), Some(&b"v"[..]));
            let v = db.get(b"/p0:size").unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 7);
        }
    }

    #[test]
    fn persistence_on_disk() {
        let dir = std::env::temp_dir().join(format!("gkfs-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = small_opts();
        opts.wal = true;
        {
            let db = Db::open_dir(&dir, opts.clone()).unwrap();
            for i in 0..500 {
                db.put(format!("/d{i:04}").as_bytes(), b"disk").unwrap();
            }
        }
        {
            let db = Db::open_dir(&dir, opts).unwrap();
            assert_eq!(db.len().unwrap(), 500);
            assert_eq!(db.get(b"/d0123").unwrap().as_deref(), Some(&b"disk"[..]));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = Db::open_memory(DbOptions {
            memtable_bytes: 16 * 1024,
            l0_compaction_trigger: 3,
            wal: false,
            merge_operator: Some(Arc::new(Add64MergeOperator)),
        })
        .unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..1000 {
                        db.put(format!("/t{t}/k{i}").as_bytes(), b"v").unwrap();
                        db.merge(b"/counter", &1u64.to_le_bytes()).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..1000 {
                        let _ = db.get(format!("/t0/k{i}").as_bytes()).unwrap();
                    }
                });
            }
        });
        let v = db.get(b"/counter").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 4000);
        for t in 0..4 {
            assert_eq!(db.scan_prefix(format!("/t{t}/").as_bytes()).unwrap().len(), 1000);
        }
    }

    #[test]
    fn write_batch_is_atomic_to_readers() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/acct/a", &100u64.to_le_bytes()).unwrap();
        db.put(b"/acct/b", &0u64.to_le_bytes()).unwrap();
        let read_sum = |db: &Db| -> u64 {
            db.scan_prefix(b"/acct/")
                .unwrap()
                .iter()
                .map(|(_, v)| u64::from_le_bytes(v[..].try_into().unwrap()))
                .sum()
        };
        // Transfers between the two keys via batches; concurrent
        // readers must always observe the invariant sum.
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..500u64 {
                    let mut b = WriteBatch::new();
                    b.put(b"/acct/a", &(100 - (i % 100)).to_le_bytes());
                    b.put(b"/acct/b", &(i % 100).to_le_bytes());
                    db.write(b).unwrap();
                }
            });
            for _ in 0..200 {
                assert_eq!(read_sum(&db), 100, "readers must never see a torn batch");
            }
            writer.join().unwrap();
        });
    }

    #[test]
    fn write_batch_mixed_ops_and_recovery() {
        let store = Arc::new(MemBlobStore::new());
        let mut opts = small_opts();
        opts.wal = true;
        {
            let db = Db::open(store.clone(), opts.clone()).unwrap();
            db.put(b"/old", b"x").unwrap();
            let mut b = WriteBatch::new();
            b.put(b"/new", b"y")
                .delete(b"/old")
                .merge(b"/size", &42u64.to_le_bytes());
            assert_eq!(b.len(), 3);
            db.write(b).unwrap();
            // No flush: recovery comes purely from the WAL batch record.
        }
        let db = Db::open(store, opts).unwrap();
        assert_eq!(db.get(b"/new").unwrap().as_deref(), Some(&b"y"[..]));
        assert!(db.get(b"/old").unwrap().is_none());
        let v = db.get(b"/size").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 42);
    }

    #[test]
    fn empty_batch_is_noop() {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.stats().puts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn scan_range_bounds() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..50 {
            db.put(format!("/r/{i:02}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        db.delete(b"/r/25").unwrap(); // tombstone inside the range
        let hits = db.scan_range(b"/r/20", Some(b"/r/30")).unwrap();
        let keys: Vec<String> = hits
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys.len(), 9, "20..30 minus the deleted 25: {keys:?}");
        assert_eq!(keys.first().unwrap(), "/r/20");
        assert_eq!(keys.last().unwrap(), "/r/29");
        // Unbounded end.
        assert_eq!(db.scan_range(b"/r/45", None).unwrap().len(), 5);
        // Empty range.
        assert!(db.scan_range(b"/zzz", None).unwrap().is_empty());
    }

    #[test]
    fn put_if_absent_is_exclusive() {
        let db = Db::open_memory(small_opts()).unwrap();
        assert!(db.put_if_absent(b"/x", b"first").unwrap());
        assert!(!db.put_if_absent(b"/x", b"second").unwrap());
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"first"[..]));
        // After delete, the key is insertable again (tombstone case).
        db.delete(b"/x").unwrap();
        assert!(db.put_if_absent(b"/x", b"third").unwrap());
        // Key present only in a flushed table still counts as existing.
        db.flush().unwrap();
        assert!(!db.put_if_absent(b"/x", b"fourth").unwrap());
    }

    #[test]
    fn put_if_absent_races_one_winner() {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let db = &db;
                    s.spawn(move || db.put_if_absent(b"/race", format!("w{i}").as_bytes()).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap() as usize)
                .sum()
        });
        assert_eq!(winners, 1, "exactly one creator may win");
    }

    #[test]
    fn stats_summary_mentions_activity() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..100 {
            db.put(format!("/s{i}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        let _ = db.get(b"/s5").unwrap();
        let dump = db.stats_summary();
        assert!(dump.contains("puts=100"), "{dump}");
        assert!(dump.contains("gets=1"), "{dump}");
        assert!(dump.contains("flushes="), "{dump}");
        assert!(dump.contains("L0="), "{dump}");
    }

    #[test]
    fn bloom_filters_skip_absent_keys() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..200 {
            db.put(format!("/present/{i}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        for i in 0..200 {
            assert!(db.get(format!("/absent/{i}").as_bytes()).unwrap().is_none());
        }
        assert!(
            db.stats().bloom_skips.load(Ordering::Relaxed) > 150,
            "bloom filters should have skipped most absent lookups"
        );
    }
}
