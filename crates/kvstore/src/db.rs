//! The database facade: WAL + memtable + leveled tables.
//!
//! Concurrency follows the LevelDB/RocksDB model the paper's create
//! rates depend on — foreground writers never wait for disk:
//!
//! * **Writes** append to the WAL (group-committed, see below) and
//!   insert into the *active* memtable under a short lock.
//! * **Memtable rotation**: when the active memtable exceeds its
//!   budget it is frozen into an *immutable memtable* and replaced by
//!   a fresh one — a pointer swap, not an I/O. The frozen table stays
//!   readable until its SSTable lands.
//! * **Background flush**: a dedicated thread builds SSTables from
//!   immutable memtables (oldest first) and installs them in L0.
//! * **Background compaction**: a second thread merges L0+L1 into a
//!   fresh L1 run. Foreground writers are only *slowed* (then
//!   *stalled*) when L0 grows past configurable thresholds —
//!   RocksDB's `level0_slowdown/stop_writes_trigger`.
//! * **Reads** clone an [`Arc`] snapshot of
//!   `{memtable, imm, l0, l1}` (a *version*) and search entirely
//!   outside the version lock, so scans and point reads never contend
//!   with flushes or compactions.
//! * **Group commit**: concurrent writers appending to the WAL in the
//!   same window elect a leader that writes (and, with `sync`, fsyncs)
//!   all queued frames with one call.
//!
//! Versions are immutable: installing a flush or compaction result
//! builds a *new* version and swaps the pointer, so an in-flight read
//! keeps a consistent view (the removed imm and its new table never
//! both appear, and never both disappear).
//!
//! Merge operands that cannot be folded in the memtable are resolved
//! at **flush time** against the table levels, so SSTables only ever
//! contain `Put`/`Delete` entries. The single FIFO flusher guarantees
//! every source older than the memtable being flushed is already in
//! the table levels.
//!
//! Durability across the background window relies on two pieces: the
//! WAL is *segmented* — rotation seals the active segment so each
//! sealed segment holds exactly one immutable memtable's records, and
//! a segment is dropped only after its memtable's SSTable is in the
//! manifest — and every record carries its commit *sequence number*,
//! with the manifest storing a `flushed_seq` watermark so replay never
//! re-applies (non-idempotent) records that already reached a table.
//!
//! Lock order (to stay deadlock-free), outermost to innermost:
//! `threads` → `compaction_lock` → `manifest_lock` → `work` →
//! `version` → active memtable → frozen memtables → group-commit
//! state. Every lock is an [`OrderedMutex`]/[`OrderedRwLock`] carrying
//! its `gkfs_common::lock::rank::KV_*` rank: debug builds assert the
//! order at runtime, and `gkfs-lint` (GKL001) checks the nesting
//! statically. Freezing a memtable *demotes* its rank
//! (`KV_MEMTABLE` → `KV_MEMTABLE_FROZEN`) so readers may consult
//! frozen tables while holding the active one.

use crate::blobstore::{BlobStore, FsBlobStore, MemBlobStore};
use crate::memtable::{MemTable, Value};
use crate::merge::MergeOperator;
use crate::sstable::{Table, TableBuilder, Tag};
use crate::wal::{replay, WalRecord};
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};
use gkfs_common::lock::{rank, OrderedMutex, OrderedRwLock};
use parking_lot::Condvar;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Db`].
#[derive(Clone)]
pub struct DbOptions {
    /// Memtable budget in bytes before it is rotated out for flushing.
    pub memtable_bytes: usize,
    /// Number of L0 tables that triggers a background compaction.
    pub l0_compaction_trigger: usize,
    /// L0 table count at which writers are briefly slowed down to let
    /// the compactor catch up.
    pub l0_slowdown_threshold: usize,
    /// L0 table count at which writers stall until compaction brings
    /// it back down.
    pub l0_stall_threshold: usize,
    /// Maximum immutable memtables awaiting flush before rotation
    /// applies backpressure.
    pub max_imm_memtables: usize,
    /// Write-ahead logging. GekkoFS deployments are ephemeral, so the
    /// daemon usually runs without it; tests for crash recovery turn
    /// it on.
    pub wal: bool,
    /// Wait for the WAL to be fsynced before acknowledging writes
    /// (shared across a group-commit batch). Per-batch override:
    /// [`WriteBatch::sync`].
    pub sync: bool,
    /// Optional merge operator (required before calling [`Db::merge`]).
    pub merge_operator: Option<Arc<dyn MergeOperator>>,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            memtable_bytes: 4 * 1024 * 1024,
            l0_compaction_trigger: 4,
            l0_slowdown_threshold: 8,
            l0_stall_threshold: 16,
            max_imm_memtables: 2,
            wal: false,
            sync: false,
            merge_operator: None,
        }
    }
}

impl std::fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOptions")
            .field("memtable_bytes", &self.memtable_bytes)
            .field("l0_compaction_trigger", &self.l0_compaction_trigger)
            .field("l0_slowdown_threshold", &self.l0_slowdown_threshold)
            .field("l0_stall_threshold", &self.l0_stall_threshold)
            .field("max_imm_memtables", &self.max_imm_memtables)
            .field("wal", &self.wal)
            .field("sync", &self.sync)
            .field("merge_operator", &self.merge_operator.is_some())
            .finish()
    }
}

/// Operational counters, readable at any time.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Point inserts/overwrites served.
    pub puts: AtomicU64,
    /// Point lookups served.
    pub gets: AtomicU64,
    /// Deletions served.
    pub deletes: AtomicU64,
    /// Merge operands applied.
    pub merges: AtomicU64,
    /// Prefix/range scans served.
    pub scans: AtomicU64,
    /// Memtable flushes performed.
    pub flushes: AtomicU64,
    /// Full compactions performed.
    pub compactions: AtomicU64,
    /// Point lookups answered without touching a table thanks to a
    /// bloom-filter miss.
    pub bloom_skips: AtomicU64,
    /// Writer stall episodes (imm backlog or L0 at the stall
    /// threshold).
    pub stalls: AtomicU64,
    /// Writer slowdown episodes (L0 at the slowdown threshold).
    pub slowdowns: AtomicU64,
    /// Total time writers spent stalled, in microseconds.
    pub stall_micros: AtomicU64,
    /// Point lookups resolved from an immutable (frozen, not yet
    /// flushed) memtable.
    pub imm_hits: AtomicU64,
    /// Group-commit batches written (one `append_log`, at most one
    /// `sync_log` each).
    pub group_commits: AtomicU64,
    /// Total records covered by those batches; `records / batches` is
    /// the mean group size.
    pub group_commit_records: AtomicU64,
}

impl DbStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A group of mutations applied atomically: concurrent readers see
/// either none or all of them, and crash recovery replays all-or-none
/// (the batch is one WAL record). The RocksDB `WriteBatch` analogue —
/// GekkoFS-style metadata transactions (e.g. create + parent touch)
/// build on this.
#[derive(Default, Debug, Clone)]
pub struct WriteBatch {
    records: Vec<WalRecord>,
    sync: Option<bool>,
}

impl WriteBatch {
    /// Start an empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue an insert/overwrite.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.records.push(WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        });
        self
    }

    /// Queue a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.records.push(WalRecord::Delete { key: key.to_vec() });
        self
    }

    /// Queue a merge operand.
    pub fn merge(&mut self, key: &[u8], operand: &[u8]) -> &mut Self {
        self.records.push(WalRecord::Merge {
            key: key.to_vec(),
            operand: operand.to_vec(),
        });
        self
    }

    /// Override [`DbOptions::sync`] for this batch: `true` waits for
    /// the (group-committed) fsync before the write is acknowledged.
    pub fn sync(&mut self, sync: bool) -> &mut Self {
        self.sync = Some(sync);
        self
    }

    /// Number of queued mutations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no mutations are queued.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The active memtable, shared between the version that owns it and
/// (after rotation) the immutable-memtable record flushing it.
type SharedMem = Arc<OrderedRwLock<MemTable>>;

/// A frozen memtable awaiting background flush. Readable (the `mem`
/// lock is only ever taken for reading once frozen), plus the WAL
/// bookkeeping needed to retire its log segment after the flush.
struct ImmMem {
    mem: SharedMem,
    /// Sealed WAL segment holding exactly this memtable's records.
    wal_segment: u64,
    /// Highest sequence number this memtable contains; becomes the
    /// manifest's `flushed_seq` watermark once the SSTable lands.
    max_seq: u64,
}

/// An open SSTable. The `Table` keeps its blob bytes alive via `Arc`,
/// so a version snapshot holding this handle can keep reading after
/// compaction deletes the blob from the store.
struct TableHandle {
    id: u64,
    table: Table,
}

/// An immutable snapshot of the whole LSM shape. Readers clone the
/// `Arc` and search without any lock; installers build a new version
/// and swap the pointer.
struct Version {
    mem: SharedMem,
    /// Frozen memtables, oldest first.
    imm: Vec<Arc<ImmMem>>,
    /// Flushed tables, newest last. May overlap each other.
    l0: Vec<Arc<TableHandle>>,
    /// One sorted, non-overlapping run (possibly several blobs split
    /// by size), ordered by key range.
    l1: Vec<Arc<TableHandle>>,
}

/// Group-commit queue state, guarded by [`GroupCommit::state`].
struct GcState {
    /// Encoded frames waiting for the next leader's single append.
    pending: Vec<u8>,
    /// How many records those frames hold.
    pending_records: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence whose frame is in the log.
    written_seq: u64,
    /// Highest sequence covered by a durable sync.
    synced_seq: u64,
    /// Highest sequence some committer wants synced.
    sync_wanted: u64,
    /// A leader is appending/syncing off-lock right now.
    leader_active: bool,
}

/// WAL group commit: writers enqueue encoded frames under the memtable
/// lock (so log order equals apply order), then one of the waiting
/// writers becomes the leader and performs a single `append_log` —
/// and at most one `sync_log` — for everything queued.
struct GroupCommit {
    state: OrderedMutex<GcState>,
    cv: Condvar,
}

impl GroupCommit {
    fn new(last_seq: u64) -> GroupCommit {
        GroupCommit {
            state: OrderedMutex::new(rank::KV_GROUP_COMMIT, GcState {
                pending: Vec::new(),
                pending_records: 0,
                next_seq: last_seq + 1,
                written_seq: last_seq,
                synced_seq: last_seq,
                sync_wanted: last_seq,
                leader_active: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Assign the next sequence number to `rec` and queue its frame.
    /// Must be called with the active memtable's write lock held, so
    /// sequence order == memtable apply order == log order.
    fn enqueue(&self, rec: &WalRecord) -> u64 {
        let mut gc = self.state.lock();
        let seq = gc.next_seq;
        gc.next_seq += 1;
        let frame = rec.encode(seq);
        gc.pending.extend_from_slice(&frame);
        gc.pending_records += 1;
        seq
    }

    /// Wait until `seq` is in the log (and synced, when `sync`). The
    /// first waiter to find no leader active becomes the leader and
    /// writes every queued frame on behalf of all.
    fn commit(&self, seq: u64, sync: bool, store: &dyn BlobStore, stats: &DbStats) -> Result<()> {
        let mut gc = self.state.lock();
        if sync && gc.sync_wanted < seq {
            gc.sync_wanted = seq;
        }
        loop {
            let done = if sync {
                gc.synced_seq >= seq
            } else {
                gc.written_seq >= seq
            };
            if done {
                return Ok(());
            }
            if gc.leader_active {
                gc.wait(&self.cv);
                continue;
            }
            // Become the leader: take the whole queue, write it with
            // one append (and at most one fsync) off-lock.
            let buf = std::mem::take(&mut gc.pending);
            let nrec = std::mem::replace(&mut gc.pending_records, 0);
            let target = gc.next_seq - 1;
            let do_sync = gc.sync_wanted > gc.synced_seq;
            gc.leader_active = true;
            drop(gc);

            let mut res = Ok(());
            if !buf.is_empty() {
                res = store.append_log(&buf);
            }
            if res.is_ok() && do_sync {
                res = store.sync_log();
            }

            gc = self.state.lock();
            gc.leader_active = false;
            match &res {
                Ok(()) => {
                    if !buf.is_empty() {
                        gc.written_seq = gc.written_seq.max(target);
                        DbStats::bump(&stats.group_commits);
                        stats
                            .group_commit_records
                            .fetch_add(nrec, Ordering::Relaxed);
                    }
                    if do_sync {
                        gc.synced_seq = gc.written_seq;
                    }
                }
                Err(_) => {
                    // Put the frames back at the front so a later
                    // leader (or the rotation path) retries them in
                    // order; our caller sees the error.
                    let mut restored = buf;
                    restored.extend_from_slice(&gc.pending);
                    gc.pending = restored;
                    gc.pending_records += nrec;
                }
            }
            self.cv.notify_all();
            res?;
        }
    }

    /// Flush every queued frame into the active segment, sync it if
    /// any committer asked for durability it hasn't got yet, then seal
    /// the segment. Called by memtable rotation with the version write
    /// lock held (no enqueue can race — writers enqueue under the
    /// version *read* lock). Returns the sealed segment id and the
    /// highest sequence number it can contain.
    fn seal_and_rotate(&self, store: &dyn BlobStore) -> Result<(u64, u64)> {
        let mut gc = self.state.lock();
        while gc.leader_active {
            gc.wait(&self.cv);
        }
        let max_seq = gc.next_seq - 1;
        let res = seal_locked(&mut gc, store);
        self.cv.notify_all();
        res.map(|segment| (segment, max_seq))
    }
}

fn seal_locked(gc: &mut GcState, store: &dyn BlobStore) -> Result<u64> {
    if !gc.pending.is_empty() {
        let buf = std::mem::take(&mut gc.pending);
        let nrec = std::mem::replace(&mut gc.pending_records, 0);
        if let Err(e) = store.append_log(&buf) {
            gc.pending = buf;
            gc.pending_records = nrec;
            return Err(e);
        }
        gc.written_seq = gc.next_seq - 1;
    }
    if gc.sync_wanted > gc.synced_seq {
        store.sync_log()?;
        gc.synced_seq = gc.written_seq;
    }
    store.rotate_log()
}

/// Coordination state for the background threads.
#[derive(Default)]
struct WorkState {
    /// Background threads must exit.
    stop: bool,
    /// When stopping: finish all queued flushes first (clean
    /// shutdown). Without it, a stop is crash-like and the WAL covers
    /// the loss.
    drain: bool,
    /// The compactor should run a compaction even below the trigger.
    compact_requested: bool,
    /// First error a background thread hit; poisons foreground
    /// flush/stall paths so it surfaces instead of hanging them.
    bg_error: Option<GkfsError>,
}

struct DbInner {
    version: OrderedRwLock<Arc<Version>>,
    store: Arc<dyn BlobStore>,
    opts: DbOptions,
    next_id: AtomicU64,
    stats: DbStats,
    gc: GroupCommit,
    /// Highest sequence number resolved into an SSTable (mirrors the
    /// manifest); replay skips records at or below it.
    flushed_seq: AtomicU64,
    /// Serializes manifest writers (flush installs vs compaction
    /// installs).
    manifest_lock: OrderedMutex<()>,
    /// Serializes compactions (background vs explicit `compact()`).
    compaction_lock: OrderedMutex<()>,
    work: OrderedMutex<WorkState>,
    /// Wakes background threads (new imm, compaction request, stop).
    work_cv: Condvar,
    /// Wakes foreground threads waiting on background progress
    /// (stalls, `flush()`).
    done_cv: Condvar,
}

/// An embedded LSM key-value store, shared via `Arc`. Dropping the
/// last handle stops the background threads *without* draining
/// (crash-equivalent; the WAL covers acknowledged writes) — call
/// [`Db::shutdown`] for a clean drain.
pub struct Db {
    inner: Arc<DbInner>,
    threads: OrderedMutex<Vec<std::thread::JoinHandle<()>>>,
}

const MANIFEST: &str = "MANIFEST";

fn apply_replayed(
    mem: &mut MemTable,
    rec: WalRecord,
    merge_op: &Option<Arc<dyn MergeOperator>>,
) -> Result<()> {
    match rec {
        WalRecord::Put { key, value } => mem.put(&key, &value),
        WalRecord::Delete { key } => mem.delete(&key),
        WalRecord::Merge { key, operand } => {
            let op = merge_op.as_ref().ok_or_else(|| {
                GkfsError::InvalidArgument(
                    "WAL contains merges but no merge operator configured".into(),
                )
            })?;
            mem.merge(&key, &operand, op.as_ref());
        }
        WalRecord::Batch(inner) => {
            for r in inner {
                apply_replayed(mem, r, merge_op)?;
            }
        }
    }
    Ok(())
}

impl Db {
    /// Open a database over an arbitrary blob store, recovering any
    /// existing manifest and WAL, and start the background flush and
    /// compaction threads.
    pub fn open(store: Arc<dyn BlobStore>, opts: DbOptions) -> Result<Arc<Db>> {
        let mut l0: Vec<Arc<TableHandle>> = Vec::new();
        let mut l1: Vec<Arc<TableHandle>> = Vec::new();
        let mut max_id = 0u64;
        let mut flushed_seq = 0u64;

        // Recover table levels from the manifest, if present.
        if let Ok(blob) = store.get_blob(MANIFEST) {
            let mut d = Decoder::new(&blob);
            flushed_seq = d.u64()?;
            for level in [&mut l0, &mut l1] {
                let n = d.u32()?;
                for _ in 0..n {
                    let id = d.u64()?;
                    max_id = max_id.max(id);
                    let table = Table::open(store.get_blob(&table_name(id))?)?;
                    level.push(Arc::new(TableHandle { id, table }));
                }
            }
            d.finish()?;
        }

        // Replay the WAL into the memtable, skipping records already
        // resolved into a table (`seq <= flushed_seq`) — a crash
        // between manifest install and segment drop must not re-apply
        // non-idempotent merge operands.
        let mut mem = MemTable::new();
        let mut max_seq = flushed_seq;
        if opts.wal {
            let log = store.read_logs().unwrap_or_default();
            for (seq, rec) in replay(&log)? {
                max_seq = max_seq.max(seq);
                if seq <= flushed_seq {
                    continue;
                }
                apply_replayed(&mut mem, rec, &opts.merge_operator)?;
            }
        }

        let inner = Arc::new(DbInner {
            version: OrderedRwLock::new(rank::KV_VERSION, Arc::new(Version {
                mem: Arc::new(OrderedRwLock::new(rank::KV_MEMTABLE, mem)),
                imm: Vec::new(),
                l0,
                l1,
            })),
            store,
            opts,
            next_id: AtomicU64::new(max_id + 1),
            stats: DbStats::default(),
            gc: GroupCommit::new(max_seq),
            flushed_seq: AtomicU64::new(flushed_seq),
            manifest_lock: OrderedMutex::new(rank::KV_MANIFEST, ()),
            compaction_lock: OrderedMutex::new(rank::KV_COMPACTION, ()),
            work: OrderedMutex::new(rank::KV_WORK, WorkState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });

        let mut threads = Vec::with_capacity(2);
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("gkfs-kv-flush".into())
                    .spawn(move || flusher_loop(&inner))
                    .expect("spawn flush thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("gkfs-kv-compact".into())
                    .spawn(move || compactor_loop(&inner))
                    .expect("spawn compaction thread"),
            );
        }

        Ok(Arc::new(Db {
            inner,
            threads: OrderedMutex::new(rank::KV_THREADS, threads),
        }))
    }

    /// Open a fully in-memory database (tests, in-process daemons).
    pub fn open_memory(opts: DbOptions) -> Result<Arc<Db>> {
        Db::open(Arc::new(MemBlobStore::new()), opts)
    }

    /// Open a database persisted under `dir`.
    pub fn open_dir(dir: impl Into<std::path::PathBuf>, opts: DbOptions) -> Result<Arc<Db>> {
        Db::open(Arc::new(FsBlobStore::open(dir)?), opts)
    }

    /// Stats.
    pub fn stats(&self) -> &DbStats {
        &self.inner.stats
    }

    /// Insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.inner.write_record(
            WalRecord::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            None,
        )
    }

    /// Insert `key` only if absent. Returns `true` if inserted,
    /// `false` if the key already existed. Atomic with respect to all
    /// other writers — this backs GekkoFS' exclusive create.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.inner.put_if_absent(key, value)
    }

    /// Delete `key` (idempotent).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.inner
            .write_record(WalRecord::Delete { key: key.to_vec() }, None)
    }

    /// Apply a merge operand to `key` (requires a configured merge
    /// operator).
    pub fn merge(&self, key: &[u8], operand: &[u8]) -> Result<()> {
        self.inner.merge_operator()?;
        self.inner.write_record(
            WalRecord::Merge {
                key: key.to_vec(),
                operand: operand.to_vec(),
            },
            None,
        )
    }

    /// Apply a [`WriteBatch`] atomically: one memtable lock
    /// acquisition, one WAL record, no interleaving with other writers
    /// or readers.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if batch
            .records
            .iter()
            .any(|r| matches!(r, WalRecord::Merge { .. }))
        {
            self.inner.merge_operator()?;
        }
        let sync = batch.sync;
        self.inner
            .write_record(WalRecord::Batch(batch.records), sync)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    /// Does `key` exist? Resolves existence from memtable tags and the
    /// SSTable index alone — the value is never copied out (the
    /// daemon's create-path existence check).
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        self.inner.contains(key)
    }

    /// All live `(key, value)` pairs whose key starts with `prefix`,
    /// in key order. This powers the daemon's `readdir` prefix scan
    /// over the flat namespace.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner
            .scan_impl(prefix, None, &|k: &[u8]| k.starts_with(prefix))
    }

    /// All live `(key, value)` pairs with `start <= key < end`
    /// (`end = None` means unbounded), in key order.
    pub fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner
            .scan_impl(start, end, &|k: &[u8]| end.map(|e| k < e).unwrap_or(true))
    }

    /// Total number of live keys (scan; test/diagnostic use).
    pub fn len(&self) -> Result<usize> {
        Ok(self.scan_prefix(&[])?.len())
    }

    /// True when the store holds no live keys.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Rotate the active memtable and wait until every frozen memtable
    /// has been flushed to L0 (normally all automatic/background).
    pub fn flush(&self) -> Result<()> {
        self.inner.rotate(true)?;
        self.inner.wait_imm_drained()
    }

    /// Flush, then run a full compaction synchronously.
    pub fn compact(&self) -> Result<()> {
        self.flush()?;
        self.inner.compact_once()
    }

    /// Drain all background work and stop the worker threads: after
    /// this returns every accepted write is in an SSTable (or sealed
    /// WAL segment) and the manifest is current. Surfaces any error a
    /// background thread hit. Later writes fall back to inline
    /// flush/compaction.
    pub fn shutdown(&self) -> Result<()> {
        {
            let mut w = self.inner.work.lock();
            w.drain = true;
        }
        // Seal the active memtable so the flusher drains it too.
        self.inner.rotate(true)?;
        {
            let mut w = self.inner.work.lock();
            w.stop = true;
            self.inner.work_cv.notify_all();
            self.inner.done_cv.notify_all();
        }
        // Take the handles out first: joining while holding the
        // `threads` guard would block every other shutdown/drop racer
        // on the lock for the workers' whole runtime (GKL002).
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        // If the flusher bailed early (error), finish its work inline.
        self.inner.drain_imms_inline()?;
        let err = self.inner.work.lock().bg_error.take();
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Diagnostic snapshot of the level shape:
    /// `(memtable_keys, imm_memtables, l0_tables, l1_tables)`.
    pub fn level_shape(&self) -> (usize, usize, usize, usize) {
        let ver = self.inner.snapshot();
        let mem = ver.mem.read().len();
        (mem, ver.imm.len(), ver.l0.len(), ver.l1.len())
    }

    /// Human-readable one-call status dump — the RocksDB
    /// `GetProperty("rocksdb.stats")` analogue, used by operators and
    /// the daemon's diagnostics.
    pub fn stats_summary(&self) -> String {
        let (mem, imm, l0, l1) = self.level_shape();
        let s = &self.inner.stats;
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "levels: memtable={mem} keys, imm={imm} frozen, L0={l0} tables, L1={l1} tables\n\
             ops: puts={} gets={} deletes={} merges={} scans={}\n\
             maintenance: flushes={} compactions={} bloom_skips={} imm_hits={}\n\
             pressure: stalls={} slowdowns={} stall_micros={}\n\
             group_commit: batches={} records={}",
            ld(&s.puts),
            ld(&s.gets),
            ld(&s.deletes),
            ld(&s.merges),
            ld(&s.scans),
            ld(&s.flushes),
            ld(&s.compactions),
            ld(&s.bloom_skips),
            ld(&s.imm_hits),
            ld(&s.stalls),
            ld(&s.slowdowns),
            ld(&s.stall_micros),
            ld(&s.group_commits),
            ld(&s.group_commit_records),
        )
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // Crash-equivalent stop: no drain. Acknowledged writes survive
        // via the WAL (when enabled) exactly as they would a real
        // crash; `shutdown()` is the clean path.
        {
            let mut w = self.inner.work.lock();
            w.stop = true;
            self.inner.work_cv.notify_all();
            self.inner.done_cv.notify_all();
        }
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl DbInner {
    fn snapshot(&self) -> Arc<Version> {
        self.version.read().clone()
    }

    fn merge_operator(&self) -> Result<Arc<dyn MergeOperator>> {
        self.opts
            .merge_operator
            .clone()
            .ok_or_else(|| GkfsError::InvalidArgument("no merge operator configured".into()))
    }

    fn bg_stopped(&self) -> bool {
        self.work.lock().stop
    }

    fn check_bg_error(&self) -> Result<()> {
        match &self.work.lock().bg_error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn set_bg_error(&self, e: GkfsError) {
        let mut w = self.work.lock();
        if w.bg_error.is_none() {
            w.bg_error = Some(e);
        }
    }

    fn request_compaction(&self) {
        let mut w = self.work.lock();
        w.compact_requested = true;
        self.work_cv.notify_all();
    }

    fn notify_done(&self) {
        let _w = self.work.lock();
        self.done_cv.notify_all();
    }

    fn apply_to_mem(&self, mem: &mut MemTable, rec: &WalRecord) -> Result<()> {
        match rec {
            WalRecord::Put { key, value } => {
                DbStats::bump(&self.stats.puts);
                mem.put(key, value);
            }
            WalRecord::Delete { key } => {
                DbStats::bump(&self.stats.deletes);
                mem.delete(key);
            }
            WalRecord::Merge { key, operand } => {
                DbStats::bump(&self.stats.merges);
                let op = self.merge_operator()?;
                mem.merge(key, operand, op.as_ref());
            }
            WalRecord::Batch(inner) => {
                for r in inner {
                    self.apply_to_mem(mem, r)?;
                }
            }
        }
        Ok(())
    }

    /// The write path: L0 backpressure, then (under the version read
    /// lock + memtable write lock) sequence assignment, WAL enqueue,
    /// and memtable apply; then group commit and, if the memtable went
    /// over budget, a rotation — all without ever holding a lock
    /// across I/O except the shared group-commit append itself.
    fn write_record(&self, rec: WalRecord, sync_override: Option<bool>) -> Result<()> {
        self.write_pressure()?;
        let (seq, over) = {
            let ver = self.version.read();
            let mut mem = ver.mem.write();
            let seq = if self.opts.wal { self.gc.enqueue(&rec) } else { 0 };
            self.apply_to_mem(&mut mem, &rec)?;
            (seq, mem.approx_bytes() >= self.opts.memtable_bytes)
        };
        if self.opts.wal {
            let sync = sync_override.unwrap_or(self.opts.sync);
            self.gc.commit(seq, sync, self.store.as_ref(), &self.stats)?;
        }
        if over {
            self.rotate(false)?;
        }
        Ok(())
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.write_pressure()?;
        let (seq, over) = {
            let ver = self.version.read();
            let mut mem = ver.mem.write();
            let exists = match mem.get(key) {
                Some(Value::Put(_)) | Some(Value::Merge(_)) => true,
                Some(Value::Delete) => false,
                None => self.exists_below_mem(&ver, key)?,
            };
            if exists {
                return Ok(false);
            }
            DbStats::bump(&self.stats.puts);
            let rec = WalRecord::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            };
            let seq = if self.opts.wal { self.gc.enqueue(&rec) } else { 0 };
            mem.put(key, value);
            (seq, mem.approx_bytes() >= self.opts.memtable_bytes)
        };
        if self.opts.wal {
            self.gc
                .commit(seq, self.opts.sync, self.store.as_ref(), &self.stats)?;
        }
        if over {
            self.rotate(false)?;
        }
        Ok(true)
    }

    /// Existence for a key not present in the active memtable: frozen
    /// memtables newest-first, then table tags (no value copies).
    fn exists_below_mem(&self, ver: &Version, key: &[u8]) -> Result<bool> {
        for imm in ver.imm.iter().rev() {
            match imm.mem.read().get(key) {
                Some(Value::Put(_)) | Some(Value::Merge(_)) => {
                    DbStats::bump(&self.stats.imm_hits);
                    return Ok(true);
                }
                Some(Value::Delete) => {
                    DbStats::bump(&self.stats.imm_hits);
                    return Ok(false);
                }
                None => {}
            }
        }
        self.tables_contain(ver, key)
    }

    /// Existence from SSTable tags alone: the bloom filter rules
    /// tables out, and [`Table::tag_of`] answers from the index entry
    /// without decoding the value.
    fn tables_contain(&self, ver: &Version, key: &[u8]) -> Result<bool> {
        for th in ver.l0.iter().rev().chain(ver.l1.iter()) {
            if !th.table.may_contain(key) {
                DbStats::bump(&self.stats.bloom_skips);
                continue;
            }
            match th.table.tag_of(key)? {
                Some(Tag::Put) => return Ok(true),
                Some(Tag::Delete) => return Ok(false),
                None => {}
            }
        }
        Ok(false)
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        DbStats::bump(&self.stats.gets);
        let ver = self.snapshot();
        match ver.mem.read().get(key) {
            Some(Value::Put(_)) | Some(Value::Merge(_)) => return Ok(true),
            Some(Value::Delete) => return Ok(false),
            None => {}
        }
        self.exists_below_mem(&ver, key)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        DbStats::bump(&self.stats.gets);
        let ver = self.snapshot();

        // Walk newest to oldest, collecting merge-operand runs until a
        // terminal state (Put / Delete / absent-everywhere) is found.
        let mut runs: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut terminal: Option<Option<Vec<u8>>> = None;

        match ver.mem.read().get(key) {
            Some(Value::Put(v)) => terminal = Some(Some(v.clone())),
            Some(Value::Delete) => terminal = Some(None),
            Some(Value::Merge(ops)) => runs.push(ops.clone()),
            None => {}
        }
        if terminal.is_none() {
            for imm in ver.imm.iter().rev() {
                match imm.mem.read().get(key) {
                    Some(Value::Put(v)) => {
                        DbStats::bump(&self.stats.imm_hits);
                        terminal = Some(Some(v.clone()));
                        break;
                    }
                    Some(Value::Delete) => {
                        DbStats::bump(&self.stats.imm_hits);
                        terminal = Some(None);
                        break;
                    }
                    Some(Value::Merge(ops)) => {
                        DbStats::bump(&self.stats.imm_hits);
                        runs.push(ops.clone());
                    }
                    None => {}
                }
            }
        }
        let base = match terminal {
            Some(t) => t,
            None => self.get_from_tables(&ver, key)?,
        };
        if runs.is_empty() {
            return Ok(base);
        }
        // Runs were collected newest-source-first; the operator wants
        // operands oldest-first.
        let op = self.merge_operator()?;
        let operands: Vec<Vec<u8>> = runs.into_iter().rev().flatten().collect();
        Ok(Some(op.full_merge(key, base.as_deref(), &operands)))
    }

    fn get_from_tables(&self, ver: &Version, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // L0 newest first — later flushes shadow earlier ones.
        for th in ver.l0.iter().rev().chain(ver.l1.iter()) {
            if !th.table.may_contain(key) {
                DbStats::bump(&self.stats.bloom_skips);
                continue;
            }
            match th.table.get(key)? {
                Some((Tag::Put, v)) => return Ok(Some(v)),
                Some((Tag::Delete, _)) => return Ok(None),
                None => {}
            }
        }
        Ok(None)
    }

    /// Shared scan machinery: accumulate oldest source to newest (L1,
    /// L0, frozen memtables, active memtable) so newer entries shadow
    /// older ones, over one immutable snapshot.
    fn scan_impl(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        keep: &dyn Fn(&[u8]) -> bool,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        DbStats::bump(&self.stats.scans);
        let ver = self.snapshot();
        let op = self.opts.merge_operator.clone();

        let mut acc: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for th in ver.l1.iter().chain(ver.l0.iter()) {
            for entry in th.table.iter_from(start) {
                let (tag, k, v) = entry?;
                if !keep(&k) {
                    break;
                }
                match tag {
                    Tag::Put => acc.insert(k, Some(v)),
                    Tag::Delete => acc.insert(k, None),
                };
            }
        }
        let mems: Vec<SharedMem> = ver
            .imm
            .iter()
            .map(|i| i.mem.clone())
            .chain(std::iter::once(ver.mem.clone()))
            .collect();
        for shared in &mems {
            let mem = shared.read();
            for (k, v) in mem.range(start, end) {
                if !keep(k) {
                    break;
                }
                match v {
                    Value::Put(val) => {
                        acc.insert(k.to_vec(), Some(val.clone()));
                    }
                    Value::Delete => {
                        acc.insert(k.to_vec(), None);
                    }
                    Value::Merge(ops) => {
                        let base = acc.get(k).cloned().flatten();
                        let op = op.as_ref().ok_or_else(|| {
                            GkfsError::InvalidArgument("no merge operator configured".into())
                        })?;
                        acc.insert(k.to_vec(), Some(op.full_merge(k, base.as_deref(), ops)));
                    }
                }
            }
        }
        Ok(acc
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// L0 backpressure, applied before any write lock is taken: slow
    /// writers down as L0 grows, stop them at the stall threshold
    /// until the background compactor catches up.
    fn write_pressure(&self) -> Result<()> {
        let l0 = self.snapshot().l0.len();
        if l0 >= self.opts.l0_stall_threshold {
            DbStats::bump(&self.stats.stalls);
            let start = Instant::now();
            loop {
                self.request_compaction();
                if self.bg_stopped() {
                    self.compact_once()?;
                    break;
                }
                self.check_bg_error()?;
                {
                    let mut w = self.work.lock();
                    if !w.stop {
                        w.wait_for(&self.done_cv, Duration::from_millis(10));
                    }
                }
                if self.snapshot().l0.len() < self.opts.l0_stall_threshold {
                    break;
                }
            }
            self.stats
                .stall_micros
                .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        } else if l0 >= self.opts.l0_slowdown_threshold {
            DbStats::bump(&self.stats.slowdowns);
            self.request_compaction();
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Swap the active memtable for a fresh one, freezing the old one
    /// onto the immutable list for the background flusher. Writers
    /// block only for this pointer swap — never for SSTable I/O.
    fn rotate(&self, force: bool) -> Result<()> {
        // Backpressure: bounded frozen-memtable backlog.
        let mut stall_start: Option<Instant> = None;
        loop {
            if self.version.read().imm.len() < self.opts.max_imm_memtables {
                break;
            }
            if self.bg_stopped() {
                self.drain_imms_inline()?;
                break;
            }
            self.check_bg_error()?;
            if stall_start.is_none() {
                stall_start = Some(Instant::now());
                DbStats::bump(&self.stats.stalls);
            }
            let mut w = self.work.lock();
            if !w.stop {
                self.work_cv.notify_all(); // flusher may be idle-waiting
                w.wait_for(&self.done_cv, Duration::from_millis(10));
            }
        }
        if let Some(t) = stall_start {
            self.stats
                .stall_micros
                .fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
        }

        {
            let mut ver = self.version.write();
            let cur = Arc::clone(&*ver);
            {
                let mem = cur.mem.read();
                if mem.is_empty() || (!force && mem.approx_bytes() < self.opts.memtable_bytes) {
                    return Ok(()); // raced with another rotator
                }
            }
            // Seal the WAL segment in lock-step: it now holds exactly
            // this memtable's records (plus older, already-flushed
            // segments' worth of nothing — those were dropped).
            let (segment, max_seq) = if self.opts.wal {
                self.gc.seal_and_rotate(self.store.as_ref())?
            } else {
                (0, 0)
            };
            let mut imms = cur.imm.clone();
            // Freeze: demote the memtable's rank so a reader holding
            // the new active table (KV_MEMTABLE) may still consult it.
            cur.mem.demote(rank::KV_MEMTABLE_FROZEN);
            imms.push(Arc::new(ImmMem {
                mem: cur.mem.clone(),
                wal_segment: segment,
                max_seq,
            }));
            *ver = Arc::new(Version {
                mem: Arc::new(OrderedRwLock::new(rank::KV_MEMTABLE, MemTable::new())),
                imm: imms,
                l0: cur.l0.clone(),
                l1: cur.l1.clone(),
            });
        }
        {
            let w = self.work.lock();
            if !w.stop {
                self.work_cv.notify_all();
            }
        }
        if self.bg_stopped() {
            // Background threads are gone: flush inline instead.
            self.drain_imms_inline()?;
        }
        Ok(())
    }

    /// Build the oldest immutable memtable's SSTable and install it in
    /// L0. All I/O happens outside the version lock; the write lock is
    /// held only for the pointer swap that atomically retires the imm
    /// and publishes its table.
    fn flush_imm(&self, imm: &Arc<ImmMem>) -> Result<()> {
        let base = self.snapshot();
        let mut builder;
        {
            let mem = imm.mem.read();
            builder = TableBuilder::new(mem.len());
            for (k, v) in mem.iter() {
                match v {
                    Value::Put(val) => builder.add(Tag::Put, k, val),
                    Value::Delete => builder.add(Tag::Delete, k, b""),
                    Value::Merge(ops) => {
                        // Resolve against the table levels so tables
                        // never contain merge records. The FIFO flusher
                        // guarantees every source older than this
                        // memtable is already in `base`'s L0/L1.
                        let b = self.get_from_tables(&base, k)?;
                        let op = self.merge_operator()?;
                        builder.add(Tag::Put, k, &op.full_merge(k, b.as_deref(), ops));
                    }
                }
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let blob = builder.finish();
        self.store.put_blob(&table_name(id), &blob)?;
        let table = Table::open(Arc::new(blob))?;
        let handle = Arc::new(TableHandle { id, table });

        let mguard = self.manifest_lock.lock();
        let install = {
            let mut ver = self.version.write();
            let cur = Arc::clone(&*ver);
            if cur.imm.iter().any(|i| Arc::ptr_eq(i, imm)) {
                let imms: Vec<Arc<ImmMem>> = cur
                    .imm
                    .iter()
                    .filter(|i| !Arc::ptr_eq(i, imm))
                    .cloned()
                    .collect();
                let mut l0 = cur.l0.clone();
                l0.push(handle);
                let l0_ids: Vec<u64> = l0.iter().map(|t| t.id).collect();
                let l1_ids: Vec<u64> = cur.l1.iter().map(|t| t.id).collect();
                *ver = Arc::new(Version {
                    mem: cur.mem.clone(),
                    imm: imms,
                    l0,
                    l1: cur.l1.clone(),
                });
                Some((l0_ids, l1_ids))
            } else {
                None
            }
        };
        match install {
            Some((l0_ids, l1_ids)) => {
                DbStats::bump(&self.stats.flushes);
                self.flushed_seq.fetch_max(imm.max_seq, Ordering::SeqCst);
                self.write_manifest(&l0_ids, &l1_ids)?;
                drop(mguard);
                if self.opts.wal {
                    // The segment's records are all in the table now.
                    self.store.drop_logs_through(imm.wal_segment)?;
                }
                Ok(())
            }
            None => {
                // Someone else (the inline shutdown drain) flushed this
                // imm while we were building: discard the duplicate.
                drop(mguard);
                self.store.delete_blob(&table_name(id))?;
                Ok(())
            }
        }
    }

    /// One full L0+L1 → L1 compaction. `compaction_lock` serializes
    /// compactions; the version write lock is held only for the final
    /// pointer swap, so foreground traffic continues throughout.
    fn compact_once(&self) -> Result<()> {
        let _c = self.compaction_lock.lock();
        let base = self.snapshot();
        if base.l0.is_empty() && base.l1.len() <= 1 {
            return Ok(());
        }
        DbStats::bump(&self.stats.compactions);

        // Newest-wins accumulation, oldest sources first.
        let mut acc: BTreeMap<Vec<u8>, (Tag, Vec<u8>)> = BTreeMap::new();
        for th in base.l1.iter().chain(base.l0.iter()) {
            for entry in th.table.iter() {
                let (tag, k, v) = entry?;
                acc.insert(k, (tag, v));
            }
        }

        // Emit live entries into size-bounded output tables. This is a
        // *full* compaction over a snapshot of both levels, so
        // tombstones drop out: anything newer lives in memtables or in
        // tables flushed after `base` was taken, and those are kept by
        // the reconciliation below.
        const TARGET_TABLE_BYTES: usize = 8 * 1024 * 1024;
        let mut new_l1: Vec<Arc<TableHandle>> = Vec::new();
        let mut builder = TableBuilder::new(acc.len());
        let mut bytes = 0usize;
        let mut live = 0usize;
        for (k, (tag, v)) in &acc {
            if *tag == Tag::Delete {
                continue; // full compaction: tombstones drop out
            }
            builder.add(Tag::Put, k, v);
            bytes += k.len() + v.len();
            live += 1;
            if bytes >= TARGET_TABLE_BYTES {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let blob =
                    std::mem::replace(&mut builder, TableBuilder::new(acc.len() - live)).finish();
                self.store.put_blob(&table_name(id), &blob)?;
                new_l1.push(Arc::new(TableHandle {
                    id,
                    table: Table::open(Arc::new(blob))?,
                }));
                bytes = 0;
            }
        }
        if !builder.is_empty() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let blob = builder.finish();
            self.store.put_blob(&table_name(id), &blob)?;
            new_l1.push(Arc::new(TableHandle {
                id,
                table: Table::open(Arc::new(blob))?,
            }));
        }

        let input_ids: std::collections::HashSet<u64> =
            base.l0.iter().chain(base.l1.iter()).map(|t| t.id).collect();

        let mguard = self.manifest_lock.lock();
        let (l0_ids, l1_ids) = {
            let mut ver = self.version.write();
            let cur = Arc::clone(&*ver);
            // Keep L0 tables flushed while we were compacting — they
            // are strictly newer than every input.
            let l0: Vec<Arc<TableHandle>> = cur
                .l0
                .iter()
                .filter(|t| !input_ids.contains(&t.id))
                .cloned()
                .collect();
            let l0_ids: Vec<u64> = l0.iter().map(|t| t.id).collect();
            let l1_ids: Vec<u64> = new_l1.iter().map(|t| t.id).collect();
            *ver = Arc::new(Version {
                mem: cur.mem.clone(),
                imm: cur.imm.clone(),
                l0,
                l1: new_l1.clone(),
            });
            (l0_ids, l1_ids)
        };
        self.write_manifest(&l0_ids, &l1_ids)?;
        drop(mguard);
        // Safe even with old-snapshot readers alive: `Table` keeps the
        // blob bytes in memory via `Arc`.
        for id in input_ids {
            self.store.delete_blob(&table_name(id))?;
        }
        self.notify_done();
        Ok(())
    }

    fn drain_imms_inline(&self) -> Result<()> {
        // The version read guard must not outlive this statement: a
        // `while let` header temporary would keep it alive across
        // `flush_imm`, which re-acquires `version` (read, then write
        // for the install) — a same-thread read→write self-deadlock.
        // The debug-build rank checker flags exactly this shape.
        loop {
            let imm = self.version.read().imm.first().cloned();
            match imm {
                Some(imm) => self.flush_imm(&imm)?,
                None => return Ok(()),
            }
        }
    }

    fn wait_imm_drained(&self) -> Result<()> {
        loop {
            self.check_bg_error()?;
            if self.version.read().imm.is_empty() {
                return Ok(());
            }
            if self.bg_stopped() {
                return self.drain_imms_inline();
            }
            let mut w = self.work.lock();
            if !w.stop && !self.version.read().imm.is_empty() {
                self.work_cv.notify_all();
                w.wait_for(&self.done_cv, Duration::from_millis(50));
            }
        }
    }

    /// Write the manifest: `flushed_seq` watermark + table ids per
    /// level. Callers hold `manifest_lock`, so watermark and table
    /// list are mutually consistent.
    fn write_manifest(&self, l0: &[u64], l1: &[u64]) -> Result<()> {
        let mut e = Encoder::new();
        e.u64(self.flushed_seq.load(Ordering::SeqCst));
        e.u32(l0.len() as u32);
        for id in l0 {
            e.u64(*id);
        }
        e.u32(l1.len() as u32);
        for id in l1 {
            e.u64(*id);
        }
        self.store.put_blob(MANIFEST, e.as_slice())
    }
}

/// Background flush thread: retire frozen memtables oldest-first.
fn flusher_loop(inner: &DbInner) {
    loop {
        let (stop, drain) = {
            let w = inner.work.lock();
            (w.stop, w.drain)
        };
        let imm = inner.version.read().imm.first().cloned();
        match imm {
            Some(imm) => {
                if stop && !drain {
                    return; // crash-style stop: the WAL covers the rest
                }
                match inner.flush_imm(&imm) {
                    Ok(()) => {
                        inner.notify_done();
                        if inner.version.read().l0.len() >= inner.opts.l0_compaction_trigger {
                            inner.request_compaction();
                        }
                    }
                    Err(e) => {
                        inner.set_bg_error(e);
                        inner.notify_done();
                        if stop {
                            return; // don't spin during shutdown
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            None => {
                let mut w = inner.work.lock();
                if w.stop {
                    return;
                }
                // Re-check under the lock: rotation notifies while
                // holding it, so a new imm cannot slip past us.
                if inner.version.read().imm.is_empty() {
                    w.wait_for(&inner.work_cv, Duration::from_millis(100));
                }
            }
        }
    }
}

/// Background compaction thread: runs when requested (L0 trigger or
/// explicit) and keeps L0 from growing unboundedly.
fn compactor_loop(inner: &DbInner) {
    loop {
        let requested = {
            let mut w = inner.work.lock();
            if w.stop {
                return;
            }
            if !w.compact_requested {
                w.wait_for(&inner.work_cv, Duration::from_millis(100));
            }
            if w.stop {
                return;
            }
            std::mem::take(&mut w.compact_requested)
        };
        let need =
            requested || inner.version.read().l0.len() >= inner.opts.l0_compaction_trigger;
        if need {
            if let Err(e) = inner.compact_once() {
                inner.set_bg_error(e);
                inner.notify_done();
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn table_name(id: u64) -> String {
    format!("sst-{id:012}.sst")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{Add64MergeOperator, Max64MergeOperator};

    fn small_opts() -> DbOptions {
        DbOptions {
            memtable_bytes: 4096, // force frequent rotations in tests
            l0_compaction_trigger: 3,
            merge_operator: Some(Arc::new(Max64MergeOperator)),
            ..DbOptions::default()
        }
    }

    #[test]
    fn put_get_delete_through_levels() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..500 {
            db.put(format!("/k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        let (_, imm, l0, l1) = db.level_shape();
        assert_eq!(imm, 0, "flush() must drain frozen memtables");
        assert!(l0 + l1 > 0, "expected flushes to have happened");
        for i in (0..500).step_by(17) {
            assert_eq!(
                db.get(format!("/k{i:04}").as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
        db.delete(b"/k0000").unwrap();
        assert!(db.get(b"/k0000").unwrap().is_none());
        // Deleted key stays gone across flush + compaction.
        db.compact().unwrap();
        assert!(db.get(b"/k0000").unwrap().is_none());
        assert_eq!(db.len().unwrap(), 499);
    }

    #[test]
    fn overwrite_latest_wins_across_levels() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/x", b"old").unwrap();
        db.flush().unwrap();
        db.put(b"/x", b"new").unwrap();
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"new"[..]));
        db.flush().unwrap();
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"new"[..]));
        db.compact().unwrap();
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn tombstone_shadows_older_table() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/gone", b"v").unwrap();
        db.flush().unwrap();
        db.delete(b"/gone").unwrap();
        db.flush().unwrap();
        assert!(db.get(b"/gone").unwrap().is_none());
        let scan = db.scan_prefix(b"/gone").unwrap();
        assert!(scan.is_empty());
    }

    #[test]
    fn merge_max_across_flushes() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/f:size", &100u64.to_le_bytes()).unwrap();
        db.flush().unwrap();
        // Base now lives in a table; merges must stack and resolve.
        db.merge(b"/f:size", &50u64.to_le_bytes()).unwrap();
        db.merge(b"/f:size", &300u64.to_le_bytes()).unwrap();
        let v = db.get(b"/f:size").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 300);
        db.flush().unwrap();
        let v = db.get(b"/f:size").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 300);
    }

    #[test]
    fn merge_without_operator_errors() {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        assert!(matches!(
            db.merge(b"/k", b"x"),
            Err(GkfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn scan_prefix_merges_all_sources() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/dir/a", b"1").unwrap();
        db.flush().unwrap();
        db.put(b"/dir/b", b"2").unwrap();
        db.flush().unwrap();
        db.put(b"/dir/c", b"3").unwrap(); // stays in memtable
        db.put(b"/other/x", b"9").unwrap();
        db.delete(b"/dir/a").unwrap(); // tombstone in memtable
        let entries = db.scan_prefix(b"/dir/").unwrap();
        let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"/dir/b"[..], b"/dir/c"]);
    }

    #[test]
    fn scan_prefix_resolves_memtable_merges() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/f", &10u64.to_le_bytes()).unwrap();
        db.flush().unwrap();
        db.merge(b"/f", &99u64.to_le_bytes()).unwrap();
        let entries = db.scan_prefix(b"/f").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(u64::from_le_bytes(entries[0].1[..].try_into().unwrap()), 99);
    }

    #[test]
    fn compaction_reduces_table_count_and_preserves_data() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..2000 {
            db.put(format!("/k{i:05}").as_bytes(), b"payload-payload")
                .unwrap();
        }
        db.compact().unwrap();
        let (mem, imm, l0, l1) = db.level_shape();
        assert_eq!(mem, 0);
        assert_eq!(imm, 0);
        assert_eq!(l0, 0);
        assert!(l1 >= 1);
        assert_eq!(db.len().unwrap(), 2000);
        assert_eq!(
            db.get(b"/k01234").unwrap().as_deref(),
            Some(&b"payload-payload"[..])
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let store = Arc::new(MemBlobStore::new());
        let mut opts = small_opts();
        opts.wal = true;
        {
            let db = Db::open(store.clone(), opts.clone()).unwrap();
            for i in 0..100 {
                db.put(format!("/p{i}").as_bytes(), b"v").unwrap();
            }
            db.merge(b"/p0:size", &7u64.to_le_bytes()).unwrap();
            // No explicit flush: some state is only in the WAL.
        }
        {
            let db = Db::open(store, opts).unwrap();
            assert_eq!(db.get(b"/p42").unwrap().as_deref(), Some(&b"v"[..]));
            let v = db.get(b"/p0:size").unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 7);
        }
    }

    #[test]
    fn persistence_on_disk() {
        let dir = std::env::temp_dir().join(format!("gkfs-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = small_opts();
        opts.wal = true;
        {
            let db = Db::open_dir(&dir, opts.clone()).unwrap();
            for i in 0..500 {
                db.put(format!("/d{i:04}").as_bytes(), b"disk").unwrap();
            }
        }
        {
            let db = Db::open_dir(&dir, opts).unwrap();
            assert_eq!(db.len().unwrap(), 500);
            assert_eq!(db.get(b"/d0123").unwrap().as_deref(), Some(&b"disk"[..]));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = Db::open_memory(DbOptions {
            memtable_bytes: 16 * 1024,
            l0_compaction_trigger: 3,
            merge_operator: Some(Arc::new(Add64MergeOperator)),
            ..DbOptions::default()
        })
        .unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..1000 {
                        db.put(format!("/t{t}/k{i}").as_bytes(), b"v").unwrap();
                        db.merge(b"/counter", &1u64.to_le_bytes()).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..1000 {
                        let _ = db.get(format!("/t0/k{i}").as_bytes()).unwrap();
                    }
                });
            }
        });
        let v = db.get(b"/counter").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 4000);
        for t in 0..4 {
            assert_eq!(
                db.scan_prefix(format!("/t{t}/").as_bytes()).unwrap().len(),
                1000
            );
        }
    }

    #[test]
    fn write_batch_is_atomic_to_readers() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/acct/a", &100u64.to_le_bytes()).unwrap();
        db.put(b"/acct/b", &0u64.to_le_bytes()).unwrap();
        let read_sum = |db: &Db| -> u64 {
            db.scan_prefix(b"/acct/")
                .unwrap()
                .iter()
                .map(|(_, v)| u64::from_le_bytes(v[..].try_into().unwrap()))
                .sum()
        };
        // Transfers between the two keys via batches; concurrent
        // readers must always observe the invariant sum.
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..500u64 {
                    let mut b = WriteBatch::new();
                    b.put(b"/acct/a", &(100 - (i % 100)).to_le_bytes());
                    b.put(b"/acct/b", &(i % 100).to_le_bytes());
                    db.write(b).unwrap();
                }
            });
            for _ in 0..200 {
                assert_eq!(read_sum(&db), 100, "readers must never see a torn batch");
            }
            writer.join().unwrap();
        });
    }

    #[test]
    fn write_batch_mixed_ops_and_recovery() {
        let store = Arc::new(MemBlobStore::new());
        let mut opts = small_opts();
        opts.wal = true;
        {
            let db = Db::open(store.clone(), opts.clone()).unwrap();
            db.put(b"/old", b"x").unwrap();
            let mut b = WriteBatch::new();
            b.put(b"/new", b"y")
                .delete(b"/old")
                .merge(b"/size", &42u64.to_le_bytes());
            assert_eq!(b.len(), 3);
            db.write(b).unwrap();
            // No flush: recovery comes purely from the WAL batch record.
        }
        let db = Db::open(store, opts).unwrap();
        assert_eq!(db.get(b"/new").unwrap().as_deref(), Some(&b"y"[..]));
        assert!(db.get(b"/old").unwrap().is_none());
        let v = db.get(b"/size").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 42);
    }

    #[test]
    fn empty_batch_is_noop() {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.stats().puts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn scan_range_bounds() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..50 {
            db.put(format!("/r/{i:02}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        db.delete(b"/r/25").unwrap(); // tombstone inside the range
        let hits = db.scan_range(b"/r/20", Some(b"/r/30")).unwrap();
        let keys: Vec<String> = hits
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys.len(), 9, "20..30 minus the deleted 25: {keys:?}");
        assert_eq!(keys.first().unwrap(), "/r/20");
        assert_eq!(keys.last().unwrap(), "/r/29");
        // Unbounded end.
        assert_eq!(db.scan_range(b"/r/45", None).unwrap().len(), 5);
        // Empty range.
        assert!(db.scan_range(b"/zzz", None).unwrap().is_empty());
    }

    #[test]
    fn put_if_absent_is_exclusive() {
        let db = Db::open_memory(small_opts()).unwrap();
        assert!(db.put_if_absent(b"/x", b"first").unwrap());
        assert!(!db.put_if_absent(b"/x", b"second").unwrap());
        assert_eq!(db.get(b"/x").unwrap().as_deref(), Some(&b"first"[..]));
        // After delete, the key is insertable again (tombstone case).
        db.delete(b"/x").unwrap();
        assert!(db.put_if_absent(b"/x", b"third").unwrap());
        // Key present only in a flushed table still counts as existing.
        db.flush().unwrap();
        assert!(!db.put_if_absent(b"/x", b"fourth").unwrap());
    }

    #[test]
    fn put_if_absent_races_one_winner() {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let db = &db;
                    s.spawn(move || db.put_if_absent(b"/race", format!("w{i}").as_bytes()).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap() as usize)
                .sum()
        });
        assert_eq!(winners, 1, "exactly one creator may win");
    }

    #[test]
    fn stats_summary_mentions_activity() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..100 {
            db.put(format!("/s{i}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        let _ = db.get(b"/s5").unwrap();
        let dump = db.stats_summary();
        assert!(dump.contains("puts=100"), "{dump}");
        assert!(dump.contains("gets=1"), "{dump}");
        assert!(dump.contains("flushes="), "{dump}");
        assert!(dump.contains("L0="), "{dump}");
        assert!(dump.contains("stalls="), "{dump}");
        assert!(dump.contains("group_commit"), "{dump}");
    }

    #[test]
    fn bloom_filters_skip_absent_keys() {
        let db = Db::open_memory(small_opts()).unwrap();
        for i in 0..200 {
            db.put(format!("/present/{i}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        for i in 0..200 {
            assert!(db.get(format!("/absent/{i}").as_bytes()).unwrap().is_none());
        }
        assert!(
            db.stats().bloom_skips.load(Ordering::Relaxed) > 150,
            "bloom filters should have skipped most absent lookups"
        );
    }

    /// Blob store wrapper that slows down chosen operations and counts
    /// log calls — lets tests hold a background flush "on disk" while
    /// asserting foreground behavior.
    struct SlowStore {
        inner: MemBlobStore,
        table_delay: Duration,
        log_delay: Duration,
        syncs: AtomicU64,
    }

    impl SlowStore {
        fn new(table_delay: Duration, log_delay: Duration) -> SlowStore {
            SlowStore {
                inner: MemBlobStore::new(),
                table_delay,
                log_delay,
                syncs: AtomicU64::new(0),
            }
        }
    }

    impl BlobStore for SlowStore {
        fn put_blob(&self, name: &str, data: &[u8]) -> Result<()> {
            if name.starts_with("sst-") && !self.table_delay.is_zero() {
                std::thread::sleep(self.table_delay);
            }
            self.inner.put_blob(name, data)
        }
        fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>> {
            self.inner.get_blob(name)
        }
        fn delete_blob(&self, name: &str) -> Result<()> {
            self.inner.delete_blob(name)
        }
        fn append_log(&self, data: &[u8]) -> Result<()> {
            if !self.log_delay.is_zero() {
                std::thread::sleep(self.log_delay);
            }
            self.inner.append_log(data)
        }
        fn sync_log(&self) -> Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            self.inner.sync_log()
        }
        fn rotate_log(&self) -> Result<u64> {
            self.inner.rotate_log()
        }
        fn read_logs(&self) -> Result<Vec<u8>> {
            self.inner.read_logs()
        }
        fn drop_logs_through(&self, id: u64) -> Result<()> {
            self.inner.drop_logs_through(id)
        }
        fn reset_log(&self) -> Result<()> {
            self.inner.reset_log()
        }
        fn list_blobs(&self) -> Result<Vec<String>> {
            self.inner.list_blobs()
        }
    }

    /// The tentpole property: an SSTable build in flight on the
    /// background thread must not block foreground writers or readers.
    #[test]
    fn puts_complete_while_flush_in_flight() {
        let store = Arc::new(SlowStore::new(Duration::from_millis(800), Duration::ZERO));
        let db = Db::open(
            store,
            DbOptions {
                memtable_bytes: 2048,
                l0_compaction_trigger: 100,
                l0_slowdown_threshold: 100,
                l0_stall_threshold: 100,
                max_imm_memtables: 8,
                ..DbOptions::default()
            },
        )
        .unwrap();
        // Cross the budget: rotation freezes the memtable and the
        // flusher gets stuck in the slow put_blob.
        for i in 0..40 {
            db.put(format!("/pre/{i:03}").as_bytes(), &[1u8; 64]).unwrap();
        }
        let t = Instant::now();
        for i in 0..20 {
            db.put(format!("/during/{i:02}").as_bytes(), b"v").unwrap();
        }
        assert!(
            t.elapsed() < Duration::from_millis(400),
            "writers must not block for the SSTable build ({:?})",
            t.elapsed()
        );
        // Frozen memtables stay readable until their tables land.
        assert_eq!(
            db.get(b"/pre/005").unwrap().as_deref(),
            Some(&[1u8; 64][..])
        );
        assert!(
            db.stats().imm_hits.load(Ordering::Relaxed) > 0,
            "read should have been served by a frozen memtable"
        );
        db.flush().unwrap();
        for i in 0..40 {
            assert!(db.get(format!("/pre/{i:03}").as_bytes()).unwrap().is_some());
        }
        for i in 0..20 {
            assert!(db.get(format!("/during/{i:02}").as_bytes()).unwrap().is_some());
        }
    }

    /// Backpressure engages when background work falls behind, and the
    /// store stays correct through stall/resume cycles.
    #[test]
    fn stall_when_backlogged_then_resumes() {
        let store = Arc::new(SlowStore::new(Duration::from_millis(5), Duration::ZERO));
        let db = Db::open(
            store,
            DbOptions {
                memtable_bytes: 512,
                l0_compaction_trigger: 2,
                l0_slowdown_threshold: 2,
                l0_stall_threshold: 3,
                max_imm_memtables: 2,
                ..DbOptions::default()
            },
        )
        .unwrap();
        for i in 0..300 {
            db.put(format!("/s/{i:04}").as_bytes(), &[7u8; 32]).unwrap();
        }
        db.flush().unwrap();
        let s = db.stats();
        assert!(
            s.stalls.load(Ordering::Relaxed) + s.slowdowns.load(Ordering::Relaxed) > 0,
            "tiny memtable + slow store must trip backpressure"
        );
        assert_eq!(db.len().unwrap(), 300);
        for i in (0..300).step_by(37) {
            assert_eq!(
                db.get(format!("/s/{i:04}").as_bytes()).unwrap().as_deref(),
                Some(&[7u8; 32][..])
            );
        }
    }

    /// Clean shutdown drains every frozen memtable into tables — with
    /// the WAL off, reopen must still see everything.
    #[test]
    fn shutdown_drains_background_work() {
        let store = Arc::new(SlowStore::new(Duration::from_millis(50), Duration::ZERO));
        let db = Db::open(
            store.clone(),
            DbOptions {
                memtable_bytes: 512,
                l0_compaction_trigger: 100,
                l0_slowdown_threshold: 100,
                l0_stall_threshold: 100,
                max_imm_memtables: 8,
                ..DbOptions::default()
            },
        )
        .unwrap();
        for i in 0..60 {
            db.put(format!("/sd/{i:02}").as_bytes(), b"value").unwrap();
        }
        db.shutdown().unwrap();
        drop(db);
        let db = Db::open(store, DbOptions::default()).unwrap();
        assert_eq!(db.len().unwrap(), 60);
        for i in 0..60 {
            assert_eq!(
                db.get(format!("/sd/{i:02}").as_bytes()).unwrap().as_deref(),
                Some(&b"value"[..])
            );
        }
    }

    /// Writes after `shutdown()` fall back to inline flush: rotation
    /// drains the frozen memtable on the caller's thread. This is the
    /// path that re-enters the version lock from under its own read
    /// guard when written as a `while let` — the regression the ranked
    /// locks (and gkfs-lint's temporary-scope model) exist to catch.
    #[test]
    fn writes_after_shutdown_flush_inline() {
        let db = Db::open_memory(DbOptions {
            memtable_bytes: 256,
            l0_compaction_trigger: 100,
            ..small_opts()
        })
        .unwrap();
        db.shutdown().unwrap();
        for i in 0..40 {
            db.put(format!("/post/{i:02}").as_bytes(), &[i as u8; 32]).unwrap();
        }
        let (_, imm, _, _) = db.level_shape();
        assert_eq!(imm, 0, "inline rotation must drain frozen memtables");
        for i in 0..40 {
            assert_eq!(
                db.get(format!("/post/{i:02}").as_bytes()).unwrap().as_deref(),
                Some(&[i as u8; 32][..])
            );
        }
    }

    /// Dropping the handle without shutdown is a crash: the WAL must
    /// cover every acknowledged write, including those sitting in
    /// frozen memtables whose flush never finished.
    #[test]
    fn drop_without_shutdown_recovers_from_wal() {
        let store = Arc::new(SlowStore::new(Duration::from_millis(20), Duration::ZERO));
        let opts = DbOptions {
            memtable_bytes: 512,
            l0_compaction_trigger: 4,
            wal: true,
            ..DbOptions::default()
        };
        {
            let db = Db::open(store.clone(), opts.clone()).unwrap();
            for i in 0..200 {
                db.put(format!("/c/{i:04}").as_bytes(), b"acked").unwrap();
            }
            // Drop mid-background-flush: no drain.
        }
        let db = Db::open(store, opts).unwrap();
        assert_eq!(db.len().unwrap(), 200);
        for i in (0..200).step_by(13) {
            assert_eq!(
                db.get(format!("/c/{i:04}").as_bytes()).unwrap().as_deref(),
                Some(&b"acked"[..])
            );
        }
    }

    /// The `flushed_seq` watermark: records already resolved into an
    /// SSTable must not replay even when their WAL segments survive (a
    /// crash can land between manifest install and segment drop).
    #[test]
    fn replay_skips_flushed_records() {
        struct NoGcStore(MemBlobStore);
        impl BlobStore for NoGcStore {
            fn put_blob(&self, n: &str, d: &[u8]) -> Result<()> {
                self.0.put_blob(n, d)
            }
            fn get_blob(&self, n: &str) -> Result<Arc<Vec<u8>>> {
                self.0.get_blob(n)
            }
            fn delete_blob(&self, n: &str) -> Result<()> {
                self.0.delete_blob(n)
            }
            fn append_log(&self, d: &[u8]) -> Result<()> {
                self.0.append_log(d)
            }
            fn sync_log(&self) -> Result<()> {
                self.0.sync_log()
            }
            fn rotate_log(&self) -> Result<u64> {
                self.0.rotate_log()
            }
            fn read_logs(&self) -> Result<Vec<u8>> {
                self.0.read_logs()
            }
            fn drop_logs_through(&self, _id: u64) -> Result<()> {
                Ok(()) // simulate the crash window: segments never drop
            }
            fn reset_log(&self) -> Result<()> {
                self.0.reset_log()
            }
            fn list_blobs(&self) -> Result<Vec<String>> {
                self.0.list_blobs()
            }
        }
        let store = Arc::new(NoGcStore(MemBlobStore::new()));
        let opts = DbOptions {
            wal: true,
            merge_operator: Some(Arc::new(Add64MergeOperator)),
            ..DbOptions::default()
        };
        {
            let db = Db::open(store.clone(), opts.clone()).unwrap();
            for _ in 0..10 {
                db.merge(b"/ctr", &1u64.to_le_bytes()).unwrap();
            }
            db.flush().unwrap(); // operands resolved into an SSTable
            for _ in 0..5 {
                db.merge(b"/ctr", &1u64.to_le_bytes()).unwrap();
            }
        }
        let db = Db::open(store, opts).unwrap();
        let v = db.get(b"/ctr").unwrap().unwrap();
        assert_eq!(
            u64::from_le_bytes(v[..].try_into().unwrap()),
            15,
            "flushed (non-idempotent) merges must not replay twice"
        );
    }

    /// Group commit: concurrent writers share appends — the mean batch
    /// size must exceed one record per append.
    #[test]
    fn group_commit_shares_appends() {
        let store = Arc::new(SlowStore::new(Duration::ZERO, Duration::from_millis(3)));
        let opts = DbOptions {
            wal: true,
            ..DbOptions::default()
        };
        let db = Db::open(store.clone(), opts.clone()).unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..50 {
                        db.put(format!("/g/t{t}/{i:02}").as_bytes(), b"v").unwrap();
                    }
                });
            }
        });
        let commits = db.stats().group_commits.load(Ordering::Relaxed);
        let records = db.stats().group_commit_records.load(Ordering::Relaxed);
        assert_eq!(records, 400, "every record must pass through a leader");
        assert!(
            commits < 400,
            "8 writers against a slow log must share appends (got {commits} appends)"
        );
        drop(db);
        let db = Db::open(store, opts).unwrap();
        assert_eq!(db.len().unwrap(), 400, "group commit must lose nothing");
    }

    /// `sync` writers share fsyncs, and the per-batch override works
    /// on a non-sync database.
    #[test]
    fn sync_commits_share_fsyncs() {
        let store = Arc::new(SlowStore::new(Duration::ZERO, Duration::from_millis(1)));
        let db = Db::open(
            store.clone(),
            DbOptions {
                wal: true,
                sync: true,
                ..DbOptions::default()
            },
        )
        .unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..25 {
                        db.put(format!("/y/t{t}/{i:02}").as_bytes(), b"v").unwrap();
                    }
                });
            }
        });
        let syncs = store.syncs.load(Ordering::Relaxed);
        assert!(syncs >= 1, "sync mode must fsync");
        assert!(
            syncs < 200,
            "concurrent sync writers must share fsyncs (got {syncs})"
        );

        // Per-batch override on a non-sync database.
        let store2 = Arc::new(SlowStore::new(Duration::ZERO, Duration::ZERO));
        let db2 = Db::open(
            store2.clone(),
            DbOptions {
                wal: true,
                ..DbOptions::default()
            },
        )
        .unwrap();
        db2.put(b"/nosync", b"v").unwrap();
        assert_eq!(store2.syncs.load(Ordering::Relaxed), 0);
        let mut b = WriteBatch::new();
        b.put(b"/synced", b"v").sync(true);
        db2.write(b).unwrap();
        assert!(store2.syncs.load(Ordering::Relaxed) >= 1);
    }

    /// `contains` resolves existence through every level, including
    /// tombstones, without a configured merge operator being needed
    /// for plain keys.
    #[test]
    fn contains_tracks_existence_through_levels() {
        let db = Db::open_memory(small_opts()).unwrap();
        db.put(b"/big", &[9u8; 2000]).unwrap();
        assert!(db.contains(b"/big").unwrap());
        db.flush().unwrap();
        assert!(db.contains(b"/big").unwrap(), "existence from table tags");
        assert!(!db.contains(b"/absent").unwrap());
        db.delete(b"/big").unwrap();
        assert!(!db.contains(b"/big").unwrap(), "memtable tombstone wins");
        db.flush().unwrap();
        assert!(!db.contains(b"/big").unwrap(), "table tombstone wins");
        // A key that only exists as stacked merge operands still exists.
        db.merge(b"/m", &3u64.to_le_bytes()).unwrap();
        assert!(db.contains(b"/m").unwrap());
    }
}
