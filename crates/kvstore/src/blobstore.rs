//! Storage abstraction under the LSM engine.
//!
//! The engine persists three kinds of objects: immutable SSTable blobs
//! (written once, then only read), a segmented append-only write-ahead
//! log, and a small MANIFEST blob naming the live tables. All three go
//! through [`BlobStore`], with two implementations:
//!
//! * [`MemBlobStore`] — everything in process memory. Used by tests
//!   and by the in-process cluster, and the natural choice for GekkoFS'
//!   ephemeral deployments where the KV store's contents die with the
//!   job anyway.
//! * [`FsBlobStore`] — one file per blob in a directory on the
//!   node-local file system (the paper's XFS-formatted SSD).
//!
//! The log is a sequence of numbered segments. Appends go to the
//! *active* segment; [`BlobStore::rotate_log`] seals it and opens the
//! next one. The engine rotates in lock-step with memtable rotation so
//! each sealed segment holds exactly one immutable memtable's records,
//! and drops segments ([`BlobStore::drop_logs_through`]) once that
//! memtable's SSTable is in the manifest — the log never needs a
//! wholesale reset while older memtables are still in flight.

use gkfs_common::lock::{rank, OrderedMutex, OrderedRwLock};
use gkfs_common::Result;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Backend for the engine's persistent objects.
pub trait BlobStore: Send + Sync {
    /// Write an immutable blob (SSTable, MANIFEST). Overwrites any
    /// existing blob of the same name atomically.
    fn put_blob(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Read a whole blob. Returns `NotFound` if absent.
    fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>>;

    /// Delete a blob. Deleting a missing blob is not an error (it can
    /// happen after a crash between manifest write and table delete).
    fn delete_blob(&self, name: &str) -> Result<()>;

    /// Append bytes to the active write-ahead log segment.
    fn append_log(&self, data: &[u8]) -> Result<()>;

    /// Durably sync the active log segment (group commit's shared
    /// `fsync`). A no-op for memory-backed stores.
    fn sync_log(&self) -> Result<()>;

    /// Seal the active log segment and open the next one. Returns the
    /// sealed segment's id. The sealed segment is synced first so its
    /// contents are durable before the engine ties an immutable
    /// memtable's fate to it.
    fn rotate_log(&self) -> Result<u64>;

    /// Read every live log segment, oldest first, concatenated — the
    /// recovery image. Frame boundaries never straddle segments, so
    /// concatenation replays exactly like one long log.
    fn read_logs(&self) -> Result<Vec<u8>>;

    /// Delete all *sealed* segments with id `<= id` (their memtables
    /// have been flushed and the manifest updated). The active segment
    /// is never dropped. Dropping already-dropped segments is not an
    /// error.
    fn drop_logs_through(&self, id: u64) -> Result<()>;

    /// Discard every segment and start over with a single empty active
    /// segment. Recovery tests use this to splice a truncated log back
    /// in; the engine itself never resets a live log.
    fn reset_log(&self) -> Result<()>;

    /// List blob names (for recovery sweeps / tests).
    fn list_blobs(&self) -> Result<Vec<String>>;
}

struct MemLog {
    active: u64,
    segments: BTreeMap<u64, Vec<u8>>,
}

impl Default for MemLog {
    fn default() -> MemLog {
        MemLog {
            active: 0,
            segments: BTreeMap::from([(0, Vec::new())]),
        }
    }
}

/// In-memory blob store.
pub struct MemBlobStore {
    blobs: OrderedRwLock<HashMap<String, Arc<Vec<u8>>>>,
    log: OrderedRwLock<MemLog>,
}

impl MemBlobStore {
    /// Create an empty in-memory blob store.
    pub fn new() -> MemBlobStore {
        MemBlobStore {
            blobs: OrderedRwLock::new(rank::KV_BLOB_MAP, HashMap::new()),
            log: OrderedRwLock::new(rank::KV_WAL_LOG, MemLog::default()),
        }
    }
}

impl Default for MemBlobStore {
    fn default() -> MemBlobStore {
        MemBlobStore::new()
    }
}

impl BlobStore for MemBlobStore {
    fn put_blob(&self, name: &str, data: &[u8]) -> Result<()> {
        self.blobs
            .write()
            .insert(name.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        self.blobs
            .read()
            .get(name)
            .cloned()
            .ok_or(gkfs_common::GkfsError::NotFound)
    }

    fn delete_blob(&self, name: &str) -> Result<()> {
        self.blobs.write().remove(name);
        Ok(())
    }

    fn append_log(&self, data: &[u8]) -> Result<()> {
        let mut log = self.log.write();
        let active = log.active;
        log.segments
            .get_mut(&active)
            .expect("active segment exists")
            .extend_from_slice(data);
        Ok(())
    }

    fn sync_log(&self) -> Result<()> {
        Ok(())
    }

    fn rotate_log(&self) -> Result<u64> {
        let mut log = self.log.write();
        let sealed = log.active;
        log.active = sealed + 1;
        log.segments.insert(sealed + 1, Vec::new());
        Ok(sealed)
    }

    fn read_logs(&self) -> Result<Vec<u8>> {
        let log = self.log.read();
        let mut out = Vec::new();
        for seg in log.segments.values() {
            out.extend_from_slice(seg);
        }
        Ok(out)
    }

    fn drop_logs_through(&self, id: u64) -> Result<()> {
        let mut log = self.log.write();
        let active = log.active;
        log.segments.retain(|&k, _| k > id || k == active);
        Ok(())
    }

    fn reset_log(&self) -> Result<()> {
        *self.log.write() = MemLog::default();
        Ok(())
    }

    fn list_blobs(&self) -> Result<Vec<String>> {
        Ok(self.blobs.read().keys().cloned().collect())
    }
}

fn segment_name(id: u64) -> String {
    format!("wal-{id:06}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

struct FsLog {
    active: u64,
    file: fs::File,
}

/// File-system-backed blob store: one file per blob under `dir`, plus
/// `wal-NNNNNN.log` files for the write-ahead log segments.
pub struct FsBlobStore {
    dir: PathBuf,
    // Serializes log appends; active segment handle kept open for
    // append speed.
    log: OrderedMutex<FsLog>,
}

impl FsBlobStore {
    /// Open (creating if needed) a blob store rooted at `dir`. The
    /// highest-numbered existing log segment becomes the active one.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FsBlobStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut active = 0u64;
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(id) = parse_segment_name(&name) {
                active = active.max(id);
            }
        }
        let file = Self::open_segment(&dir, active)?;
        Ok(FsBlobStore {
            dir,
            log: OrderedMutex::new(rank::KV_WAL_LOG, FsLog { active, file }),
        })
    }

    fn open_segment(dir: &std::path::Path, id: u64) -> Result<fs::File> {
        Ok(fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join(segment_name(id)))?)
    }

    fn blob_path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn segment_ids(&self) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(id) = parse_segment_name(&name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }
}

impl BlobStore for FsBlobStore {
    fn put_blob(&self, name: &str, data: &[u8]) -> Result<()> {
        // Write-then-rename for atomicity.
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.blob_path(name))?;
        Ok(())
    }

    fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        let mut f = fs::File::open(self.blob_path(name))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(Arc::new(buf))
    }

    fn delete_blob(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.blob_path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn append_log(&self, data: &[u8]) -> Result<()> {
        let mut log = self.log.lock();
        log.file.write_all(data)?;
        Ok(())
    }

    fn sync_log(&self) -> Result<()> {
        let log = self.log.lock();
        log.file.sync_data()?;
        Ok(())
    }

    fn rotate_log(&self) -> Result<u64> {
        let mut log = self.log.lock();
        // Seal durably: an immutable memtable's only copy of its
        // records lives in this segment until its SSTable lands.
        log.file.sync_data()?;
        let sealed = log.active;
        log.file = Self::open_segment(&self.dir, sealed + 1)?;
        log.active = sealed + 1;
        Ok(sealed)
    }

    fn read_logs(&self) -> Result<Vec<u8>> {
        let _log = self.log.lock();
        let mut out = Vec::new();
        for id in self.segment_ids()? {
            let mut f = fs::File::open(self.dir.join(segment_name(id)))?;
            f.read_to_end(&mut out)?;
        }
        Ok(out)
    }

    fn drop_logs_through(&self, id: u64) -> Result<()> {
        let log = self.log.lock();
        for seg in self.segment_ids()? {
            if seg <= id && seg != log.active {
                fs::remove_file(self.dir.join(segment_name(seg)))?;
            }
        }
        Ok(())
    }

    fn reset_log(&self) -> Result<()> {
        let mut log = self.log.lock();
        for seg in self.segment_ids()? {
            fs::remove_file(self.dir.join(segment_name(seg)))?;
        }
        log.file = Self::open_segment(&self.dir, 0)?;
        log.active = 0;
        Ok(())
    }

    fn list_blobs(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if parse_segment_name(&name).is_none() && !name.ends_with(".tmp") {
                out.push(name);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn BlobStore) {
        store.put_blob("t1.sst", b"table-one").unwrap();
        store.put_blob("t2.sst", b"table-two").unwrap();
        assert_eq!(&**store.get_blob("t1.sst").unwrap(), b"table-one");
        // Overwrite.
        store.put_blob("t1.sst", b"table-one-v2").unwrap();
        assert_eq!(&**store.get_blob("t1.sst").unwrap(), b"table-one-v2");
        // List.
        let mut names = store.list_blobs().unwrap();
        names.sort();
        assert_eq!(names, vec!["t1.sst", "t2.sst"]);
        // Delete (idempotent).
        store.delete_blob("t1.sst").unwrap();
        store.delete_blob("t1.sst").unwrap();
        assert!(store.get_blob("t1.sst").is_err());
        // Log: append, sync, rotate, drop sealed segments.
        store.append_log(b"aaa").unwrap();
        store.sync_log().unwrap();
        store.append_log(b"bbb").unwrap();
        assert_eq!(store.read_logs().unwrap(), b"aaabbb");
        let s0 = store.rotate_log().unwrap();
        store.append_log(b"ccc").unwrap();
        assert_eq!(store.read_logs().unwrap(), b"aaabbbccc");
        store.drop_logs_through(s0).unwrap();
        assert_eq!(store.read_logs().unwrap(), b"ccc");
        // Dropping the active segment's id is a no-op for it.
        let s1 = store.rotate_log().unwrap();
        assert!(s1 > s0);
        store.drop_logs_through(u64::MAX).unwrap();
        store.append_log(b"ddd").unwrap();
        assert_eq!(store.read_logs().unwrap(), b"ddd");
        // Reset back to a single empty active segment.
        store.reset_log().unwrap();
        assert_eq!(store.read_logs().unwrap(), b"");
        store.append_log(b"eee").unwrap();
        assert_eq!(store.read_logs().unwrap(), b"eee");
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemBlobStore::new());
    }

    #[test]
    fn fs_store_contract() {
        let dir = std::env::temp_dir().join(format!("gkfs-blob-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise(&FsBlobStore::open(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gkfs-blob-r-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FsBlobStore::open(&dir).unwrap();
            s.put_blob("keep.sst", b"persisted").unwrap();
            s.append_log(b"wal-bytes").unwrap();
            s.rotate_log().unwrap();
            s.append_log(b"more").unwrap();
        }
        {
            let s = FsBlobStore::open(&dir).unwrap();
            assert_eq!(&**s.get_blob("keep.sst").unwrap(), b"persisted");
            // Both segments survive, in order, and appends continue in
            // the highest-numbered (active) segment.
            assert_eq!(s.read_logs().unwrap(), b"wal-bytesmore");
            s.append_log(b"!").unwrap();
            assert_eq!(s.read_logs().unwrap(), b"wal-bytesmore!");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
