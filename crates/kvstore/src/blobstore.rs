//! Storage abstraction under the LSM engine.
//!
//! The engine persists three kinds of objects: immutable SSTable blobs
//! (written once, then only read), an append-only write-ahead log, and
//! a small MANIFEST blob naming the live tables. All three go through
//! [`BlobStore`], with two implementations:
//!
//! * [`MemBlobStore`] — everything in process memory. Used by tests
//!   and by the in-process cluster, and the natural choice for GekkoFS'
//!   ephemeral deployments where the KV store's contents die with the
//!   job anyway.
//! * [`FsBlobStore`] — one file per blob in a directory on the
//!   node-local file system (the paper's XFS-formatted SSD).

use gkfs_common::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Backend for the engine's persistent objects.
pub trait BlobStore: Send + Sync {
    /// Write an immutable blob (SSTable, MANIFEST). Overwrites any
    /// existing blob of the same name atomically.
    fn put_blob(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Read a whole blob. Returns `NotFound` if absent.
    fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>>;

    /// Delete a blob. Deleting a missing blob is not an error (it can
    /// happen after a crash between manifest write and table delete).
    fn delete_blob(&self, name: &str) -> Result<()>;

    /// Append bytes to the (single) write-ahead log.
    fn append_log(&self, data: &[u8]) -> Result<()>;

    /// Read the entire write-ahead log.
    fn read_log(&self) -> Result<Vec<u8>>;

    /// Truncate the write-ahead log to empty (after a flush).
    fn reset_log(&self) -> Result<()>;

    /// List blob names (for recovery sweeps / tests).
    fn list_blobs(&self) -> Result<Vec<String>>;
}

/// In-memory blob store.
#[derive(Default)]
pub struct MemBlobStore {
    blobs: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    log: RwLock<Vec<u8>>,
}

impl MemBlobStore {
    /// Create an empty in-memory blob store.
    pub fn new() -> MemBlobStore {
        MemBlobStore::default()
    }
}

impl BlobStore for MemBlobStore {
    fn put_blob(&self, name: &str, data: &[u8]) -> Result<()> {
        self.blobs
            .write()
            .insert(name.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        self.blobs
            .read()
            .get(name)
            .cloned()
            .ok_or(gkfs_common::GkfsError::NotFound)
    }

    fn delete_blob(&self, name: &str) -> Result<()> {
        self.blobs.write().remove(name);
        Ok(())
    }

    fn append_log(&self, data: &[u8]) -> Result<()> {
        self.log.write().extend_from_slice(data);
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<u8>> {
        Ok(self.log.read().clone())
    }

    fn reset_log(&self) -> Result<()> {
        self.log.write().clear();
        Ok(())
    }

    fn list_blobs(&self) -> Result<Vec<String>> {
        Ok(self.blobs.read().keys().cloned().collect())
    }
}

/// File-system-backed blob store: one file per blob under `dir`,
/// plus `wal.log` for the write-ahead log.
pub struct FsBlobStore {
    dir: PathBuf,
    // Serializes log appends; file handle kept open for append speed.
    log: parking_lot::Mutex<fs::File>,
}

impl FsBlobStore {
    /// Open (creating if needed) a blob store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FsBlobStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join("wal.log"))?;
        Ok(FsBlobStore {
            dir,
            log: parking_lot::Mutex::new(log),
        })
    }

    fn blob_path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl BlobStore for FsBlobStore {
    fn put_blob(&self, name: &str, data: &[u8]) -> Result<()> {
        // Write-then-rename for atomicity.
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.blob_path(name))?;
        Ok(())
    }

    fn get_blob(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        let mut f = fs::File::open(self.blob_path(name))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(Arc::new(buf))
    }

    fn delete_blob(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.blob_path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn append_log(&self, data: &[u8]) -> Result<()> {
        let mut log = self.log.lock();
        log.write_all(data)?;
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        let mut f = fs::File::open(self.dir.join("wal.log"))?;
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn reset_log(&self) -> Result<()> {
        let mut log = self.log.lock();
        // Truncate via a separate handle (truncate and append modes are
        // mutually exclusive on one OpenOptions), then reopen for append.
        fs::File::create(self.dir.join("wal.log"))?;
        *log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(self.dir.join("wal.log"))?;
        Ok(())
    }

    fn list_blobs(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name != "wal.log" && !name.ends_with(".tmp") {
                out.push(name);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn BlobStore) {
        store.put_blob("t1.sst", b"table-one").unwrap();
        store.put_blob("t2.sst", b"table-two").unwrap();
        assert_eq!(&**store.get_blob("t1.sst").unwrap(), b"table-one");
        // Overwrite.
        store.put_blob("t1.sst", b"table-one-v2").unwrap();
        assert_eq!(&**store.get_blob("t1.sst").unwrap(), b"table-one-v2");
        // List.
        let mut names = store.list_blobs().unwrap();
        names.sort();
        assert_eq!(names, vec!["t1.sst", "t2.sst"]);
        // Delete (idempotent).
        store.delete_blob("t1.sst").unwrap();
        store.delete_blob("t1.sst").unwrap();
        assert!(store.get_blob("t1.sst").is_err());
        // Log.
        store.append_log(b"aaa").unwrap();
        store.append_log(b"bbb").unwrap();
        assert_eq!(store.read_log().unwrap(), b"aaabbb");
        store.reset_log().unwrap();
        assert_eq!(store.read_log().unwrap(), b"");
        store.append_log(b"ccc").unwrap();
        assert_eq!(store.read_log().unwrap(), b"ccc");
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemBlobStore::new());
    }

    #[test]
    fn fs_store_contract() {
        let dir = std::env::temp_dir().join(format!("gkfs-blob-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise(&FsBlobStore::open(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gkfs-blob-r-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FsBlobStore::open(&dir).unwrap();
            s.put_blob("keep.sst", b"persisted").unwrap();
            s.append_log(b"wal-bytes").unwrap();
        }
        {
            let s = FsBlobStore::open(&dir).unwrap();
            assert_eq!(&**s.get_blob("keep.sst").unwrap(), b"persisted");
            assert_eq!(s.read_log().unwrap(), b"wal-bytes");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
