//! Merge operators — RocksDB's read-free update mechanism.
//!
//! GekkoFS updates a file's size on every write RPC. Doing that as
//! read-modify-write would serialize all writers of a shared file on
//! the metadata owner; instead the daemon issues a *merge* of
//! `max(current, offset + len)` and lets the KV store fold operands
//! lazily. This module defines the operator interface plus the two
//! operators the daemon uses.

/// A user-defined associative fold over values of one key.
///
/// `full_merge` combines the (optional) base value with a sequence of
/// operands recorded since. Operands are passed oldest-first. The
/// operator must be deterministic; associativity lets the store fold
/// partial runs during compaction.
pub trait MergeOperator: Send + Sync {
    /// Fold `operands` (oldest first) onto `base`.
    fn full_merge(&self, key: &[u8], base: Option<&[u8]>, operands: &[Vec<u8>]) -> Vec<u8>;
}

/// Merge operator treating values as little-endian `u64` counters and
/// adding operands — the classic RocksDB "uint64add" example. Used in
/// tests and benchmarks.
#[derive(Debug, Default)]
pub struct Add64MergeOperator;

fn read_u64_or_zero(v: &[u8]) -> u64 {
    if v.len() == 8 {
        u64::from_le_bytes(v.try_into().unwrap())
    } else {
        0
    }
}

impl MergeOperator for Add64MergeOperator {
    fn full_merge(&self, _key: &[u8], base: Option<&[u8]>, operands: &[Vec<u8>]) -> Vec<u8> {
        let mut acc = base.map(read_u64_or_zero).unwrap_or(0);
        for op in operands {
            acc = acc.wrapping_add(read_u64_or_zero(op));
        }
        acc.to_le_bytes().to_vec()
    }
}

/// Merge operator keeping the maximum of little-endian `u64` values —
/// the shape of GekkoFS' file-size updates (size can only grow through
/// writes; truncates go through `put`).
#[derive(Debug, Default)]
pub struct Max64MergeOperator;

impl MergeOperator for Max64MergeOperator {
    fn full_merge(&self, _key: &[u8], base: Option<&[u8]>, operands: &[Vec<u8>]) -> Vec<u8> {
        let mut acc = base.map(read_u64_or_zero).unwrap_or(0);
        for op in operands {
            acc = acc.max(read_u64_or_zero(op));
        }
        acc.to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add64_folds() {
        let op = Add64MergeOperator;
        let r = op.full_merge(
            b"k",
            Some(&5u64.to_le_bytes()),
            &[3u64.to_le_bytes().to_vec(), 7u64.to_le_bytes().to_vec()],
        );
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 15);
    }

    #[test]
    fn add64_without_base() {
        let op = Add64MergeOperator;
        let r = op.full_merge(b"k", None, &[10u64.to_le_bytes().to_vec()]);
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 10);
    }

    #[test]
    fn max64_keeps_max() {
        let op = Max64MergeOperator;
        let r = op.full_merge(
            b"k",
            Some(&100u64.to_le_bytes()),
            &[50u64.to_le_bytes().to_vec(), 300u64.to_le_bytes().to_vec()],
        );
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 300);
    }

    #[test]
    fn malformed_operand_treated_as_zero() {
        let op = Add64MergeOperator;
        let r = op.full_merge(b"k", Some(b"bad"), &[b"bad2".to_vec()]);
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 0);
    }
}
