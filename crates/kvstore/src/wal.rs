//! Write-ahead log encoding and replay.
//!
//! Every mutation is framed as `[crc32 | len | payload]` and appended
//! to the blob store's log before touching the memtable, so a daemon
//! restart can rebuild the memtable exactly. Replay is tolerant of a
//! torn tail (a crash mid-append): the first record that fails its
//! checksum or runs past the buffer ends replay, matching RocksDB's
//! `kTolerateCorruptedTailRecords` recovery mode.

use gkfs_common::crc::crc32;
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert or overwrite a key.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove a key (tombstone).
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Apply a merge operand to a key.
    Merge {
        /// Key bytes.
        key: Vec<u8>,
        /// Operand bytes for the configured merge operator.
        operand: Vec<u8>,
    },
    /// An atomic group: either every contained mutation replays or
    /// (torn tail) none do — the crash-atomicity RocksDB gives
    /// `WriteBatch` by framing the whole batch as one log record.
    Batch(Vec<WalRecord>),
}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_MERGE: u8 = 3;
const TAG_BATCH: u8 = 4;

impl WalRecord {
    fn encode_body(&self, body: &mut Encoder) {
        match self {
            WalRecord::Put { key, value } => {
                body.u8(TAG_PUT).bytes(key).bytes(value);
            }
            WalRecord::Delete { key } => {
                body.u8(TAG_DELETE).bytes(key);
            }
            WalRecord::Merge { key, operand } => {
                body.u8(TAG_MERGE).bytes(key).bytes(operand);
            }
            WalRecord::Batch(records) => {
                body.u8(TAG_BATCH).u32(records.len() as u32);
                for r in records {
                    assert!(
                        !matches!(r, WalRecord::Batch(_)),
                        "batches do not nest"
                    );
                    r.encode_body(body);
                }
            }
        }
    }

    /// Frame this record for appending to the log.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Encoder::new();
        self.encode_body(&mut body);
        let body = body.into_vec();
        let mut framed = Encoder::with_capacity(body.len() + 8);
        framed.u32(crc32(&body));
        framed.u32(body.len() as u32);
        framed.raw(&body);
        framed.into_vec()
    }

    fn decode_one(d: &mut Decoder<'_>, allow_batch: bool) -> Result<WalRecord> {
        Ok(match d.u8()? {
            TAG_PUT => WalRecord::Put {
                key: d.bytes()?.to_vec(),
                value: d.bytes()?.to_vec(),
            },
            TAG_DELETE => WalRecord::Delete {
                key: d.bytes()?.to_vec(),
            },
            TAG_MERGE => WalRecord::Merge {
                key: d.bytes()?.to_vec(),
                operand: d.bytes()?.to_vec(),
            },
            TAG_BATCH if allow_batch => {
                let n = d.u32()? as usize;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(Self::decode_one(d, false)?);
                }
                WalRecord::Batch(records)
            }
            t => return Err(GkfsError::Corruption(format!("bad WAL tag {t}"))),
        })
    }

    fn decode_body(body: &[u8]) -> Result<WalRecord> {
        let mut d = Decoder::new(body);
        let rec = Self::decode_one(&mut d, true)?;
        d.finish()?;
        Ok(rec)
    }
}

/// Replay a log buffer into its records. Stops silently at a torn
/// tail; returns `Corruption` only for damage *before* the tail (a
/// record that parses but whose interior is malformed).
pub fn replay(log: &[u8]) -> Result<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= log.len() {
        let crc = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap());
        let len = u32::from_le_bytes(log[pos + 4..pos + 8].try_into().unwrap()) as usize;
        if pos + 8 + len > log.len() {
            break; // torn tail: length runs past the buffer
        }
        let body = &log[pos + 8..pos + 8 + len];
        if crc32(body) != crc {
            break; // torn tail: checksum mismatch
        }
        out.push(WalRecord::decode_body(body)?);
        pos += 8 + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::Put {
                key: b"/a".to_vec(),
                value: b"meta".to_vec(),
            },
            WalRecord::Merge {
                key: b"/a".to_vec(),
                operand: 42u64.to_le_bytes().to_vec(),
            },
            WalRecord::Delete { key: b"/a".to_vec() },
        ]
    }

    #[test]
    fn encode_replay_roundtrip() {
        let mut log = Vec::new();
        for r in sample() {
            log.extend_from_slice(&r.encode());
        }
        assert_eq!(replay(&log).unwrap(), sample());
    }

    #[test]
    fn empty_log_is_empty() {
        assert!(replay(&[]).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let mut log = Vec::new();
        for r in sample() {
            log.extend_from_slice(&r.encode());
        }
        let full = replay(&log).unwrap().len();
        // Chop bytes off the end: we must recover a prefix, never error.
        for cut in 1..20 {
            let truncated = &log[..log.len() - cut];
            let recovered = replay(truncated).unwrap();
            assert!(recovered.len() < full || cut == 0);
            // Recovered records must be a prefix of the originals.
            assert_eq!(recovered[..], sample()[..recovered.len()]);
        }
    }

    #[test]
    fn corrupt_tail_checksum_stops_replay() {
        let mut log = Vec::new();
        for r in sample() {
            log.extend_from_slice(&r.encode());
        }
        let n = log.len();
        log[n - 1] ^= 0xFF; // flip a bit in the last record's body
        let recovered = replay(&log).unwrap();
        assert_eq!(recovered.len(), sample().len() - 1);
    }

    #[test]
    fn batch_roundtrip_is_atomic_in_the_log() {
        let batch = WalRecord::Batch(vec![
            WalRecord::Put {
                key: b"/a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete { key: b"/b".to_vec() },
            WalRecord::Merge {
                key: b"/c".to_vec(),
                operand: b"op".to_vec(),
            },
        ]);
        let mut log = batch.encode();
        assert_eq!(replay(&log).unwrap(), vec![batch.clone()]);
        // Any truncation inside the batch drops the WHOLE batch.
        for cut in 1..log.len() - 8 {
            let t = &log[..log.len() - cut];
            assert!(replay(t).unwrap().is_empty(), "cut {cut} must drop batch");
        }
        // A record after the batch replays independently.
        log.extend_from_slice(
            &WalRecord::Put {
                key: b"/z".to_vec(),
                value: b"v".to_vec(),
            }
            .encode(),
        );
        assert_eq!(replay(&log).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "batches do not nest")]
    fn nested_batches_rejected() {
        WalRecord::Batch(vec![WalRecord::Batch(vec![])]).encode();
    }

    #[test]
    fn garbage_after_valid_records_is_tail() {
        let mut log = sample()[0].encode();
        log.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
        let recovered = replay(&log).unwrap();
        assert_eq!(recovered.len(), 1);
    }
}
