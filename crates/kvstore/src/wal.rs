//! Write-ahead log encoding and replay.
//!
//! Every mutation is framed as `[crc32 | len | seq | payload]` and
//! appended to the blob store's active log segment before it is
//! acknowledged, so a daemon restart can rebuild the memtable exactly.
//! The `seq` is the store-wide monotonically increasing sequence
//! number assigned under the memtable lock, which gives replay two
//! properties the background-flush engine needs:
//!
//! * log order and memtable apply order are identical even when group
//!   commit batches frames from many writers, and
//! * replay can skip records already covered by the manifest's
//!   `flushed_seq` watermark — without it, a crash landing between
//!   "SSTable installed" and "log segment dropped" would re-apply
//!   non-idempotent merge operands.
//!
//! Replay is tolerant of a torn tail (a crash mid-append): the first
//! record that fails its checksum or runs past the buffer ends replay,
//! matching RocksDB's `kTolerateCorruptedTailRecords` recovery mode.

use gkfs_common::crc::crc32;
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert or overwrite a key.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove a key (tombstone).
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Apply a merge operand to a key.
    Merge {
        /// Key bytes.
        key: Vec<u8>,
        /// Operand bytes for the configured merge operator.
        operand: Vec<u8>,
    },
    /// An atomic group: either every contained mutation replays or
    /// (torn tail) none do — the crash-atomicity RocksDB gives
    /// `WriteBatch` by framing the whole batch as one log record.
    Batch(Vec<WalRecord>),
}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_MERGE: u8 = 3;
const TAG_BATCH: u8 = 4;

/// Frame header: crc32 (4) + body len (4) + sequence number (8).
const FRAME_HEADER: usize = 16;

impl WalRecord {
    fn encode_body(&self, body: &mut Encoder) {
        match self {
            WalRecord::Put { key, value } => {
                body.u8(TAG_PUT).bytes(key).bytes(value);
            }
            WalRecord::Delete { key } => {
                body.u8(TAG_DELETE).bytes(key);
            }
            WalRecord::Merge { key, operand } => {
                body.u8(TAG_MERGE).bytes(key).bytes(operand);
            }
            WalRecord::Batch(records) => {
                body.u8(TAG_BATCH).u32(records.len() as u32);
                for r in records {
                    assert!(!matches!(r, WalRecord::Batch(_)), "batches do not nest");
                    r.encode_body(body);
                }
            }
        }
    }

    /// Frame this record for appending to the log, stamped with its
    /// commit sequence number. The checksum covers `seq` as well as
    /// the body so a torn header cannot resurrect a record under the
    /// wrong sequence.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut body = Encoder::new();
        self.encode_body(&mut body);
        let body = body.into_vec();
        let mut checked = Vec::with_capacity(body.len() + 8);
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(&body);
        let mut framed = Encoder::with_capacity(body.len() + FRAME_HEADER);
        framed.u32(crc32(&checked));
        framed.u32(body.len() as u32);
        framed.u64(seq);
        framed.raw(&body);
        framed.into_vec()
    }

    fn decode_one(d: &mut Decoder<'_>, allow_batch: bool) -> Result<WalRecord> {
        Ok(match d.u8()? {
            TAG_PUT => WalRecord::Put {
                key: d.bytes()?.to_vec(),
                value: d.bytes()?.to_vec(),
            },
            TAG_DELETE => WalRecord::Delete {
                key: d.bytes()?.to_vec(),
            },
            TAG_MERGE => WalRecord::Merge {
                key: d.bytes()?.to_vec(),
                operand: d.bytes()?.to_vec(),
            },
            TAG_BATCH if allow_batch => {
                let n = d.u32()? as usize;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(Self::decode_one(d, false)?);
                }
                WalRecord::Batch(records)
            }
            t => return Err(GkfsError::Corruption(format!("bad WAL tag {t}"))),
        })
    }

    fn decode_body(body: &[u8]) -> Result<WalRecord> {
        let mut d = Decoder::new(body);
        let rec = Self::decode_one(&mut d, true)?;
        d.finish()?;
        Ok(rec)
    }
}

/// Replay a log buffer into `(seq, record)` pairs. Stops silently at a
/// torn tail; returns `Corruption` only for damage *before* the tail
/// (a record that parses but whose interior is malformed).
pub fn replay(log: &[u8]) -> Result<Vec<(u64, WalRecord)>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + FRAME_HEADER <= log.len() {
        let crc = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap());
        let len = u32::from_le_bytes(log[pos + 4..pos + 8].try_into().unwrap()) as usize;
        if pos + FRAME_HEADER + len > log.len() {
            break; // torn tail: length runs past the buffer
        }
        let checked = &log[pos + 8..pos + FRAME_HEADER + len];
        if crc32(checked) != crc {
            break; // torn tail: checksum mismatch
        }
        let seq = u64::from_le_bytes(log[pos + 8..pos + 16].try_into().unwrap());
        let body = &log[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        out.push((seq, WalRecord::decode_body(body)?));
        pos += FRAME_HEADER + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::Put {
                key: b"/a".to_vec(),
                value: b"meta".to_vec(),
            },
            WalRecord::Merge {
                key: b"/a".to_vec(),
                operand: 42u64.to_le_bytes().to_vec(),
            },
            WalRecord::Delete { key: b"/a".to_vec() },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut log = Vec::new();
        for (i, r) in records.iter().enumerate() {
            log.extend_from_slice(&r.encode(i as u64 + 1));
        }
        log
    }

    #[test]
    fn encode_replay_roundtrip() {
        let log = encode_all(&sample());
        let replayed = replay(&log).unwrap();
        let records: Vec<WalRecord> = replayed.iter().map(|(_, r)| r.clone()).collect();
        let seqs: Vec<u64> = replayed.iter().map(|(s, _)| *s).collect();
        assert_eq!(records, sample());
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn empty_log_is_empty() {
        assert!(replay(&[]).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let log = encode_all(&sample());
        let full = replay(&log).unwrap().len();
        // Chop bytes off the end: we must recover a prefix, never error.
        for cut in 1..28 {
            let truncated = &log[..log.len() - cut];
            let recovered = replay(truncated).unwrap();
            assert!(recovered.len() < full || cut == 0);
            // Recovered records must be a prefix of the originals.
            for (i, (seq, rec)) in recovered.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
                assert_eq!(*rec, sample()[i]);
            }
        }
    }

    #[test]
    fn corrupt_tail_checksum_stops_replay() {
        let mut log = encode_all(&sample());
        let n = log.len();
        log[n - 1] ^= 0xFF; // flip a bit in the last record's body
        let recovered = replay(&log).unwrap();
        assert_eq!(recovered.len(), sample().len() - 1);
    }

    #[test]
    fn corrupt_seq_fails_checksum() {
        // The checksum covers the sequence number: flipping a seq byte
        // must not replay the record under a different sequence.
        let mut log = encode_all(&sample());
        log[8] ^= 0xFF; // first record's seq, little-endian low byte
        assert!(replay(&log).unwrap().is_empty());
    }

    #[test]
    fn batch_roundtrip_is_atomic_in_the_log() {
        let batch = WalRecord::Batch(vec![
            WalRecord::Put {
                key: b"/a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete { key: b"/b".to_vec() },
            WalRecord::Merge {
                key: b"/c".to_vec(),
                operand: b"op".to_vec(),
            },
        ]);
        let mut log = batch.encode(7);
        assert_eq!(replay(&log).unwrap(), vec![(7, batch.clone())]);
        // Any truncation inside the batch drops the WHOLE batch.
        for cut in 1..log.len() - FRAME_HEADER {
            let t = &log[..log.len() - cut];
            assert!(replay(t).unwrap().is_empty(), "cut {cut} must drop batch");
        }
        // A record after the batch replays independently.
        log.extend_from_slice(
            &WalRecord::Put {
                key: b"/z".to_vec(),
                value: b"v".to_vec(),
            }
            .encode(8),
        );
        assert_eq!(replay(&log).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "batches do not nest")]
    fn nested_batches_rejected() {
        WalRecord::Batch(vec![WalRecord::Batch(vec![])]).encode(1);
    }

    #[test]
    fn garbage_after_valid_records_is_tail() {
        let mut log = sample()[0].encode(1);
        log.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
        let recovered = replay(&log).unwrap();
        assert_eq!(recovered.len(), 1);
    }
}
