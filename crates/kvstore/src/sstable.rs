//! Immutable sorted string tables (SSTables).
//!
//! A flushed memtable becomes one SSTable blob with the layout
//!
//! ```text
//! [data block 0][data block 1]...[index][bloom filter][footer]
//! ```
//!
//! * **Data blocks** hold `(tag, key, value)` entries in key order,
//!   split at a target block size. Each block is CRC-protected.
//! * The **index** records each block's first key and extent, enabling
//!   binary-searched point lookups that touch a single block.
//! * The **bloom filter** short-circuits lookups for absent keys.
//! * The **footer** is fixed-size at the end of the blob so a reader
//!   can bootstrap from the blob alone.
//!
//! Merges are resolved *before* flush (see [`crate::db`]), so tables
//! contain only `Put` and `Delete` entries; `Delete` tombstones must be
//! kept until full compaction because they may shadow older tables.

use crate::bloom::{BloomBuilder, BloomFilter};
use gkfs_common::crc::crc32;
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};
use std::sync::Arc;

const MAGIC: u64 = 0x47_4B_46_53_53_53_54_31; // "GKFSSST1"
const FOOTER_LEN: usize = 8 * 4 + 4 + 8; // four u64 + u32 count + magic
const TARGET_BLOCK: usize = 4096;

/// Entry kind stored in a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// A live key/value entry.
    Put = 1,
    /// A tombstone shadowing older levels.
    Delete = 2,
}

impl Tag {
    fn from_u8(v: u8) -> Result<Tag> {
        match v {
            1 => Ok(Tag::Put),
            2 => Ok(Tag::Delete),
            other => Err(GkfsError::Corruption(format!("bad sstable tag {other}"))),
        }
    }
}

/// Builds one SSTable blob from entries added in strictly ascending
/// key order.
pub struct TableBuilder {
    buf: Encoder,
    block_start: usize,
    index: Vec<(Vec<u8>, u64, u32)>, // first_key, offset, len
    bloom: BloomBuilder,
    pending_first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
    count: u32,
}

impl TableBuilder {
    /// `expected_entries` sizes the bloom filter.
    pub fn new(expected_entries: usize) -> TableBuilder {
        TableBuilder {
            buf: Encoder::new(),
            block_start: 0,
            index: Vec::new(),
            bloom: BloomFilter::builder(expected_entries, 10),
            pending_first_key: None,
            last_key: None,
            count: 0,
        }
    }

    /// Append an entry. Panics if keys are not strictly ascending —
    /// that is a programming error in the flush/compaction path, not a
    /// runtime condition.
    pub fn add(&mut self, tag: Tag, key: &[u8], value: &[u8]) {
        if let Some(last) = &self.last_key {
            assert!(
                key > last.as_slice(),
                "sstable keys must be strictly ascending"
            );
        }
        if self.pending_first_key.is_none() {
            self.pending_first_key = Some(key.to_vec());
        }
        self.buf.u8(tag as u8);
        self.buf.varint(key.len() as u64);
        self.buf.raw(key);
        self.buf.varint(value.len() as u64);
        self.buf.raw(value);
        self.bloom.add(key);
        self.last_key = Some(key.to_vec());
        self.count += 1;
        if self.buf.len() - self.block_start >= TARGET_BLOCK {
            self.seal_block();
        }
    }

    fn seal_block(&mut self) {
        if let Some(first) = self.pending_first_key.take() {
            let len = (self.buf.len() - self.block_start) as u32;
            self.index.push((first, self.block_start as u64, len));
            self.block_start = self.buf.len();
        }
    }

    /// Finish the table and return the serialized blob.
    pub fn finish(mut self) -> Vec<u8> {
        self.seal_block();
        let mut out = self.buf;
        // Index.
        let index_off = out.len() as u64;
        let mut idx = Encoder::new();
        idx.u32(self.index.len() as u32);
        for (first, off, len) in &self.index {
            idx.bytes(first);
            idx.u64(*off);
            idx.u32(*len);
            // CRC over the block the entry points to.
            let block = &out.as_slice()[*off as usize..(*off as usize + *len as usize)];
            idx.u32(crc32(block));
        }
        let idx = idx.into_vec();
        out.raw(&idx);
        // Bloom.
        let bloom_off = out.len() as u64;
        let bloom = self.bloom.finish().encode();
        out.raw(&bloom);
        // Footer.
        out.u64(index_off);
        out.u64(idx.len() as u64);
        out.u64(bloom_off);
        out.u64(bloom.len() as u64);
        out.u32(self.count);
        out.u64(MAGIC);
        out.into_vec()
    }

    /// Entry count.
    pub fn entry_count(&self) -> u32 {
        self.count
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

struct IndexEntry {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
    crc: u32,
}

/// Read-side handle over one SSTable blob.
pub struct Table {
    blob: Arc<Vec<u8>>,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    count: u32,
}

impl Table {
    /// Parse a blob produced by [`TableBuilder::finish`].
    pub fn open(blob: Arc<Vec<u8>>) -> Result<Table> {
        if blob.len() < FOOTER_LEN {
            return Err(GkfsError::Corruption("sstable too short".into()));
        }
        let mut f = Decoder::new(&blob[blob.len() - FOOTER_LEN..]);
        let index_off = f.u64()? as usize;
        let index_len = f.u64()? as usize;
        let bloom_off = f.u64()? as usize;
        let bloom_len = f.u64()? as usize;
        let count = f.u32()?;
        if f.u64()? != MAGIC {
            return Err(GkfsError::Corruption("bad sstable magic".into()));
        }
        if index_off + index_len > blob.len() || bloom_off + bloom_len > blob.len() {
            return Err(GkfsError::Corruption("sstable extents out of range".into()));
        }
        let mut idx = Decoder::new(&blob[index_off..index_off + index_len]);
        let n = idx.u32()? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            index.push(IndexEntry {
                first_key: idx.bytes()?.to_vec(),
                offset: idx.u64()?,
                len: idx.u32()?,
                crc: idx.u32()?,
            });
        }
        idx.finish()?;
        let bloom = BloomFilter::decode(&blob[bloom_off..bloom_off + bloom_len])?;
        Ok(Table {
            blob,
            index,
            bloom,
            count,
        })
    }

    /// Number of entries in the table.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First key in the table (None if empty).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.index.first().map(|e| e.first_key.as_slice())
    }

    /// Does the bloom filter admit this key? (Exposed for stats/bench.)
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    fn block(&self, i: usize) -> Result<&[u8]> {
        let e = &self.index[i];
        let start = e.offset as usize;
        let end = start + e.len as usize;
        if end > self.blob.len() {
            return Err(GkfsError::Corruption("block extent out of range".into()));
        }
        let block = &self.blob[start..end];
        if crc32(block) != e.crc {
            return Err(GkfsError::Corruption(format!("block {i} checksum mismatch")));
        }
        Ok(block)
    }

    /// Index of the block that could contain `key`.
    fn block_for(&self, key: &[u8]) -> Option<usize> {
        if self.index.is_empty() || key < self.index[0].first_key.as_slice() {
            return None;
        }
        // Last block whose first_key <= key.
        let mut lo = 0usize;
        let mut hi = self.index.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.index[mid].first_key.as_slice() <= key {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Point lookup: `Ok(None)` if the key is not in this table,
    /// `Ok(Some((tag, value)))` if present (tag may be a tombstone).
    pub fn get(&self, key: &[u8]) -> Result<Option<(Tag, Vec<u8>)>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(bi) = self.block_for(key) else {
            return Ok(None);
        };
        let block = self.block(bi)?;
        let mut d = Decoder::new(block);
        while d.remaining() > 0 {
            let tag = Tag::from_u8(d.u8()?)?;
            let klen = d.varint()? as usize;
            let k = d.raw(klen)?;
            let vlen = d.varint()? as usize;
            let v = d.raw(vlen)?;
            match k.cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some((tag, v.to_vec()))),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Existence probe: like [`Table::get`] but returns only the
    /// entry's tag, never copying the value out of the block — the
    /// daemon's create-path existence check doesn't need the bytes.
    pub fn tag_of(&self, key: &[u8]) -> Result<Option<Tag>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(bi) = self.block_for(key) else {
            return Ok(None);
        };
        let block = self.block(bi)?;
        let mut d = Decoder::new(block);
        while d.remaining() > 0 {
            let tag = Tag::from_u8(d.u8()?)?;
            let klen = d.varint()? as usize;
            let k = d.raw(klen)?;
            let vlen = d.varint()? as usize;
            d.raw(vlen)?; // skip the value bytes in place
            match k.cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(tag)),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Iterate all entries with `key >= start`, in key order.
    pub fn iter_from(&self, start: &[u8]) -> TableIter<'_> {
        // Start before the first key: scan from block 0.
        let block = self.block_for(start).unwrap_or_default();
        TableIter {
            table: self,
            block_idx: block,
            decoder: None,
            start: start.to_vec(),
            skipping: true,
        }
    }

    /// Iterate every entry.
    pub fn iter(&self) -> TableIter<'_> {
        self.iter_from(&[])
    }
}

/// Ordered entry iterator over one table.
pub struct TableIter<'a> {
    table: &'a Table,
    block_idx: usize,
    decoder: Option<Decoder<'a>>,
    start: Vec<u8>,
    skipping: bool,
}

impl<'a> Iterator for TableIter<'a> {
    type Item = Result<(Tag, Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.decoder.is_none() {
                if self.block_idx >= self.table.index.len() {
                    return None;
                }
                match self.table.block(self.block_idx) {
                    Ok(b) => self.decoder = Some(Decoder::new(b)),
                    Err(e) => {
                        self.block_idx = self.table.index.len();
                        return Some(Err(e));
                    }
                }
            }
            let d = self.decoder.as_mut().unwrap();
            if d.remaining() == 0 {
                self.decoder = None;
                self.block_idx += 1;
                continue;
            }
            let parse = (|| {
                let tag = Tag::from_u8(d.u8()?)?;
                let klen = d.varint()? as usize;
                let k = d.raw(klen)?.to_vec();
                let vlen = d.varint()? as usize;
                let v = d.raw(vlen)?.to_vec();
                Ok::<_, GkfsError>((tag, k, v))
            })();
            match parse {
                Ok((tag, k, v)) => {
                    if self.skipping && k.as_slice() < self.start.as_slice() {
                        continue;
                    }
                    self.skipping = false;
                    return Some(Ok((tag, k, v)));
                }
                Err(e) => {
                    self.block_idx = self.table.index.len();
                    self.decoder = None;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_table(n: usize) -> Table {
        let mut b = TableBuilder::new(n);
        for i in 0..n {
            let key = format!("/files/{i:08}");
            if i % 10 == 3 {
                b.add(Tag::Delete, key.as_bytes(), b"");
            } else {
                b.add(Tag::Put, key.as_bytes(), format!("value-{i}").as_bytes());
            }
        }
        Table::open(Arc::new(b.finish())).unwrap()
    }

    #[test]
    fn point_lookups() {
        let t = build_table(1000);
        assert_eq!(t.len(), 1000);
        match t.get(b"/files/00000005").unwrap() {
            Some((Tag::Put, v)) => assert_eq!(v, b"value-5"),
            other => panic!("unexpected {other:?}"),
        }
        match t.get(b"/files/00000003").unwrap() {
            Some((Tag::Delete, _)) => {}
            other => panic!("expected tombstone, got {other:?}"),
        }
        assert!(t.get(b"/files/99999999").unwrap().is_none());
        assert!(t.get(b"/absent").unwrap().is_none());
        assert!(t.get(b"").unwrap().is_none());
    }

    #[test]
    fn tag_of_matches_get_without_value() {
        let t = build_table(1000);
        assert_eq!(t.tag_of(b"/files/00000005").unwrap(), Some(Tag::Put));
        assert_eq!(t.tag_of(b"/files/00000003").unwrap(), Some(Tag::Delete));
        assert_eq!(t.tag_of(b"/files/99999999").unwrap(), None);
        assert_eq!(t.tag_of(b"/absent").unwrap(), None);
        assert_eq!(t.tag_of(b"").unwrap(), None);
        // Agrees with get() across the whole key range.
        for i in (0..1000).step_by(37) {
            let key = format!("/files/{i:08}");
            let expect = t.get(key.as_bytes()).unwrap().map(|(tag, _)| tag);
            assert_eq!(t.tag_of(key.as_bytes()).unwrap(), expect);
        }
    }

    #[test]
    fn full_iteration_in_order() {
        let t = build_table(500);
        let entries: Vec<_> = t.iter().map(|r| r.unwrap()).collect();
        assert_eq!(entries.len(), 500);
        assert!(entries.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn iter_from_midpoint() {
        let t = build_table(100);
        let entries: Vec<_> = t.iter_from(b"/files/00000050").map(|r| r.unwrap()).collect();
        assert_eq!(entries.len(), 50);
        assert_eq!(entries[0].1, b"/files/00000050");
    }

    #[test]
    fn iter_from_between_keys() {
        let mut b = TableBuilder::new(3);
        b.add(Tag::Put, b"/a", b"1");
        b.add(Tag::Put, b"/c", b"2");
        b.add(Tag::Put, b"/e", b"3");
        let t = Table::open(Arc::new(b.finish())).unwrap();
        let entries: Vec<_> = t.iter_from(b"/b").map(|r| r.unwrap()).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, b"/c");
    }

    #[test]
    fn empty_table() {
        let b = TableBuilder::new(0);
        let t = Table::open(Arc::new(b.finish())).unwrap();
        assert!(t.is_empty());
        assert!(t.get(b"/x").unwrap().is_none());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn corruption_detected() {
        let mut b = TableBuilder::new(2);
        b.add(Tag::Put, b"/a", b"1");
        b.add(Tag::Put, b"/b", b"2");
        let mut blob = b.finish();
        blob[2] ^= 0xFF; // flip a bit inside the first data block
        let t = Table::open(Arc::new(blob)).unwrap();
        assert!(matches!(t.get(b"/a"), Err(GkfsError::Corruption(_))));
    }

    #[test]
    fn truncated_blob_rejected() {
        assert!(Table::open(Arc::new(vec![1, 2, 3])).is_err());
        let mut b = TableBuilder::new(1);
        b.add(Tag::Put, b"/a", b"1");
        let blob = b.finish();
        assert!(Table::open(Arc::new(blob[..blob.len() - 4].to_vec())).is_err());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn out_of_order_add_panics() {
        let mut b = TableBuilder::new(2);
        b.add(Tag::Put, b"/b", b"1");
        b.add(Tag::Put, b"/a", b"2");
    }

    #[test]
    fn large_values_cross_blocks() {
        let mut b = TableBuilder::new(10);
        let big = vec![0xABu8; 10_000]; // forces multiple blocks
        for i in 0..10 {
            b.add(Tag::Put, format!("/k{i}").as_bytes(), &big);
        }
        let t = Table::open(Arc::new(b.finish())).unwrap();
        assert!(t.index.len() > 1, "expected multiple blocks");
        for i in 0..10 {
            let (tag, v) = t.get(format!("/k{i}").as_bytes()).unwrap().unwrap();
            assert_eq!(tag, Tag::Put);
            assert_eq!(v.len(), 10_000);
        }
    }
}
