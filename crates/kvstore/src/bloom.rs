//! Bloom filters for SSTables, implemented from scratch.
//!
//! Every SSTable carries a bloom filter over its keys so point lookups
//! can skip tables that cannot contain the key — the same optimization
//! RocksDB relies on to keep metadata `stat` fast once data has been
//! flushed out of the memtable.
//!
//! We use the standard double-hashing scheme (Kirsch & Mitzenmacher):
//! `h_i(x) = h1(x) + i * h2(x)`, with both halves derived from one
//! XXH64 invocation.

use gkfs_common::hash::xxh64;
use gkfs_common::wire::{Decoder, Encoder};
use gkfs_common::{GkfsError, Result};

/// A fixed-size bloom filter built over a known key set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Build a filter sized for `n` keys at `bits_per_key` bits each
    /// (10 bits/key ≈ 1% false-positive rate, RocksDB's default).
    pub fn builder(n: usize, bits_per_key: usize) -> BloomBuilder {
        let num_bits = ((n.max(1) * bits_per_key) as u64).max(64);
        // Optimal k = ln2 * bits/key, clamped to something sane.
        let num_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        BloomBuilder {
            filter: BloomFilter {
                bits: vec![0u64; num_bits.div_ceil(64) as usize],
                num_bits,
                num_hashes,
            },
        }
    }

    #[inline]
    fn positions(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h = xxh64(key, 0xB10053);
        let h1 = h & 0xFFFF_FFFF;
        let h2 = (h >> 32) | 1; // odd, so it cycles through all bits
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) % self.num_bits)
    }

    /// May `key` be in the set? False positives possible, false
    /// negatives never.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.positions(key)
            .collect::<Vec<_>>()
            .into_iter()
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Serialize to the SSTable footer format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(self.bits.len() * 8 + 16);
        e.u64(self.num_bits);
        e.u32(self.num_hashes);
        e.u32(self.bits.len() as u32);
        for w in &self.bits {
            e.u64(*w);
        }
        e.into_vec()
    }

    /// Deserialize from [`BloomFilter::encode`] output.
    pub fn decode(buf: &[u8]) -> Result<BloomFilter> {
        let mut d = Decoder::new(buf);
        let num_bits = d.u64()?;
        let num_hashes = d.u32()?;
        let words = d.u32()? as usize;
        if num_bits == 0 || num_hashes == 0 || words != (num_bits.div_ceil(64)) as usize {
            return Err(GkfsError::Corruption("bad bloom header".into()));
        }
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(d.u64()?);
        }
        d.finish()?;
        Ok(BloomFilter {
            bits,
            num_bits,
            num_hashes,
        })
    }

    /// Size of the serialized filter in bytes.
    pub fn encoded_len(&self) -> usize {
        16 + self.bits.len() * 8
    }
}

/// Incremental builder returned by [`BloomFilter::builder`].
pub struct BloomBuilder {
    filter: BloomFilter,
}

impl BloomBuilder {
    /// Add.
    pub fn add(&mut self, key: &[u8]) {
        let positions: Vec<u64> = self.filter.positions(key).collect();
        for p in positions {
            self.filter.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    /// Finish.
    pub fn finish(self) -> BloomFilter {
        self.filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[&[u8]]) -> BloomFilter {
        let mut b = BloomFilter::builder(keys.len(), 10);
        for k in keys {
            b.add(k);
        }
        b.finish()
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..5000).map(|i| format!("/dir/f{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = build(&refs);
        for k in &keys {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let keys: Vec<Vec<u8>> = (0..10_000).map(|i| format!("k{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = build(&refs);
        let fp = (0..10_000)
            .filter(|i| f.may_contain(format!("absent{i}").as_bytes()))
            .count();
        // 10 bits/key targets ~1%; accept up to 3%.
        assert!(fp < 300, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = build(&[b"alpha", b"beta", b"gamma"]);
        let decoded = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(f, decoded);
        assert!(decoded.may_contain(b"alpha"));
    }

    #[test]
    fn decode_rejects_corruption() {
        let f = build(&[b"x"]);
        let mut buf = f.encode();
        buf.truncate(buf.len() - 1);
        assert!(BloomFilter::decode(&buf).is_err());
        assert!(BloomFilter::decode(&[]).is_err());
    }

    #[test]
    fn empty_filter_is_valid() {
        let f = BloomFilter::builder(0, 10).finish();
        // An empty filter must simply say "no" (or at worst rarely yes).
        let hits = (0..100)
            .filter(|i| f.may_contain(format!("q{i}").as_bytes()))
            .count();
        assert_eq!(hits, 0);
        let rt = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(f, rt);
    }
}
