//! The sorted in-memory write buffer.
//!
//! All writes land here first (after the WAL). The table is an ordered
//! map so that flushing produces an already-sorted SSTable and prefix
//! scans can merge memtable and table contents in key order.
//!
//! Entries record logical state, not history: a later `put` replaces an
//! earlier one. Merge operands fold eagerly when the base value is
//! present in the memtable itself (the common case for GekkoFS size
//! updates — the `create` that wrote the base usually still sits in the
//! memtable); otherwise operands stack until read or flush time, when
//! the base is fetched from the table levels.

use crate::merge::MergeOperator;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Logical state of one key in the memtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Key present with this value.
    Put(Vec<u8>),
    /// Key deleted (tombstone shadowing older levels).
    Delete,
    /// Pending merge operands (oldest first) whose base lives in an
    /// older level (or doesn't exist).
    Merge(Vec<Vec<u8>>),
}

/// Sorted write buffer. Not internally synchronized — the [`crate::Db`]
/// wraps it in a lock.
#[derive(Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Value>,
    approx_bytes: usize,
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> MemTable {
        MemTable::default()
    }

    /// Number of distinct keys currently buffered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Rough memory footprint used to trigger flushes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    fn charge(&mut self, key: &[u8], val_len: usize) {
        // Key + value + map overhead estimate.
        self.approx_bytes += key.len() + val_len + 64;
    }

    /// Insert or overwrite `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.charge(key, value.len());
        self.map.insert(key.to_vec(), Value::Put(value.to_vec()));
    }

    /// Record a tombstone for `key`.
    pub fn delete(&mut self, key: &[u8]) {
        self.charge(key, 0);
        self.map.insert(key.to_vec(), Value::Delete);
    }

    /// Record a merge operand, folding eagerly when the base state is
    /// already in this memtable.
    pub fn merge(&mut self, key: &[u8], operand: &[u8], op: &dyn MergeOperator) {
        self.charge(key, operand.len());
        match self.map.get_mut(key) {
            Some(Value::Put(base)) => {
                let merged = op.full_merge(key, Some(base), std::slice::from_ref(&operand.to_vec()));
                *base = merged;
            }
            Some(Value::Delete) => {
                let merged = op.full_merge(key, None, std::slice::from_ref(&operand.to_vec()));
                self.map.insert(key.to_vec(), Value::Put(merged));
            }
            Some(Value::Merge(ops)) => ops.push(operand.to_vec()),
            None => {
                self.map
                    .insert(key.to_vec(), Value::Merge(vec![operand.to_vec()]));
            }
        }
    }

    /// Current state of `key`, if buffered.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.map.get(key)
    }

    /// Iterate entries with keys in `[start, end)` in key order.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = (&'a [u8], &'a Value)> + 'a {
        let lower = Bound::Included(start.to_vec());
        let upper = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        self.map
            .range((lower, upper))
            .map(|(k, v)| (k.as_slice(), v))
    }

    /// Iterate everything in key order (flush path).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Value)> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v))
    }

    /// Reset to empty, returning the old contents (flush path).
    pub fn take(&mut self) -> BTreeMap<Vec<u8>, Value> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{Add64MergeOperator, Max64MergeOperator};

    #[test]
    fn put_get_overwrite() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.put(b"a", b"2");
        assert_eq!(m.get(b"a"), Some(&Value::Put(b"2".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(&Value::Delete));
        // Tombstone for a never-seen key must also be recorded (it may
        // shadow an SSTable entry).
        m.delete(b"ghost");
        assert_eq!(m.get(b"ghost"), Some(&Value::Delete));
    }

    #[test]
    fn merge_folds_onto_put() {
        let mut m = MemTable::new();
        let op = Add64MergeOperator;
        m.put(b"ctr", &5u64.to_le_bytes());
        m.merge(b"ctr", &3u64.to_le_bytes(), &op);
        match m.get(b"ctr") {
            Some(Value::Put(v)) => assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 8),
            other => panic!("expected folded Put, got {other:?}"),
        }
    }

    #[test]
    fn merge_onto_tombstone_starts_fresh() {
        let mut m = MemTable::new();
        let op = Max64MergeOperator;
        m.delete(b"sz");
        m.merge(b"sz", &42u64.to_le_bytes(), &op);
        match m.get(b"sz") {
            Some(Value::Put(v)) => assert_eq!(u64::from_le_bytes(v[..].try_into().unwrap()), 42),
            other => panic!("expected Put, got {other:?}"),
        }
    }

    #[test]
    fn merge_without_base_stacks() {
        let mut m = MemTable::new();
        let op = Add64MergeOperator;
        m.merge(b"k", &1u64.to_le_bytes(), &op);
        m.merge(b"k", &2u64.to_le_bytes(), &op);
        match m.get(b"k") {
            Some(Value::Merge(ops)) => assert_eq!(ops.len(), 2),
            other => panic!("expected stacked Merge, got {other:?}"),
        }
    }

    #[test]
    fn range_scan_ordered_and_bounded() {
        let mut m = MemTable::new();
        for k in ["/a/1", "/a/2", "/b/1", "/a/3"] {
            m.put(k.as_bytes(), b"v");
        }
        let keys: Vec<&[u8]> = m.range(b"/a/", Some(b"/a0")).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"/a/1"[..], b"/a/2", b"/a/3"]);
        let all: Vec<&[u8]> = m.range(b"", None).map(|(k, _)| k).collect();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] < w[1]), "sorted order");
    }

    #[test]
    fn take_resets() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        assert!(m.approx_bytes() > 0);
        let drained = m.take();
        assert_eq!(drained.len(), 1);
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }
}
