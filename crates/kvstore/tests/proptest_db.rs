//! Property-based tests: the LSM store against a reference model.
//!
//! Random interleavings of put/delete/merge/flush/compact must be
//! indistinguishable — through `get`, `scan_prefix`, and `len` — from
//! a plain ordered map applying the same logical operations. This
//! covers the level interactions that unit tests cannot enumerate:
//! tombstones shadowing table entries, merges resolving against
//! flushed bases, compaction dropping the right records.

use gkfs_kvstore::{Add64MergeOperator, BlobStore, Db, DbOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    MergeAdd(u8, u8),
    Flush,
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 24, v)),
        3 => any::<u8>().prop_map(|k| Op::Delete(k % 24)),
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::MergeAdd(k % 24, v)),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("/kv/{k:03}").into_bytes()
}

fn opts() -> DbOptions {
    DbOptions {
        memtable_bytes: 2048, // tiny: force organic background flushes too
        l0_compaction_trigger: 3,
        wal: true,
        merge_operator: Some(Arc::new(Add64MergeOperator)),
        ..DbOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn db_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let store = Arc::new(gkfs_kvstore::MemBlobStore::new());
        let mut db = Db::open(store.clone(), opts()).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let val = (*v as u64).to_le_bytes();
                    db.put(&key(*k), &val).unwrap();
                    model.insert(key(*k), *v as u64);
                }
                Op::Delete(k) => {
                    db.delete(&key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                Op::MergeAdd(k, v) => {
                    db.merge(&key(*k), &(*v as u64).to_le_bytes()).unwrap();
                    *model.entry(key(*k)).or_insert(0) =
                        model.get(&key(*k)).copied().unwrap_or(0).wrapping_add(*v as u64);
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = Db::open(store.clone(), opts()).unwrap();
                }
            }
            // Spot-check a couple of keys after every op.
            for probe in [0u8, 12, 23] {
                let got = db.get(&key(probe)).unwrap()
                    .map(|v| u64::from_le_bytes(v.try_into().unwrap()));
                prop_assert_eq!(model.get(&key(probe)).copied(), got, "probe {}", probe);
            }
        }

        // Full-state comparison at the end.
        let scanned: BTreeMap<Vec<u8>, u64> = db
            .scan_prefix(b"/kv/")
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.try_into().unwrap())))
            .collect();
        prop_assert_eq!(&model, &scanned, "scan must reproduce the model exactly");
        prop_assert_eq!(db.len().unwrap(), model.len());
    }

    #[test]
    fn crash_recovery_yields_an_exact_op_prefix(
        ops in prop::collection::vec(op_strategy(), 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        // Crash-consistency: cutting the WAL at an arbitrary byte and
        // recovering must yield the state after some *whole prefix* of
        // the applied operations (batches atomic) — never a torn or
        // invented state. Auto-flush is disabled so the WAL is the
        // only persistence.
        let store = Arc::new(gkfs_kvstore::MemBlobStore::new());
        let no_flush = DbOptions {
            memtable_bytes: usize::MAX >> 1,
            l0_compaction_trigger: usize::MAX >> 1,
            wal: true,
            merge_operator: Some(Arc::new(Add64MergeOperator)),
            ..DbOptions::default()
        };
        let db = Db::open(store.clone(), no_flush.clone()).unwrap();

        // Apply mutating ops, snapshotting the model after each.
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut snapshots: Vec<BTreeMap<Vec<u8>, u64>> = vec![model.clone()];
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(&key(*k), &(*v as u64).to_le_bytes()).unwrap();
                    model.insert(key(*k), *v as u64);
                }
                Op::Delete(k) => {
                    db.delete(&key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                Op::MergeAdd(k, v) => {
                    db.merge(&key(*k), &(*v as u64).to_le_bytes()).unwrap();
                    *model.entry(key(*k)).or_insert(0) =
                        model.get(&key(*k)).copied().unwrap_or(0).wrapping_add(*v as u64);
                }
                // Flush/compact/reopen are no-ops here: WAL-only run.
                _ => continue,
            }
            snapshots.push(model.clone());
        }
        drop(db);

        // Crash: keep only a prefix of the log bytes.
        let log = store.read_logs().unwrap();
        let cut = (log.len() as f64 * cut_frac) as usize;
        store.reset_log().unwrap();
        store.append_log(&log[..cut]).unwrap();

        let recovered = Db::open(store, no_flush).unwrap();
        let state: BTreeMap<Vec<u8>, u64> = recovered
            .scan_prefix(b"/kv/")
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.try_into().unwrap())))
            .collect();
        prop_assert!(
            snapshots.contains(&state),
            "recovered state is not any op-boundary prefix: {state:?}"
        );
    }

    #[test]
    fn put_if_absent_model(keys in prop::collection::vec(any::<u8>(), 1..60)) {
        let db = Db::open_memory(DbOptions::default()).unwrap();
        let mut model: BTreeMap<Vec<u8>, u8> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let inserted = db.put_if_absent(&key(*k % 16), &[i as u8]).unwrap();
            let expect = !model.contains_key(&key(*k % 16));
            prop_assert_eq!(inserted, expect);
            if expect {
                model.insert(key(*k % 16), i as u8);
            }
            // First writer's value must persist.
            let got = db.get(&key(*k % 16)).unwrap().unwrap();
            prop_assert_eq!(got[0], model[&key(*k % 16)]);
        }
    }
}
