//! Crash-recovery property: **no acknowledged write is ever lost**.
//!
//! The background flush/compaction engine acknowledges a write once it
//! is in the WAL and the memtable — long before its SSTable exists.
//! Dropping the `Db` handle without `shutdown()` is crash-equivalent:
//! background threads stop without draining, so frozen memtables die
//! mid-flight. Every acknowledged operation must still be visible
//! after reopen, reconstructed from the manifest, the `flushed_seq`
//! watermark, and WAL segment replay — with group-commit `sync` on and
//! off, and with memtables small enough that the crash lands
//! mid-background-flush.

use gkfs_kvstore::{Add64MergeOperator, Db, DbOptions, MemBlobStore, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    MergeAdd(u8, u8),
    Batch(Vec<(u8, u8)>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 20, v)),
        2 => any::<u8>().prop_map(|k| Op::Delete(k % 20)),
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::MergeAdd(k % 20, v)),
        1 => prop::collection::vec((any::<u8>(), any::<u8>()), 1..5)
            .prop_map(|kvs| Op::Batch(kvs.into_iter().map(|(k, v)| (k % 20, v)).collect())),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("/rec/{k:03}").into_bytes()
}

fn run_crash_recovery(ops: &[Op], memtable_bytes: usize, sync: bool) -> Result<(), TestCaseError> {
    let store = Arc::new(MemBlobStore::new());
    let opts = DbOptions {
        // Small memtables force rotations, so the simulated crash can
        // land while frozen memtables are queued or mid-flush.
        memtable_bytes,
        l0_compaction_trigger: 2,
        wal: true,
        sync,
        merge_operator: Some(Arc::new(Add64MergeOperator)),
        ..DbOptions::default()
    };

    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    {
        let db = Db::open(store.clone(), opts.clone()).unwrap();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(&key(*k), &(*v as u64).to_le_bytes()).unwrap();
                    model.insert(key(*k), *v as u64);
                }
                Op::Delete(k) => {
                    db.delete(&key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                Op::MergeAdd(k, v) => {
                    db.merge(&key(*k), &(*v as u64).to_le_bytes()).unwrap();
                    *model.entry(key(*k)).or_insert(0) = model
                        .get(&key(*k))
                        .copied()
                        .unwrap_or(0)
                        .wrapping_add(*v as u64);
                }
                Op::Batch(kvs) => {
                    let mut b = WriteBatch::new();
                    for (k, v) in kvs {
                        b.put(&key(*k), &(*v as u64).to_le_bytes());
                        model.insert(key(*k), *v as u64);
                    }
                    db.write(b).unwrap();
                }
            }
        }
        // Crash: drop without shutdown(). Background flushes may be
        // queued or in flight right now.
    }

    let recovered = Db::open(store, opts).unwrap();
    let state: BTreeMap<Vec<u8>, u64> = recovered
        .scan_prefix(b"/rec/")
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, u64::from_le_bytes(v.try_into().unwrap())))
        .collect();
    prop_assert_eq!(
        &model,
        &state,
        "every acknowledged op must survive the crash"
    );
    // Point reads agree with the scan.
    for k in 0..20u8 {
        let got = recovered
            .get(&key(k))
            .unwrap()
            .map(|v| u64::from_le_bytes(v.try_into().unwrap()));
        prop_assert_eq!(model.get(&key(k)).copied(), got, "probe {}", k);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn acked_writes_survive_crash(ops in prop::collection::vec(op_strategy(), 1..150)) {
        run_crash_recovery(&ops, 1024, false)?;
    }

    #[test]
    fn acked_writes_survive_crash_with_sync(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_crash_recovery(&ops, 1024, true)?;
    }

    #[test]
    fn acked_writes_survive_crash_without_rotation(ops in prop::collection::vec(op_strategy(), 1..60)) {
        // Everything stays in the active memtable: pure WAL replay.
        run_crash_recovery(&ops, usize::MAX >> 1, false)?;
    }
}
