//! Property tests for the SSTable layer in isolation: point lookups
//! and range iteration must agree with an ordered reference map for
//! arbitrary key sets and block-boundary layouts.

use gkfs_kvstore::sstable::{Table, TableBuilder, Tag};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Strings over `[a-f]` of length `min..=max`, spelled out as an
/// explicit generator (equivalent to the regex strategy `[a-f]{min,max}`).
fn af_key(min: usize, max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..6, min..max + 1)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

fn build(entries: &BTreeMap<Vec<u8>, (Tag, Vec<u8>)>) -> Table {
    let mut b = TableBuilder::new(entries.len());
    for (k, (tag, v)) in entries {
        b.add(*tag, k, v);
    }
    Table::open(Arc::new(b.finish())).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn point_lookups_match_reference(
        keys in prop::collection::btree_set(af_key(1, 6), 0..60),
        value_len in 0usize..600, // spans multiple 4 KiB blocks at the top end
        probes in prop::collection::vec(af_key(1, 6), 0..30),
    ) {
        let entries: BTreeMap<Vec<u8>, (Tag, Vec<u8>)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let tag = if i % 5 == 3 { Tag::Delete } else { Tag::Put };
                let v = if tag == Tag::Delete {
                    Vec::new()
                } else {
                    vec![i as u8; value_len]
                };
                (k.clone().into_bytes(), (tag, v))
            })
            .collect();
        let table = build(&entries);
        prop_assert_eq!(table.len() as usize, entries.len());

        // Every stored key resolves with the right tag and value.
        for (k, (tag, v)) in &entries {
            let got = table.get(k).unwrap();
            prop_assert_eq!(got, Some((*tag, v.clone())), "key {:?}", k);
        }
        // Probes (present or not) agree with the reference.
        for p in &probes {
            let got = table.get(p.as_bytes()).unwrap();
            let expect = entries.get(p.as_bytes()).cloned();
            prop_assert_eq!(got, expect, "probe {:?}", p);
        }
    }

    #[test]
    fn iter_from_matches_reference_range(
        keys in prop::collection::btree_set(af_key(1, 6), 0..60),
        start in af_key(0, 6),
    ) {
        let entries: BTreeMap<Vec<u8>, (Tag, Vec<u8>)> = keys
            .iter()
            .map(|k| (k.clone().into_bytes(), (Tag::Put, k.clone().into_bytes())))
            .collect();
        let table = build(&entries);
        let got: Vec<Vec<u8>> = table
            .iter_from(start.as_bytes())
            .map(|r| r.unwrap().1)
            .collect();
        let expect: Vec<Vec<u8>> = entries
            .range(start.clone().into_bytes()..)
            .map(|(k, _)| k.clone())
            .collect();
        prop_assert_eq!(got, expect, "iter_from({:?})", start);
    }
}
