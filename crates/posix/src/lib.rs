//! # gkfs-posix — the interception interface as a C ABI
//!
//! GekkoFS applications preload a client interposition library that
//! *"intercepts all file system operations and forwards them to a
//! server (GekkoFS daemon), if necessary"* (paper §III-B). The
//! interception itself is platform plumbing (`dlsym`-based symbol
//! overriding); everything behind it — descriptor management, path
//! routing, errno semantics — is what this crate exposes as a stable
//! `extern "C"` surface:
//!
//! * `gkfs_open` / `gkfs_close` / `gkfs_read` / `gkfs_write` /
//!   `gkfs_pread` / `gkfs_pwrite` / `gkfs_lseek`
//! * `gkfs_stat` / `gkfs_unlink` / `gkfs_mkdir` / `gkfs_rmdir` /
//!   `gkfs_truncate`
//! * `gkfs_rename` — always fails with `EOPNOTSUPP` (§III-A)
//!
//! All functions follow the POSIX convention: `-1` on error with the
//! error code retrievable via [`gkfs_errno`] (per-thread). Descriptors
//! live in the client's own file map, starting at 100 000 so a preload
//! shim can tell "ours" from the kernel's (`gkfs_owns_fd`).
//!
//! A process first installs a mounted client with [`install_client`]
//! (the preload library would do this in its constructor after reading
//! the hosts file).

#![warn(missing_docs)]

use gekkofs::{GekkoClient, GkfsError, OpenFlags, Whence};
use gkfs_common::lock::{rank, OrderedRwLock};
use std::cell::Cell;
use std::ffi::CStr;
use std::os::raw::{c_char, c_int};
use std::sync::Arc;

static CLIENT: OrderedRwLock<Option<Arc<GekkoClient>>> =
    OrderedRwLock::new(rank::POSIX_CLIENT, None);

thread_local! {
    static ERRNO: Cell<i32> = const { Cell::new(0) };
}

/// Install the process-wide client (what the preload constructor does).
/// Replaces any previous client.
pub fn install_client(client: Arc<GekkoClient>) {
    *CLIENT.write() = Some(client);
}

/// Remove the process-wide client (preload destructor).
pub fn uninstall_client() {
    *CLIENT.write() = None;
}

fn with_client<T>(f: impl FnOnce(&GekkoClient) -> Result<T, GkfsError>) -> Result<T, GkfsError> {
    let guard = CLIENT.read();
    match guard.as_ref() {
        Some(c) => f(c),
        None => Err(GkfsError::Rpc("no GekkoFS client installed".into())),
    }
}

fn set_errno(e: &GkfsError) {
    ERRNO.with(|c| c.set(e.errno()));
}

/// Last GekkoFS error for the calling thread, as a POSIX errno value.
#[no_mangle]
pub extern "C" fn gkfs_errno() -> c_int {
    ERRNO.with(|c| c.get())
}

/// Does this descriptor belong to GekkoFS? A preload shim calls this
/// to decide whether to forward an fd-based call to the kernel.
#[no_mangle]
pub extern "C" fn gkfs_owns_fd(fd: c_int) -> c_int {
    CLIENT
        .read()
        .as_ref()
        .map(|c| c.files().owns(fd) as c_int)
        .unwrap_or(0)
}

/// # Safety
/// `path` must be a valid NUL-terminated C string.
unsafe fn cstr<'a>(path: *const c_char) -> Result<&'a str, GkfsError> {
    if path.is_null() {
        return Err(GkfsError::InvalidArgument("NULL path".into()));
    }
    // SAFETY: `path` is non-null (checked above) and the caller
    // guarantees it is NUL-terminated and valid for reads.
    unsafe { CStr::from_ptr(path) }
        .to_str()
        .map_err(|_| GkfsError::InvalidArgument("non-UTF8 path".into()))
}

fn ret_int(r: Result<c_int, GkfsError>) -> c_int {
    match r {
        Ok(v) => v,
        Err(e) => {
            set_errno(&e);
            -1
        }
    }
}

fn ret_ssize(r: Result<isize, GkfsError>) -> isize {
    match r {
        Ok(v) => v,
        Err(e) => {
            set_errno(&e);
            -1
        }
    }
}

/// `open(2)`-alike. `flags` uses the Linux `O_*` values.
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_open(path: *const c_char, flags: c_int, _mode: u32) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        c.open(path, OpenFlags::from_posix(flags))
    }))
}

/// `close(2)`-alike.
#[no_mangle]
pub extern "C" fn gkfs_close(fd: c_int) -> c_int {
    ret_int(with_client(|c| c.close(fd).map(|_| 0)))
}

/// `write(2)`-alike.
///
/// # Safety
/// `buf` must point to at least `count` readable bytes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_write(fd: c_int, buf: *const u8, count: usize) -> isize {
    ret_ssize(with_client(|c| {
        if buf.is_null() && count > 0 {
            return Err(GkfsError::InvalidArgument("NULL buffer".into()));
        }
        // SAFETY: `buf` is non-null (checked above) and the caller
        // guarantees `count` readable bytes behind it.
        let data = unsafe { std::slice::from_raw_parts(buf, count) };
        c.write(fd, data).map(|n| n as isize)
    }))
}

/// `read(2)`-alike.
///
/// # Safety
/// `buf` must point to at least `count` writable bytes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_read(fd: c_int, buf: *mut u8, count: usize) -> isize {
    ret_ssize(with_client(|c| {
        if buf.is_null() && count > 0 {
            return Err(GkfsError::InvalidArgument("NULL buffer".into()));
        }
        let data = c.read(fd, count)?;
        // SAFETY: `buf` is non-null (checked above), the caller
        // guarantees `count` writable bytes, and `data.len() <= count`.
        unsafe { std::slice::from_raw_parts_mut(buf, data.len()) }.copy_from_slice(&data);
        Ok(data.len() as isize)
    }))
}

/// `pwrite(2)`-alike.
///
/// # Safety
/// `buf` must point to at least `count` readable bytes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_pwrite(fd: c_int, buf: *const u8, count: usize, offset: u64) -> isize {
    ret_ssize(with_client(|c| {
        if buf.is_null() && count > 0 {
            return Err(GkfsError::InvalidArgument("NULL buffer".into()));
        }
        // SAFETY: `buf` is non-null (checked above) and the caller
        // guarantees `count` readable bytes behind it.
        let data = unsafe { std::slice::from_raw_parts(buf, count) };
        c.pwrite(fd, offset, data).map(|n| n as isize)
    }))
}

/// `pread(2)`-alike.
///
/// # Safety
/// `buf` must point to at least `count` writable bytes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_pread(fd: c_int, buf: *mut u8, count: usize, offset: u64) -> isize {
    ret_ssize(with_client(|c| {
        if buf.is_null() && count > 0 {
            return Err(GkfsError::InvalidArgument("NULL buffer".into()));
        }
        let data = c.pread(fd, offset, count)?;
        // SAFETY: `buf` is non-null (checked above), the caller
        // guarantees `count` writable bytes, and `data.len() <= count`.
        unsafe { std::slice::from_raw_parts_mut(buf, data.len()) }.copy_from_slice(&data);
        Ok(data.len() as isize)
    }))
}

/// `lseek(2)`-alike. `whence`: 0 = SET, 1 = CUR, 2 = END.
#[no_mangle]
pub extern "C" fn gkfs_lseek(fd: c_int, offset: i64, whence: c_int) -> i64 {
    let r = with_client(|c| {
        let w = match whence {
            0 => Whence::Set,
            1 => Whence::Cur,
            2 => Whence::End,
            _ => return Err(GkfsError::InvalidArgument(format!("whence {whence}"))),
        };
        c.lseek(fd, offset, w)
    });
    match r {
        Ok(v) => v as i64,
        Err(e) => {
            set_errno(&e);
            -1
        }
    }
}

/// Minimal stat buffer — the fields GekkoFS maintains (§III-A drops
/// the rest).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct GkfsStat {
    /// Size.
    pub size: u64,
    /// Mode.
    pub mode: u32,
    /// 1 if directory, 0 if regular file.
    pub is_dir: u32,
    /// Ctime ns.
    pub ctime_ns: u64,
    /// Mtime ns.
    pub mtime_ns: u64,
}

/// `stat(2)`-alike.
///
/// # Safety
/// `path` must be a valid C string; `out` must be valid for writes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_stat(path: *const c_char, out: *mut GkfsStat) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        if out.is_null() {
            return Err(GkfsError::InvalidArgument("NULL stat buffer".into()));
        }
        let m = c.stat(path)?;
        // SAFETY: `out` is non-null (checked above) and the caller
        // guarantees it is valid for writes.
        unsafe { *out = GkfsStat {
            size: m.size,
            mode: m.mode,
            is_dir: m.is_dir() as u32,
            ctime_ns: m.ctime_ns,
            mtime_ns: m.mtime_ns,
        } };
        Ok(0)
    }))
}

/// `unlink(2)`-alike.
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_unlink(path: *const c_char) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        c.unlink(path).map(|_| 0)
    }))
}

/// `mkdir(2)`-alike.
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_mkdir(path: *const c_char, mode: u32) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        c.mkdir(path, mode).map(|_| 0)
    }))
}

/// `rmdir(2)`-alike.
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_rmdir(path: *const c_char) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        c.rmdir(path).map(|_| 0)
    }))
}

/// `truncate(2)`-alike.
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_truncate(path: *const c_char, size: u64) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        c.truncate(path, size).map(|_| 0)
    }))
}

/// `rename(2)`-alike — always `EOPNOTSUPP` (paper §III-A: "GekkoFS
/// does not support move or rename operations").
///
/// # Safety
/// Both paths must be valid NUL-terminated C strings.
#[no_mangle]
pub unsafe extern "C" fn gkfs_rename(from: *const c_char, to: *const c_char) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let (from, to) = unsafe { (cstr(from)?, cstr(to)?) };
        c.rename(from, to).map(|_| 0)
    }))
}

/// `fsync(2)`-alike: flush buffered size updates.
#[no_mangle]
pub extern "C" fn gkfs_fsync(fd: c_int) -> c_int {
    ret_int(with_client(|c| c.fsync(fd).map(|_| 0)))
}

/// `access(2)`-alike: 0 if the path exists (GekkoFS does not enforce
/// permissions — §III-A — so any existing path is accessible).
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_access(path: *const c_char, _mode: c_int) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        c.stat(path).map(|_| 0)
    }))
}

/// `fstat(2)`-alike: stat through an open descriptor.
///
/// # Safety
/// `out` must be valid for writes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_fstat(fd: c_int, out: *mut GkfsStat) -> c_int {
    ret_int(with_client(|c| {
        if out.is_null() {
            return Err(GkfsError::InvalidArgument("NULL stat buffer".into()));
        }
        // Through the open handle: the reported size merges the
        // handle's cached size and any unflushed write-back tail.
        let m = c.handle(fd)?.stat()?;
        // SAFETY: `out` is non-null (checked above) and the caller
        // guarantees it is valid for writes.
        unsafe { *out = GkfsStat {
            size: m.size,
            mode: m.mode,
            is_dir: m.is_dir() as u32,
            ctime_ns: m.ctime_ns,
            mtime_ns: m.mtime_ns,
        } };
        Ok(0)
    }))
}

/// `ftruncate(2)`-alike.
#[no_mangle]
pub extern "C" fn gkfs_ftruncate(fd: c_int, size: u64) -> c_int {
    ret_int(with_client(|c| {
        // Through the open handle: buffered writes flush first
        // (program order), then the truncate applies.
        c.handle(fd)?.truncate(size).map(|_| 0)
    }))
}

/// `dup(2)`-alike.
#[no_mangle]
pub extern "C" fn gkfs_dup(fd: c_int) -> c_int {
    ret_int(with_client(|c| c.dup(fd)))
}

// -------------------------------------------------------------------
// Directory streams — opendir/readdir/closedir
//
// The paper's client file map manages "the file descriptors of open
// files and directories" (§III-B-a); directory streams are resolved
// entirely client-side from one broadcast snapshot, which also gives
// the stable iteration POSIX requires even while the (eventually
// consistent) directory keeps changing underneath.
// -------------------------------------------------------------------

/// One `readdir` entry as seen through the C ABI.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct GkfsDirent {
    /// NUL-terminated name, truncated to 255 bytes.
    pub name: [u8; 256],
    /// 1 if directory, 0 if regular file.
    pub is_dir: u32,
    /// Size.
    pub size: u64,
}

impl Default for GkfsDirent {
    fn default() -> Self {
        GkfsDirent {
            name: [0; 256],
            is_dir: 0,
            size: 0,
        }
    }
}

struct DirStream {
    entries: Vec<gekkofs::Dirent>,
    cursor: usize,
}

static DIR_STREAMS: OrderedRwLock<Option<std::collections::HashMap<c_int, DirStream>>> =
    OrderedRwLock::new(rank::POSIX_DIR_STREAMS, None);
static NEXT_DIR_FD: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(200_000);

/// `opendir(3)`-alike: snapshot the listing, return a directory
/// descriptor (distinct range from file descriptors).
///
/// # Safety
/// `path` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn gkfs_opendir(path: *const c_char) -> c_int {
    ret_int(with_client(|c| {
        // SAFETY: forwarding this function's own caller contract.
        let path = unsafe { cstr(path)? };
        let entries = c.readdir(path)?;
        let fd = NEXT_DIR_FD.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut guard = DIR_STREAMS.write();
        guard
            .get_or_insert_with(Default::default)
            .insert(fd, DirStream { entries, cursor: 0 });
        Ok(fd)
    }))
}

/// `readdir(3)`-alike: copy the next entry into `out`. Returns 1 if an
/// entry was produced, 0 at end of stream, -1 on error.
///
/// # Safety
/// `out` must be valid for writes.
#[no_mangle]
pub unsafe extern "C" fn gkfs_readdir(dirfd: c_int, out: *mut GkfsDirent) -> c_int {
    if out.is_null() {
        ERRNO.with(|c| c.set(22)); // EINVAL
        return -1;
    }
    let mut guard = DIR_STREAMS.write();
    let Some(stream) = guard.as_mut().and_then(|m| m.get_mut(&dirfd)) else {
        ERRNO.with(|c| c.set(9)); // EBADF
        return -1;
    };
    if stream.cursor >= stream.entries.len() {
        return 0;
    }
    let e = &stream.entries[stream.cursor];
    stream.cursor += 1;
    let mut d = GkfsDirent {
        is_dir: matches!(e.kind, gekkofs::FileKind::Directory) as u32,
        size: e.size,
        ..GkfsDirent::default()
    };
    let bytes = e.name.as_bytes();
    let n = bytes.len().min(255);
    d.name[..n].copy_from_slice(&bytes[..n]);
    // SAFETY: `out` is non-null (checked above) and the caller
    // guarantees it is valid for writes.
    unsafe { *out = d };
    1
}

/// `rewinddir(3)`-alike.
#[no_mangle]
pub extern "C" fn gkfs_rewinddir(dirfd: c_int) -> c_int {
    let mut guard = DIR_STREAMS.write();
    match guard.as_mut().and_then(|m| m.get_mut(&dirfd)) {
        Some(s) => {
            s.cursor = 0;
            0
        }
        None => {
            ERRNO.with(|c| c.set(9));
            -1
        }
    }
}

/// `closedir(3)`-alike.
#[no_mangle]
pub extern "C" fn gkfs_closedir(dirfd: c_int) -> c_int {
    let mut guard = DIR_STREAMS.write();
    match guard.as_mut().and_then(|m| m.remove(&dirfd)) {
        Some(_) => 0,
        None => {
            ERRNO.with(|c| c.set(9));
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gekkofs::{Cluster, ClusterConfig};
    use std::ffi::CString;

    // The installed client is process-global, so tests must not
    // interleave: each takes this lock for its whole body.
    static TEST_LOCK: gkfs_common::lock::OrderedMutex<()> =
        gkfs_common::lock::OrderedMutex::new(rank::POSIX_TEST, ());

    fn setup() -> (Cluster, gkfs_common::lock::OrderedMutexGuard<'static, ()>) {
        let guard = TEST_LOCK.lock();
        let cluster = Cluster::deploy(ClusterConfig::new(2)).unwrap();
        install_client(Arc::new(cluster.mount().unwrap()));
        (cluster, guard)
    }

    fn c(path: &str) -> CString {
        CString::new(path).unwrap()
    }

    // POSIX flag constants used by the tests.
    const O_RDONLY: c_int = 0;
    const O_WRONLY: c_int = 0o1;
    const O_RDWR: c_int = 0o2;
    const O_CREAT: c_int = 0o100;
    const O_EXCL: c_int = 0o200;

    #[test]
    fn full_posix_cycle() {
        let (_cluster, _guard) = setup();
        unsafe {
            let path = c("/posix-file");
            let fd = gkfs_open(path.as_ptr(), O_CREAT | O_EXCL | O_RDWR, 0o644);
            assert!(fd >= 100_000, "GekkoFS fds start above the kernel range");
            assert_eq!(gkfs_owns_fd(fd), 1);
            assert_eq!(gkfs_owns_fd(3), 0);

            let data = b"written through the C ABI";
            assert_eq!(gkfs_write(fd, data.as_ptr(), data.len()), data.len() as isize);
            assert_eq!(gkfs_lseek(fd, 0, 0), 0);

            let mut buf = [0u8; 64];
            let n = gkfs_read(fd, buf.as_mut_ptr(), buf.len());
            assert_eq!(n, data.len() as isize);
            assert_eq!(&buf[..n as usize], data);

            let mut st = GkfsStat::default();
            assert_eq!(gkfs_stat(path.as_ptr(), &mut st), 0);
            assert_eq!(st.size, data.len() as u64);
            assert_eq!(st.is_dir, 0);

            assert_eq!(gkfs_fsync(fd), 0);
            assert_eq!(gkfs_close(fd), 0);
            assert_eq!(gkfs_unlink(path.as_ptr()), 0);
            assert_eq!(gkfs_unlink(path.as_ptr()), -1);
            assert_eq!(gkfs_errno(), 2, "ENOENT");
        }
        uninstall_client();
    }

    #[test]
    fn pread_pwrite_and_truncate() {
        let (_cluster, _guard) = setup();
        unsafe {
            let path = c("/posix-p");
            let fd = gkfs_open(path.as_ptr(), O_CREAT | O_RDWR, 0o644);
            assert!(fd > 0);
            let data = b"0123456789";
            assert_eq!(gkfs_pwrite(fd, data.as_ptr(), 10, 100), 10);
            let mut buf = [0u8; 4];
            assert_eq!(gkfs_pread(fd, buf.as_mut_ptr(), 4, 103), 4);
            assert_eq!(&buf, b"3456");
            assert_eq!(gkfs_truncate(path.as_ptr(), 50), 0);
            let mut st = GkfsStat::default();
            gkfs_stat(path.as_ptr(), &mut st);
            assert_eq!(st.size, 50);
            gkfs_close(fd);
        }
        uninstall_client();
    }

    #[test]
    fn directories_and_rename_refusal() {
        let (_cluster, _guard) = setup();
        unsafe {
            let dir = c("/posix-dir");
            assert_eq!(gkfs_mkdir(dir.as_ptr(), 0o755), 0);
            let f = c("/posix-dir/file");
            let fd = gkfs_open(f.as_ptr(), O_CREAT | O_WRONLY, 0o644);
            gkfs_close(fd);
            // rmdir non-empty fails with ENOTEMPTY.
            assert_eq!(gkfs_rmdir(dir.as_ptr()), -1);
            assert_eq!(gkfs_errno(), 39);
            // rename always refuses.
            let to = c("/elsewhere");
            assert_eq!(gkfs_rename(f.as_ptr(), to.as_ptr()), -1);
            assert_eq!(gkfs_errno(), 95, "EOPNOTSUPP");
            gkfs_unlink(f.as_ptr());
            assert_eq!(gkfs_rmdir(dir.as_ptr()), 0);
        }
        uninstall_client();
    }

    #[test]
    fn directory_stream_cycle() {
        let (_cluster, _guard) = setup();
        unsafe {
            let dir = c("/stream");
            gkfs_mkdir(dir.as_ptr(), 0o755);
            for name in ["alpha", "beta", "gamma"] {
                let p = c(&format!("/stream/{name}"));
                let fd = gkfs_open(p.as_ptr(), O_CREAT | O_WRONLY, 0o644);
                let payload = name.as_bytes();
                gkfs_write(fd, payload.as_ptr(), payload.len());
                gkfs_close(fd);
            }
            let sub = c("/stream/subdir");
            gkfs_mkdir(sub.as_ptr(), 0o755);

            let dirfd = gkfs_opendir(dir.as_ptr());
            assert!(dirfd >= 200_000, "dir fds live in their own range");
            let mut seen = Vec::new();
            let mut ent = GkfsDirent::default();
            while gkfs_readdir(dirfd, &mut ent) == 1 {
                let len = ent.name.iter().position(|&b| b == 0).unwrap();
                let name = String::from_utf8(ent.name[..len].to_vec()).unwrap();
                seen.push((name, ent.is_dir, ent.size));
            }
            assert_eq!(seen.len(), 4);
            assert!(seen.contains(&("alpha".into(), 0, 5)));
            assert!(seen.contains(&("subdir".into(), 1, 0)));
            // rewind restarts the stream on the same snapshot.
            assert_eq!(gkfs_rewinddir(dirfd), 0);
            let mut count = 0;
            while gkfs_readdir(dirfd, &mut ent) == 1 {
                count += 1;
            }
            assert_eq!(count, 4);
            assert_eq!(gkfs_closedir(dirfd), 0);
            // Closed stream is invalid.
            assert_eq!(gkfs_readdir(dirfd, &mut ent), -1);
            assert_eq!(gkfs_errno(), 9, "EBADF");
            assert_eq!(gkfs_closedir(dirfd), -1);
        }
        uninstall_client();
    }

    #[test]
    fn access_fstat_ftruncate_dup() {
        let (_cluster, _guard) = setup();
        unsafe {
            let p = c("/misc");
            assert_eq!(gkfs_access(p.as_ptr(), 0), -1, "missing: ENOENT");
            assert_eq!(gkfs_errno(), 2);
            let fd = gkfs_open(p.as_ptr(), O_CREAT | O_RDWR, 0o644);
            assert_eq!(gkfs_access(p.as_ptr(), 0), 0);

            let data = b"0123456789";
            gkfs_write(fd, data.as_ptr(), data.len());
            let mut st = GkfsStat::default();
            assert_eq!(gkfs_fstat(fd, &mut st), 0);
            assert_eq!(st.size, 10);

            assert_eq!(gkfs_ftruncate(fd, 4), 0);
            gkfs_fstat(fd, &mut st);
            assert_eq!(st.size, 4);

            // dup shares the offset.
            let fd2 = gkfs_dup(fd);
            assert!(fd2 > fd);
            assert_eq!(gkfs_lseek(fd, 0, 0), 0);
            let mut buf = [0u8; 8];
            assert_eq!(gkfs_read(fd2, buf.as_mut_ptr(), 8), 4, "reads via dup");
            assert_eq!(&buf[..4], b"0123");

            gkfs_close(fd);
            gkfs_close(fd2);
            assert_eq!(gkfs_fstat(fd, &mut st), -1);
            assert_eq!(gkfs_errno(), 9, "EBADF");
            gkfs_unlink(p.as_ptr());
        }
        uninstall_client();
    }

    #[test]
    fn opendir_errors() {
        let (_cluster, _guard) = setup();
        unsafe {
            let missing = c("/no-such-dir");
            assert_eq!(gkfs_opendir(missing.as_ptr()), -1);
            assert_eq!(gkfs_errno(), 2, "ENOENT");
            // opendir of a file is ENOTDIR.
            let f = c("/plain");
            let fd = gkfs_open(f.as_ptr(), O_CREAT | O_WRONLY, 0o644);
            gkfs_close(fd);
            assert_eq!(gkfs_opendir(f.as_ptr()), -1);
            assert_eq!(gkfs_errno(), 20, "ENOTDIR");
        }
        uninstall_client();
    }

    #[test]
    fn c_abi_is_thread_safe() {
        // A preloaded application is usually multithreaded; every
        // entry point must tolerate concurrent callers (the errno is
        // per-thread, the descriptor table shared).
        let (_cluster, _guard) = setup();
        std::thread::scope(|s| {
            for t in 0..6 {
                s.spawn(move || unsafe {
                    let path = c(&format!("/mt-{t}"));
                    let fd = gkfs_open(path.as_ptr(), O_CREAT | O_RDWR, 0o644);
                    assert!(fd > 0, "thread {t} open failed");
                    let data = vec![t as u8 + 1; 4096];
                    for i in 0..8u64 {
                        assert_eq!(
                            gkfs_pwrite(fd, data.as_ptr(), data.len(), i * 4096),
                            4096
                        );
                    }
                    let mut st = GkfsStat::default();
                    assert_eq!(gkfs_fstat(fd, &mut st), 0);
                    assert_eq!(st.size, 8 * 4096);
                    let mut buf = vec![0u8; 4096];
                    assert_eq!(gkfs_pread(fd, buf.as_mut_ptr(), 4096, 3 * 4096), 4096);
                    assert!(buf.iter().all(|&b| b == t as u8 + 1));
                    // A bad call poisons only THIS thread's errno.
                    assert_eq!(gkfs_close(9999), -1);
                    assert_eq!(gkfs_errno(), 9);
                    assert_eq!(gkfs_close(fd), 0);
                    assert_eq!(gkfs_unlink(path.as_ptr()), 0);
                });
            }
        });
        uninstall_client();
    }

    #[test]
    fn errors_without_client() {
        let _guard = TEST_LOCK.lock();
        uninstall_client();
        unsafe {
            let path = c("/x");
            assert_eq!(gkfs_open(path.as_ptr(), O_RDONLY, 0), -1);
            assert!(gkfs_errno() != 0);
        }
    }

    #[test]
    fn null_and_bad_args() {
        let (_cluster, _guard) = setup();
        unsafe {
            assert_eq!(gkfs_open(std::ptr::null(), O_RDONLY, 0), -1);
            assert_eq!(gkfs_errno(), 22, "EINVAL");
            let path = c("/f");
            assert_eq!(gkfs_stat(path.as_ptr(), std::ptr::null_mut()), -1);
            assert_eq!(gkfs_lseek(99, 0, 7), -1);
            assert_eq!(gkfs_close(42), -1);
            assert_eq!(gkfs_errno(), 9, "EBADF");
        }
        uninstall_client();
    }
}
