//! Property tests: both chunk-storage backends against a byte-array
//! model, including truncate interactions — and against *each other*
//! (the contract says they must be indistinguishable).

use gkfs_storage::{ChunkStorage, FileChunkStorage, MemChunkStorage};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write { chunk: u8, offset: u16, len: u8, fill: u8 },
    Read { chunk: u8, offset: u16, len: u16 },
    Truncate { keep_chunk: u8, keep_bytes: u16 },
    RemoveAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>())
            .prop_map(|(chunk, offset, len, fill)| Op::Write {
                chunk: chunk % 6,
                offset: offset % 2000,
                len,
                fill,
            }),
        4 => (any::<u8>(), any::<u16>(), any::<u16>())
            .prop_map(|(chunk, offset, len)| Op::Read {
                chunk: chunk % 6,
                offset: offset % 2500,
                len: len % 2500,
            }),
        1 => (any::<u8>(), any::<u16>()).prop_map(|(keep_chunk, keep_bytes)| Op::Truncate {
            keep_chunk: keep_chunk % 6,
            keep_bytes: keep_bytes % 2500,
        }),
        1 => Just(Op::RemoveAll),
    ]
}

/// Reference model: chunk id → dense bytes.
#[derive(Default)]
struct Model {
    chunks: HashMap<u64, Vec<u8>>,
}

impl Model {
    fn write(&mut self, chunk: u64, offset: usize, data: &[u8]) {
        let c = self.chunks.entry(chunk).or_default();
        let end = offset + data.len();
        if c.len() < end {
            c.resize(end, 0);
        }
        c[offset..end].copy_from_slice(data);
    }
    fn read(&self, chunk: u64, offset: usize, len: usize) -> Vec<u8> {
        self.chunks
            .get(&chunk)
            .map(|c| {
                let start = offset.min(c.len());
                let end = (offset + len).min(c.len());
                c[start..end].to_vec()
            })
            .unwrap_or_default()
    }
    fn truncate(&mut self, keep_chunk: u64, keep_bytes: usize) {
        self.chunks.retain(|&id, _| id <= keep_chunk);
        if let Some(c) = self.chunks.get_mut(&keep_chunk) {
            if c.len() > keep_bytes {
                c.truncate(keep_bytes);
            }
        }
    }
}

fn exercise(storage: &dyn ChunkStorage, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model = Model::default();
    const PATH: &str = "/prop/file";
    for op in ops {
        match op {
            Op::Write { chunk, offset, len, fill } => {
                let data = vec![*fill; *len as usize];
                if !data.is_empty() {
                    storage
                        .write_chunk(PATH, *chunk as u64, *offset as u64, &data)
                        .unwrap();
                    model.write(*chunk as u64, *offset as usize, &data);
                }
            }
            Op::Read { chunk, offset, len } => {
                let got = storage
                    .read_chunk(PATH, *chunk as u64, *offset as u64, *len as u64)
                    .unwrap();
                let expect = model.read(*chunk as u64, *offset as usize, *len as usize);
                prop_assert_eq!(expect, got, "read c{} @{}+{}", chunk, offset, len);
            }
            Op::Truncate { keep_chunk, keep_bytes } => {
                storage
                    .truncate_chunks(PATH, *keep_chunk as u64, *keep_bytes as u64)
                    .unwrap();
                model.truncate(*keep_chunk as u64, *keep_bytes as usize);
            }
            Op::RemoveAll => {
                storage.remove_chunks(PATH).unwrap();
                model.chunks.clear();
            }
        }
        prop_assert_eq!(
            storage.chunk_count(PATH).unwrap(),
            model.chunks.len(),
            "chunk count"
        );
    }
    Ok(())
}

/// Partition one chunk into adjacent segments, deal the segments
/// round-robin to `threads` writers, and let them all hammer
/// `write_chunk` on the *same* chunk concurrently. Disjoint-range
/// writes must commute: the fd cache hands every writer the same
/// positional descriptor (file backend) and the shard lock serializes
/// resizes (mem backend), so the final bytes must equal the serial
/// concatenation no matter the interleaving.
fn exercise_concurrent(
    storage: &dyn ChunkStorage,
    seg_lens: &[u16],
    threads: usize,
) -> Result<(), TestCaseError> {
    const PATH: &str = "/prop/concurrent";
    const CHUNK: u64 = 3;
    let mut segs = Vec::with_capacity(seg_lens.len()); // (offset, len, fill)
    let mut total = 0u64;
    for (i, &len) in seg_lens.iter().enumerate() {
        let fill = (i as u8).wrapping_mul(31).wrapping_add(7);
        segs.push((total, len as u64, fill));
        total += len as u64;
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let mine: Vec<(u64, u64, u8)> =
                segs.iter().copied().skip(t).step_by(threads).collect();
            s.spawn(move || {
                for (offset, len, fill) in mine {
                    let data = vec![fill; len as usize];
                    storage.write_chunk(PATH, CHUNK, offset, &data).unwrap();
                }
            });
        }
    });
    let got = storage.read_chunk(PATH, CHUNK, 0, total).unwrap();
    let mut expect = Vec::with_capacity(total as usize);
    for &(_, len, fill) in &segs {
        expect.resize(expect.len() + len as usize, fill);
    }
    prop_assert_eq!(expect, got, "disjoint concurrent writes interleaved lossily");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn mem_backend_matches_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
        exercise(&MemChunkStorage::new(), &ops)?;
    }

    #[test]
    fn file_backend_matches_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let dir = std::env::temp_dir().join(format!(
            "gkfs-prop-storage-{}-{:x}",
            std::process::id(),
            rand_suffix()
        ));
        let result = exercise(&FileChunkStorage::open(&dir).unwrap(), &ops);
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }

    #[test]
    fn concurrent_disjoint_writes_never_corrupt_mem(
        seg_lens in prop::collection::vec(1u16..400, 2..24),
        threads in 2usize..5,
    ) {
        exercise_concurrent(&MemChunkStorage::new(), &seg_lens, threads)?;
    }

    #[test]
    fn concurrent_disjoint_writes_never_corrupt_file(
        seg_lens in prop::collection::vec(1u16..400, 2..24),
        threads in 2usize..5,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "gkfs-prop-conc-{}-{:x}",
            std::process::id(),
            rand_suffix()
        ));
        let result =
            exercise_concurrent(&FileChunkStorage::open(&dir).unwrap(), &seg_lens, threads);
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 20))
        .unwrap_or(0)
}
