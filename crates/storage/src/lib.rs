//! # gkfs-storage — the daemon's I/O persistence layer
//!
//! Paper §III-B-b: each daemon has *"an I/O persistence layer that
//! reads/writes data from/to the underlying local storage system (one
//! file per chunk)"*. This crate implements that layer twice behind
//! one trait:
//!
//! * [`FileChunkStorage`] — one file per chunk in a directory tree on
//!   the node-local file system, exactly the paper's layout (the
//!   XFS-formatted scratch SSD on MOGON II).
//! * [`MemChunkStorage`] — the same contract in memory, used by tests
//!   and the in-process cluster.
//!
//! Chunks are dense byte containers of at most `chunk_size` bytes;
//! sparse writes inside a chunk zero-fill the gap, mirroring what a
//! POSIX file gives the C++ implementation for free.

#![warn(missing_docs)]

pub mod file;
pub mod mem;
mod mmap;
pub mod stats;
#[cfg(feature = "uring")]
pub mod uring;

pub use file::FileChunkStorage;
pub use mem::MemChunkStorage;
pub use stats::StorageStats;

use bytes::Bytes;
use gkfs_common::{GkfsError, Result};
use std::sync::mpsc;

/// Reject batches whose buffer would exceed this (a malformed or
/// hostile request, not a real stripe: clients cap far below it).
pub const MAX_BATCH_BYTES: u64 = 256 * 1024 * 1024;

/// One chunk-local operation inside a batch request, carrying the
/// position of its bytes within the batch's shared buffer. For writes
/// the op's data is `bulk[buf_offset..buf_offset + len]`; for reads
/// the bytes land in the same window of the output buffer. The daemon
/// computes the windows as a running sum over the wire-order ops, so
/// ops that are adjacent in the batch *and* adjacent in the chunk file
/// are also adjacent in the buffer — what lets a backend coalesce them
/// into one positional syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOp {
    /// Chunk within the file.
    pub chunk_id: u64,
    /// Byte offset within the chunk.
    pub offset: u64,
    /// Byte count.
    pub len: u64,
    /// Byte offset of this op's window within the batch buffer.
    pub buf_offset: u64,
}

/// Validate the dense running-sum buffer layout the daemon builds
/// (`op.buf_offset` equals the sum of all earlier ops' lens) and
/// return the total byte count. An unchecked sum wraps in release
/// builds and would slip a huge batch under the size cap while the
/// per-segment scatter windows stay huge, so the sum is checked and
/// capped at [`MAX_BATCH_BYTES`].
pub fn validate_dense_layout(ops: &[BatchOp]) -> Result<u64> {
    let mut total: u64 = 0;
    for op in ops {
        if op.buf_offset != total {
            return Err(GkfsError::InvalidArgument(
                "batch buffer layout is not the dense running sum".into(),
            ));
        }
        match total.checked_add(op.len) {
            Some(t) if t <= MAX_BATCH_BYTES => total = t,
            _ => {
                return Err(GkfsError::InvalidArgument(format!(
                    "batch exceeds {MAX_BATCH_BYTES} bytes"
                )))
            }
        }
    }
    Ok(total)
}

/// `(start, end)` op-index ranges: at most `max_tasks` contiguous
/// segments, never splitting a run of ops on the same chunk (those are
/// a backend's coalescing unit).
pub fn segment(ops: &[BatchOp], max_tasks: usize) -> Vec<(usize, usize)> {
    let target = ops.len().div_ceil(max_tasks.max(1)).max(1);
    let mut segs = Vec::new();
    let mut start = 0;
    while start < ops.len() {
        let mut end = (start + target).min(ops.len());
        // Extend to the end of the current same-chunk run.
        while end < ops.len() && ops[end].chunk_id == ops[end - 1].chunk_id {
            end += 1;
        }
        segs.push((start, end));
        start = end;
    }
    segs
}

/// Direction and payload of a [`ChunkStorage::submit_batch`] call.
pub enum BatchPayload {
    /// Write: op windows index into this buffer. Shared by refcount so
    /// a backend may hand it to worker threads without copying.
    Write(Bytes),
    /// Read: the completion allocates and owns the reply buffer.
    Read,
}

/// What a completed batch yields: the reply buffer and per-op byte
/// counts for reads; both empty for writes.
#[derive(Debug, Default)]
pub struct BatchOutput {
    /// Reply bytes, windowed per [`BatchOp::buf_offset`] (reads only).
    /// Short reads leave the tail of an op's window untouched (zero).
    pub data: Vec<u8>,
    /// Bytes actually read per op, in op order (reads only).
    pub lens: Vec<u64>,
}

/// Per-segment completion message a backend's in-flight tasks post:
/// `(segment index, op-ordered lens or the segment's error)`.
pub type SegmentResult = (usize, Result<Vec<u64>>);

/// In-flight handle for a submitted batch.
///
/// [`wait`](BatchCompletion::wait) blocks until every outstanding
/// segment has completed and yields the assembled [`BatchOutput`].
/// Dropping an unawaited completion also blocks until the backend's
/// tasks are done: the completion owns the reply buffer those tasks
/// scatter into, so it must never be freed out from under them.
pub struct BatchCompletion {
    state: CompletionState,
}

enum CompletionState {
    Ready(Option<Result<BatchOutput>>),
    Pending(PendingBatch),
}

struct PendingBatch {
    rx: mpsc::Receiver<SegmentResult>,
    outstanding: usize,
    /// The shared reply buffer in-flight tasks write into (empty for
    /// writes). Owned here so it outlives every task; heap storage
    /// stays put when the completion itself moves.
    data: Vec<u8>,
    /// Per-segment lens, indexed by segment.
    seg_lens: Vec<Option<Vec<u64>>>,
}

impl PendingBatch {
    /// Receive until every outstanding segment reported (or provably
    /// died). Returns the error with the lowest segment index (op
    /// order); a closed channel with results missing means a task died
    /// without reporting — surfaced as an error, never a hang or a
    /// partial reply.
    fn drain(&mut self) -> Result<()> {
        let mut first_err: Option<(usize, GkfsError)> = None;
        while self.outstanding > 0 {
            match self.rx.recv() {
                Ok((idx, Ok(lens))) => {
                    self.seg_lens[idx] = Some(lens);
                    self.outstanding -= 1;
                }
                Ok((idx, Err(e))) => {
                    if first_err.as_ref().is_none_or(|(i, _)| idx < *i) {
                        first_err = Some((idx, e));
                    }
                    self.outstanding -= 1;
                }
                Err(_) => {
                    self.outstanding = 0;
                    return Err(first_err.map(|(_, e)| e).unwrap_or_else(|| {
                        GkfsError::Rpc("chunk batch task lost without result".into())
                    }));
                }
            }
        }
        match first_err.take() {
            None => Ok(()),
            Some((_, e)) => Err(e),
        }
    }
}

impl BatchCompletion {
    /// A completion that finished synchronously.
    pub fn ready(res: Result<BatchOutput>) -> BatchCompletion {
        BatchCompletion {
            state: CompletionState::Ready(Some(res)),
        }
    }

    /// A completion gathering `outstanding` segment results from `rx`,
    /// owning the reply buffer `data` (empty for writes) that those
    /// segments scatter into; `segments` is the total segment count.
    pub fn pending(
        rx: mpsc::Receiver<SegmentResult>,
        outstanding: usize,
        data: Vec<u8>,
        segments: usize,
    ) -> BatchCompletion {
        BatchCompletion {
            state: CompletionState::Pending(PendingBatch {
                rx,
                outstanding,
                data,
                seg_lens: vec![None; segments],
            }),
        }
    }

    /// Block until the batch completes; returns the assembled output
    /// or the first error in op order.
    pub fn wait(mut self) -> Result<BatchOutput> {
        match &mut self.state {
            CompletionState::Ready(res) => res
                .take()
                .unwrap_or_else(|| Err(GkfsError::Rpc("batch completion already taken".into()))),
            CompletionState::Pending(p) => {
                p.drain()?;
                let mut lens = Vec::new();
                for seg in &mut p.seg_lens {
                    lens.extend(std::mem::take(seg).unwrap_or_default());
                }
                Ok(BatchOutput {
                    data: std::mem::take(&mut p.data),
                    lens,
                })
            }
        }
    }
}

impl Drop for BatchCompletion {
    fn drop(&mut self) {
        if let CompletionState::Pending(p) = &mut self.state {
            // Tasks may still be scattering into `data`; block until
            // every sender is accounted for before freeing it.
            let _ = p.drain();
        }
    }
}

/// Contract for a daemon's chunk store.
///
/// `path` is the file's canonical GekkoFS path (`/a/b`); implementations
/// derive their own internal naming. All methods are thread-safe: the
/// RPC handler pool calls them concurrently.
pub trait ChunkStorage: Send + Sync {
    /// Write `data` into chunk `chunk_id` of `path` at byte `offset`
    /// within the chunk. Creates the chunk if missing; zero-fills any
    /// gap between the current chunk end and `offset`.
    fn write_chunk(&self, path: &str, chunk_id: u64, offset: u64, data: &[u8]) -> Result<()>;

    /// Read up to `len` bytes from chunk `chunk_id` at `offset`.
    /// Returns the bytes actually present — a short (possibly empty)
    /// vector if the chunk is missing or shorter than requested. The
    /// client layer turns short reads into zero-fill or EOF based on
    /// the file size from the metadata owner.
    fn read_chunk(&self, path: &str, chunk_id: u64, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Remove every chunk of `path` held by this daemon. Idempotent.
    fn remove_chunks(&self, path: &str) -> Result<()>;

    /// Drop all chunks of `path` with `chunk_id > keep_chunk`, and trim
    /// chunk `keep_chunk` itself to `keep_bytes` bytes (used by
    /// truncate; `keep_bytes == 0` with `keep_chunk == 0` empties the
    /// file but keeps it existing).
    fn truncate_chunks(&self, path: &str, keep_chunk: u64, keep_bytes: u64) -> Result<()>;

    /// Number of chunks currently stored for `path` (diagnostics).
    fn chunk_count(&self, path: &str) -> Result<usize>;

    /// Every path this store holds chunks for, with its chunk count —
    /// the daemon-side inventory behind `fsck`.
    fn list_paths(&self) -> Result<Vec<(String, usize)>>;

    /// Write a batch of chunk ops whose data lives in `bulk` at each
    /// op's `buf_offset` window. Backends may coalesce ops that are
    /// contiguous in both the chunk file and `bulk` into one syscall.
    /// The caller guarantees every window lies inside `bulk`.
    fn write_chunks_batch(&self, path: &str, ops: &[BatchOp], bulk: &[u8]) -> Result<()> {
        for op in ops {
            let a = op.buf_offset as usize;
            self.write_chunk(path, op.chunk_id, op.offset, &bulk[a..a + op.len as usize])?;
        }
        Ok(())
    }

    /// Read a batch of chunk ops directly into `out`: each op's bytes
    /// land at `out[op.buf_offset..op.buf_offset + actual]`, where
    /// `actual ≤ op.len` is the per-op count returned. Bytes past
    /// `actual` inside an op's window are left untouched (the daemon
    /// pre-zeroes the buffer). The caller guarantees the windows are
    /// disjoint and inside `out` — concurrent tasks may call this for
    /// disjoint windows of one shared reply buffer.
    fn read_chunks_batch(&self, path: &str, ops: &[BatchOp], out: &mut [u8]) -> Result<Vec<u64>> {
        let mut lens = Vec::with_capacity(ops.len());
        for op in ops {
            let data = self.read_chunk(path, op.chunk_id, op.offset, op.len)?;
            let a = op.buf_offset as usize;
            out[a..a + data.len()].copy_from_slice(&data);
            lens.push(data.len() as u64);
        }
        Ok(lens)
    }

    /// Submit a batch for completion-based execution and return an
    /// in-flight handle. Writes pull their bytes from the payload's
    /// refcounted buffer; reads scatter into a buffer the returned
    /// completion owns. The default implementation runs the batch
    /// synchronously on the calling thread; backends with an I/O
    /// engine (task pool, io_uring) overlap the batch's segments and
    /// complete asynchronously.
    fn submit_batch(&self, path: &str, ops: &[BatchOp], payload: BatchPayload) -> BatchCompletion {
        let res = (|| match payload {
            BatchPayload::Write(bulk) => {
                for op in ops {
                    if op.buf_offset.checked_add(op.len).is_none_or(|e| e > bulk.len() as u64) {
                        return Err(GkfsError::InvalidArgument(
                            "write batch op window exceeds bulk".into(),
                        ));
                    }
                }
                self.write_chunks_batch(path, ops, &bulk)?;
                Ok(BatchOutput::default())
            }
            BatchPayload::Read => {
                let total = validate_dense_layout(ops)?;
                let mut data = vec![0u8; total as usize];
                let lens = self.read_chunks_batch(path, ops, &mut data)?;
                Ok(BatchOutput { data, lens })
            }
        })();
        BatchCompletion::ready(res)
    }

    /// Operational counters.
    fn stats(&self) -> &StorageStats;
}

#[cfg(test)]
mod contract_tests {
    //! One test suite run against both implementations, so they can
    //! never drift apart.
    use super::*;
    use std::sync::Arc;

    fn storages() -> Vec<(&'static str, Arc<dyn ChunkStorage>)> {
        let dir = std::env::temp_dir().join(format!(
            "gkfs-storage-contract-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        vec![
            ("mem", Arc::new(MemChunkStorage::new())),
            ("file", Arc::new(FileChunkStorage::open(dir).unwrap())),
        ]
    }

    #[test]
    fn write_then_read_roundtrip() {
        for (name, s) in storages() {
            s.write_chunk("/f", 0, 0, b"hello world").unwrap();
            assert_eq!(s.read_chunk("/f", 0, 0, 11).unwrap(), b"hello world", "{name}");
            assert_eq!(s.read_chunk("/f", 0, 6, 5).unwrap(), b"world", "{name}");
        }
    }

    #[test]
    fn short_and_empty_reads() {
        for (name, s) in storages() {
            s.write_chunk("/f", 0, 0, b"abc").unwrap();
            // Read past the data: short.
            assert_eq!(s.read_chunk("/f", 0, 1, 100).unwrap(), b"bc", "{name}");
            // Read at the end: empty.
            assert!(s.read_chunk("/f", 0, 3, 10).unwrap().is_empty(), "{name}");
            // Missing chunk: empty.
            assert!(s.read_chunk("/f", 99, 0, 10).unwrap().is_empty(), "{name}");
            // Missing file: empty.
            assert!(s.read_chunk("/ghost", 0, 0, 10).unwrap().is_empty(), "{name}");
        }
    }

    #[test]
    fn sparse_write_zero_fills() {
        for (name, s) in storages() {
            s.write_chunk("/sparse", 0, 100, b"tail").unwrap();
            let data = s.read_chunk("/sparse", 0, 0, 104).unwrap();
            assert_eq!(data.len(), 104, "{name}");
            assert!(data[..100].iter().all(|&b| b == 0), "{name}: gap must be zeros");
            assert_eq!(&data[100..], b"tail", "{name}");
        }
    }

    #[test]
    fn overwrite_within_chunk() {
        for (name, s) in storages() {
            s.write_chunk("/ow", 2, 0, b"AAAAAAAAAA").unwrap();
            s.write_chunk("/ow", 2, 3, b"bbb").unwrap();
            assert_eq!(s.read_chunk("/ow", 2, 0, 10).unwrap(), b"AAAbbbAAAA", "{name}");
        }
    }

    #[test]
    fn chunks_are_independent() {
        for (name, s) in storages() {
            s.write_chunk("/multi", 0, 0, b"zero").unwrap();
            s.write_chunk("/multi", 5, 0, b"five").unwrap();
            assert_eq!(s.read_chunk("/multi", 0, 0, 4).unwrap(), b"zero", "{name}");
            assert_eq!(s.read_chunk("/multi", 5, 0, 4).unwrap(), b"five", "{name}");
            assert!(s.read_chunk("/multi", 1, 0, 4).unwrap().is_empty(), "{name}");
            assert_eq!(s.chunk_count("/multi").unwrap(), 2, "{name}");
        }
    }

    #[test]
    fn remove_chunks_is_idempotent() {
        for (name, s) in storages() {
            s.write_chunk("/rm", 0, 0, b"x").unwrap();
            s.write_chunk("/rm", 1, 0, b"y").unwrap();
            s.remove_chunks("/rm").unwrap();
            assert_eq!(s.chunk_count("/rm").unwrap(), 0, "{name}");
            assert!(s.read_chunk("/rm", 0, 0, 1).unwrap().is_empty(), "{name}");
            s.remove_chunks("/rm").unwrap(); // second time: no error
            s.remove_chunks("/never-existed").unwrap();
        }
    }

    #[test]
    fn truncate_drops_tail_chunks_and_trims_boundary() {
        for (name, s) in storages() {
            for c in 0..5 {
                s.write_chunk("/tr", c, 0, &[c as u8; 64]).unwrap();
            }
            // Keep chunks 0..=1; trim chunk 1 to 10 bytes.
            s.truncate_chunks("/tr", 1, 10).unwrap();
            assert_eq!(s.chunk_count("/tr").unwrap(), 2, "{name}");
            assert_eq!(s.read_chunk("/tr", 0, 0, 64).unwrap().len(), 64, "{name}");
            assert_eq!(s.read_chunk("/tr", 1, 0, 64).unwrap().len(), 10, "{name}");
            assert!(s.read_chunk("/tr", 2, 0, 64).unwrap().is_empty(), "{name}");
        }
    }

    #[test]
    fn truncate_boundary_chunk_shorter_than_keep_is_untouched() {
        for (name, s) in storages() {
            s.write_chunk("/tb", 0, 0, b"abc").unwrap();
            s.truncate_chunks("/tb", 0, 100).unwrap();
            assert_eq!(s.read_chunk("/tb", 0, 0, 100).unwrap(), b"abc", "{name}");
        }
    }

    #[test]
    fn paths_with_nested_directories() {
        for (name, s) in storages() {
            s.write_chunk("/deep/ly/nested/file.dat", 3, 7, b"payload").unwrap();
            assert_eq!(
                s.read_chunk("/deep/ly/nested/file.dat", 3, 7, 7).unwrap(),
                b"payload",
                "{name}"
            );
            // Similar names must not collide.
            s.write_chunk("/deep/ly", 0, 0, b"other").unwrap();
            assert_eq!(s.chunk_count("/deep/ly/nested/file.dat").unwrap(), 1, "{name}");
            assert_eq!(s.chunk_count("/deep/ly").unwrap(), 1, "{name}");
        }
    }

    #[test]
    fn concurrent_writers_different_chunks() {
        for (name, s) in storages() {
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in 0..50u64 {
                            let c = t * 100 + i;
                            s.write_chunk("/conc", c, 0, &c.to_le_bytes()).unwrap();
                        }
                    });
                }
            });
            assert_eq!(s.chunk_count("/conc").unwrap(), 400, "{name}");
            assert_eq!(
                s.read_chunk("/conc", 307, 0, 8).unwrap(),
                307u64.to_le_bytes(),
                "{name}"
            );
        }
    }

    #[test]
    fn list_paths_inventories_everything() {
        for (name, s) in storages() {
            assert!(s.list_paths().unwrap().is_empty(), "{name}: starts empty");
            s.write_chunk("/inv/a", 0, 0, b"x").unwrap();
            s.write_chunk("/inv/a", 1, 0, b"y").unwrap();
            s.write_chunk("/inv/b:tricky", 0, 0, b"z").unwrap();
            let mut inv = s.list_paths().unwrap();
            inv.sort();
            assert_eq!(
                inv,
                vec![
                    ("/inv/a".to_string(), 2),
                    ("/inv/b:tricky".to_string(), 1)
                ],
                "{name}"
            );
            s.remove_chunks("/inv/a").unwrap();
            assert_eq!(s.list_paths().unwrap().len(), 1, "{name}");
        }
    }

    /// Ops laid out the way the daemon builds them: consecutive wire
    /// order, buffer windows as a running sum.
    fn layout_ops(specs: &[(u64, u64, u64)]) -> Vec<BatchOp> {
        let mut ops = Vec::with_capacity(specs.len());
        let mut cursor = 0u64;
        for &(chunk_id, offset, len) in specs {
            ops.push(BatchOp {
                chunk_id,
                offset,
                len,
                buf_offset: cursor,
            });
            cursor += len;
        }
        ops
    }

    #[test]
    fn batch_roundtrip_multi_chunk() {
        for (name, s) in storages() {
            let ops = layout_ops(&[(0, 0, 64), (1, 0, 64), (2, 0, 64), (7, 16, 32)]);
            let total: u64 = ops.iter().map(|o| o.len).sum();
            let bulk: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
            s.write_chunks_batch("/batch", &ops, &bulk).unwrap();
            let mut out = vec![0u8; total as usize];
            let lens = s.read_chunks_batch("/batch", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![64, 64, 64, 32], "{name}");
            assert_eq!(out, bulk, "{name}");
            // And the single-op API sees the same bytes.
            assert_eq!(s.read_chunk("/batch", 1, 0, 64).unwrap(), &bulk[64..128], "{name}");
        }
    }

    #[test]
    fn batch_coalesces_contiguous_same_chunk_ops() {
        for (name, s) in storages() {
            // 4 file-and-buffer-contiguous slices of chunk 3, then a
            // separate chunk: the file backend merges the first run.
            let ops = layout_ops(&[(3, 0, 16), (3, 16, 16), (3, 32, 16), (3, 48, 16), (4, 0, 16)]);
            let bulk: Vec<u8> = (0..80u8).collect();
            s.write_chunks_batch("/co", &ops, &bulk).unwrap();
            let mut out = vec![0u8; 80];
            let lens = s.read_chunks_batch("/co", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![16, 16, 16, 16, 16], "{name}");
            assert_eq!(out, bulk, "{name}");
            if name == "file" {
                let (_, _, coalesced) = s.stats().engine_snapshot();
                // 3 merges on the write pass + 3 on the read pass.
                assert_eq!(coalesced, 6, "{name}: coalescing must trigger");
            }
        }
    }

    #[test]
    fn batch_read_short_and_missing_chunks() {
        for (name, s) in storages() {
            s.write_chunk("/sh", 0, 0, &[9u8; 24]).unwrap();
            // Op 0 is short (24 of 64), op 1 misses entirely.
            let ops = layout_ops(&[(0, 0, 64), (5, 0, 64)]);
            let mut out = vec![0xAAu8; 128];
            let lens = s.read_chunks_batch("/sh", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![24, 0], "{name}");
            assert_eq!(&out[..24], &[9u8; 24], "{name}");
            // Bytes past `actual` in each window are untouched.
            assert!(out[24..].iter().all(|&b| b == 0xAA), "{name}");
        }
    }

    #[test]
    fn batch_read_short_within_coalesced_run() {
        for (name, s) in storages() {
            // Chunk holds 40 bytes; a coalesced run of 4×16 must report
            // per-op lens 16,16,8,0 — EOF only truncates the tail.
            s.write_chunk("/shc", 0, 0, &[5u8; 40]).unwrap();
            let ops = layout_ops(&[(0, 0, 16), (0, 16, 16), (0, 32, 16), (0, 48, 16)]);
            let mut out = vec![0u8; 64];
            let lens = s.read_chunks_batch("/shc", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![16, 16, 8, 0], "{name}");
            assert_eq!(&out[..40], &[5u8; 40], "{name}");
        }
    }

    #[test]
    fn segments_align_to_chunk_runs() {
        let ops = layout_ops(&[(0, 0, 4), (0, 4, 4), (1, 0, 4), (2, 0, 4), (2, 4, 4)]);
        let segs = segment(&ops, 2);
        assert_eq!(segs, vec![(0, 3), (3, 5)]);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous cover");
        }
        // A run never straddles segments.
        for &(_, e) in &segs {
            if e < ops.len() {
                assert_ne!(ops[e - 1].chunk_id, ops[e].chunk_id);
            }
        }
    }

    #[test]
    fn segments_degenerate_cases() {
        assert!(segment(&[], 4).is_empty());
        let one = layout_ops(&[(0, 0, 8)]);
        assert_eq!(segment(&one, 4), vec![(0, 1)]);
        // max_tasks == 0 behaves like 1 (single inline segment).
        let many = layout_ops(&[(0, 0, 4), (1, 0, 4), (2, 0, 4)]);
        assert_eq!(segment(&many, 0), vec![(0, 3)]);
    }

    #[test]
    fn dense_layout_validation() {
        let ops = layout_ops(&[(0, 0, 16), (1, 0, 16)]);
        assert_eq!(validate_dense_layout(&ops).unwrap(), 32);
        // Hole in the layout.
        let holey = vec![BatchOp { chunk_id: 0, offset: 0, len: 8, buf_offset: 4 }];
        assert!(validate_dense_layout(&holey).is_err());
        // Oversized.
        let big = layout_ops(&[(0, 0, MAX_BATCH_BYTES + 1)]);
        assert!(validate_dense_layout(&big).is_err());
        // Wrapping sum: an unchecked total would come out tiny.
        let wrap = vec![
            BatchOp { chunk_id: 0, offset: 0, len: u64::MAX, buf_offset: 0 },
            BatchOp { chunk_id: 1, offset: 0, len: 3, buf_offset: u64::MAX },
        ];
        assert!(validate_dense_layout(&wrap).is_err());
    }

    #[test]
    fn submit_batch_roundtrip_and_short_reads() {
        for (name, s) in storages() {
            let ops = layout_ops(&[(0, 0, 64), (1, 0, 64), (2, 0, 64), (3, 0, 64)]);
            let bulk: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
            s.submit_batch("/sub", &ops, BatchPayload::Write(Bytes::from(bulk.clone())))
                .wait()
                .unwrap();
            let out = s.submit_batch("/sub", &ops, BatchPayload::Read).wait().unwrap();
            assert_eq!(out.lens, vec![64; 4], "{name}");
            assert_eq!(out.data, bulk, "{name}");
            // Short read: chunk 9 holds 10 bytes, read asks for 64.
            s.write_chunk("/sub", 9, 0, &[3u8; 10]).unwrap();
            let short = layout_ops(&[(9, 0, 64), (0, 0, 64)]);
            let out = s.submit_batch("/sub", &short, BatchPayload::Read).wait().unwrap();
            assert_eq!(out.lens, vec![10, 64], "{name}");
            assert_eq!(&out.data[..10], &[3u8; 10], "{name}");
            assert_eq!(&out.data[64..128], &bulk[..64], "{name}: window preserved");
        }
    }

    #[test]
    fn submit_batch_rejects_bad_layouts() {
        for (name, s) in storages() {
            // Write window past the bulk.
            let ops = layout_ops(&[(0, 0, 64)]);
            let res = s
                .submit_batch("/bad", &ops, BatchPayload::Write(Bytes::from(vec![0u8; 32])))
                .wait();
            assert!(res.is_err(), "{name}");
            // Non-dense read layout.
            let holey = vec![BatchOp { chunk_id: 0, offset: 0, len: 8, buf_offset: 4 }];
            assert!(
                s.submit_batch("/bad", &holey, BatchPayload::Read).wait().is_err(),
                "{name}"
            );
        }
    }

    #[test]
    fn dropping_unawaited_completion_is_safe() {
        for (name, s) in storages() {
            let ops = layout_ops(&[(0, 0, 4096), (1, 0, 4096), (2, 0, 4096), (3, 0, 4096)]);
            let bulk = Bytes::from(vec![0x5Au8; 4 * 4096]);
            s.submit_batch("/drop", &ops, BatchPayload::Write(bulk)).wait().unwrap();
            for _ in 0..8 {
                // Drop without waiting: must block in Drop until every
                // in-flight task is done, then free the buffer.
                drop(s.submit_batch("/drop", &ops, BatchPayload::Read));
            }
            let out = s.submit_batch("/drop", &ops, BatchPayload::Read).wait().unwrap();
            assert_eq!(out.lens, vec![4096; 4], "{name}");
        }
    }

    #[test]
    fn stats_track_io() {
        for (name, s) in storages() {
            s.write_chunk("/st", 0, 0, &[1u8; 100]).unwrap();
            let _ = s.read_chunk("/st", 0, 0, 100).unwrap();
            let (w_ops, w_bytes, r_ops, r_bytes) = s.stats().snapshot();
            assert_eq!(w_ops, 1, "{name}");
            assert_eq!(w_bytes, 100, "{name}");
            assert_eq!(r_ops, 1, "{name}");
            assert_eq!(r_bytes, 100, "{name}");
        }
    }
}
