//! # gkfs-storage — the daemon's I/O persistence layer
//!
//! Paper §III-B-b: each daemon has *"an I/O persistence layer that
//! reads/writes data from/to the underlying local storage system (one
//! file per chunk)"*. This crate implements that layer twice behind
//! one trait:
//!
//! * [`FileChunkStorage`] — one file per chunk in a directory tree on
//!   the node-local file system, exactly the paper's layout (the
//!   XFS-formatted scratch SSD on MOGON II).
//! * [`MemChunkStorage`] — the same contract in memory, used by tests
//!   and the in-process cluster.
//!
//! Chunks are dense byte containers of at most `chunk_size` bytes;
//! sparse writes inside a chunk zero-fill the gap, mirroring what a
//! POSIX file gives the C++ implementation for free.

#![warn(missing_docs)]

pub mod file;
pub mod mem;
pub mod stats;

pub use file::FileChunkStorage;
pub use mem::MemChunkStorage;
pub use stats::StorageStats;

use gkfs_common::Result;

/// One chunk-local operation inside a batch request, carrying the
/// position of its bytes within the batch's shared buffer. For writes
/// the op's data is `bulk[buf_offset..buf_offset + len]`; for reads
/// the bytes land in the same window of the output buffer. The daemon
/// computes the windows as a running sum over the wire-order ops, so
/// ops that are adjacent in the batch *and* adjacent in the chunk file
/// are also adjacent in the buffer — what lets a backend coalesce them
/// into one positional syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOp {
    /// Chunk within the file.
    pub chunk_id: u64,
    /// Byte offset within the chunk.
    pub offset: u64,
    /// Byte count.
    pub len: u64,
    /// Byte offset of this op's window within the batch buffer.
    pub buf_offset: u64,
}

/// Contract for a daemon's chunk store.
///
/// `path` is the file's canonical GekkoFS path (`/a/b`); implementations
/// derive their own internal naming. All methods are thread-safe: the
/// RPC handler pool calls them concurrently.
pub trait ChunkStorage: Send + Sync {
    /// Write `data` into chunk `chunk_id` of `path` at byte `offset`
    /// within the chunk. Creates the chunk if missing; zero-fills any
    /// gap between the current chunk end and `offset`.
    fn write_chunk(&self, path: &str, chunk_id: u64, offset: u64, data: &[u8]) -> Result<()>;

    /// Read up to `len` bytes from chunk `chunk_id` at `offset`.
    /// Returns the bytes actually present — a short (possibly empty)
    /// vector if the chunk is missing or shorter than requested. The
    /// client layer turns short reads into zero-fill or EOF based on
    /// the file size from the metadata owner.
    fn read_chunk(&self, path: &str, chunk_id: u64, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Remove every chunk of `path` held by this daemon. Idempotent.
    fn remove_chunks(&self, path: &str) -> Result<()>;

    /// Drop all chunks of `path` with `chunk_id > keep_chunk`, and trim
    /// chunk `keep_chunk` itself to `keep_bytes` bytes (used by
    /// truncate; `keep_bytes == 0` with `keep_chunk == 0` empties the
    /// file but keeps it existing).
    fn truncate_chunks(&self, path: &str, keep_chunk: u64, keep_bytes: u64) -> Result<()>;

    /// Number of chunks currently stored for `path` (diagnostics).
    fn chunk_count(&self, path: &str) -> Result<usize>;

    /// Every path this store holds chunks for, with its chunk count —
    /// the daemon-side inventory behind `fsck`.
    fn list_paths(&self) -> Result<Vec<(String, usize)>>;

    /// Write a batch of chunk ops whose data lives in `bulk` at each
    /// op's `buf_offset` window. Backends may coalesce ops that are
    /// contiguous in both the chunk file and `bulk` into one syscall.
    /// The caller guarantees every window lies inside `bulk`.
    fn write_chunks_batch(&self, path: &str, ops: &[BatchOp], bulk: &[u8]) -> Result<()> {
        for op in ops {
            let a = op.buf_offset as usize;
            self.write_chunk(path, op.chunk_id, op.offset, &bulk[a..a + op.len as usize])?;
        }
        Ok(())
    }

    /// Read a batch of chunk ops directly into `out`: each op's bytes
    /// land at `out[op.buf_offset..op.buf_offset + actual]`, where
    /// `actual ≤ op.len` is the per-op count returned. Bytes past
    /// `actual` inside an op's window are left untouched (the daemon
    /// pre-zeroes the buffer). The caller guarantees the windows are
    /// disjoint and inside `out` — concurrent tasks may call this for
    /// disjoint windows of one shared reply buffer.
    fn read_chunks_batch(&self, path: &str, ops: &[BatchOp], out: &mut [u8]) -> Result<Vec<u64>> {
        let mut lens = Vec::with_capacity(ops.len());
        for op in ops {
            let data = self.read_chunk(path, op.chunk_id, op.offset, op.len)?;
            let a = op.buf_offset as usize;
            out[a..a + data.len()].copy_from_slice(&data);
            lens.push(data.len() as u64);
        }
        Ok(lens)
    }

    /// Operational counters.
    fn stats(&self) -> &StorageStats;
}

#[cfg(test)]
mod contract_tests {
    //! One test suite run against both implementations, so they can
    //! never drift apart.
    use super::*;
    use std::sync::Arc;

    fn storages() -> Vec<(&'static str, Arc<dyn ChunkStorage>)> {
        let dir = std::env::temp_dir().join(format!(
            "gkfs-storage-contract-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        vec![
            ("mem", Arc::new(MemChunkStorage::new())),
            ("file", Arc::new(FileChunkStorage::open(dir).unwrap())),
        ]
    }

    #[test]
    fn write_then_read_roundtrip() {
        for (name, s) in storages() {
            s.write_chunk("/f", 0, 0, b"hello world").unwrap();
            assert_eq!(s.read_chunk("/f", 0, 0, 11).unwrap(), b"hello world", "{name}");
            assert_eq!(s.read_chunk("/f", 0, 6, 5).unwrap(), b"world", "{name}");
        }
    }

    #[test]
    fn short_and_empty_reads() {
        for (name, s) in storages() {
            s.write_chunk("/f", 0, 0, b"abc").unwrap();
            // Read past the data: short.
            assert_eq!(s.read_chunk("/f", 0, 1, 100).unwrap(), b"bc", "{name}");
            // Read at the end: empty.
            assert!(s.read_chunk("/f", 0, 3, 10).unwrap().is_empty(), "{name}");
            // Missing chunk: empty.
            assert!(s.read_chunk("/f", 99, 0, 10).unwrap().is_empty(), "{name}");
            // Missing file: empty.
            assert!(s.read_chunk("/ghost", 0, 0, 10).unwrap().is_empty(), "{name}");
        }
    }

    #[test]
    fn sparse_write_zero_fills() {
        for (name, s) in storages() {
            s.write_chunk("/sparse", 0, 100, b"tail").unwrap();
            let data = s.read_chunk("/sparse", 0, 0, 104).unwrap();
            assert_eq!(data.len(), 104, "{name}");
            assert!(data[..100].iter().all(|&b| b == 0), "{name}: gap must be zeros");
            assert_eq!(&data[100..], b"tail", "{name}");
        }
    }

    #[test]
    fn overwrite_within_chunk() {
        for (name, s) in storages() {
            s.write_chunk("/ow", 2, 0, b"AAAAAAAAAA").unwrap();
            s.write_chunk("/ow", 2, 3, b"bbb").unwrap();
            assert_eq!(s.read_chunk("/ow", 2, 0, 10).unwrap(), b"AAAbbbAAAA", "{name}");
        }
    }

    #[test]
    fn chunks_are_independent() {
        for (name, s) in storages() {
            s.write_chunk("/multi", 0, 0, b"zero").unwrap();
            s.write_chunk("/multi", 5, 0, b"five").unwrap();
            assert_eq!(s.read_chunk("/multi", 0, 0, 4).unwrap(), b"zero", "{name}");
            assert_eq!(s.read_chunk("/multi", 5, 0, 4).unwrap(), b"five", "{name}");
            assert!(s.read_chunk("/multi", 1, 0, 4).unwrap().is_empty(), "{name}");
            assert_eq!(s.chunk_count("/multi").unwrap(), 2, "{name}");
        }
    }

    #[test]
    fn remove_chunks_is_idempotent() {
        for (name, s) in storages() {
            s.write_chunk("/rm", 0, 0, b"x").unwrap();
            s.write_chunk("/rm", 1, 0, b"y").unwrap();
            s.remove_chunks("/rm").unwrap();
            assert_eq!(s.chunk_count("/rm").unwrap(), 0, "{name}");
            assert!(s.read_chunk("/rm", 0, 0, 1).unwrap().is_empty(), "{name}");
            s.remove_chunks("/rm").unwrap(); // second time: no error
            s.remove_chunks("/never-existed").unwrap();
        }
    }

    #[test]
    fn truncate_drops_tail_chunks_and_trims_boundary() {
        for (name, s) in storages() {
            for c in 0..5 {
                s.write_chunk("/tr", c, 0, &[c as u8; 64]).unwrap();
            }
            // Keep chunks 0..=1; trim chunk 1 to 10 bytes.
            s.truncate_chunks("/tr", 1, 10).unwrap();
            assert_eq!(s.chunk_count("/tr").unwrap(), 2, "{name}");
            assert_eq!(s.read_chunk("/tr", 0, 0, 64).unwrap().len(), 64, "{name}");
            assert_eq!(s.read_chunk("/tr", 1, 0, 64).unwrap().len(), 10, "{name}");
            assert!(s.read_chunk("/tr", 2, 0, 64).unwrap().is_empty(), "{name}");
        }
    }

    #[test]
    fn truncate_boundary_chunk_shorter_than_keep_is_untouched() {
        for (name, s) in storages() {
            s.write_chunk("/tb", 0, 0, b"abc").unwrap();
            s.truncate_chunks("/tb", 0, 100).unwrap();
            assert_eq!(s.read_chunk("/tb", 0, 0, 100).unwrap(), b"abc", "{name}");
        }
    }

    #[test]
    fn paths_with_nested_directories() {
        for (name, s) in storages() {
            s.write_chunk("/deep/ly/nested/file.dat", 3, 7, b"payload").unwrap();
            assert_eq!(
                s.read_chunk("/deep/ly/nested/file.dat", 3, 7, 7).unwrap(),
                b"payload",
                "{name}"
            );
            // Similar names must not collide.
            s.write_chunk("/deep/ly", 0, 0, b"other").unwrap();
            assert_eq!(s.chunk_count("/deep/ly/nested/file.dat").unwrap(), 1, "{name}");
            assert_eq!(s.chunk_count("/deep/ly").unwrap(), 1, "{name}");
        }
    }

    #[test]
    fn concurrent_writers_different_chunks() {
        for (name, s) in storages() {
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in 0..50u64 {
                            let c = t * 100 + i;
                            s.write_chunk("/conc", c, 0, &c.to_le_bytes()).unwrap();
                        }
                    });
                }
            });
            assert_eq!(s.chunk_count("/conc").unwrap(), 400, "{name}");
            assert_eq!(
                s.read_chunk("/conc", 307, 0, 8).unwrap(),
                307u64.to_le_bytes(),
                "{name}"
            );
        }
    }

    #[test]
    fn list_paths_inventories_everything() {
        for (name, s) in storages() {
            assert!(s.list_paths().unwrap().is_empty(), "{name}: starts empty");
            s.write_chunk("/inv/a", 0, 0, b"x").unwrap();
            s.write_chunk("/inv/a", 1, 0, b"y").unwrap();
            s.write_chunk("/inv/b:tricky", 0, 0, b"z").unwrap();
            let mut inv = s.list_paths().unwrap();
            inv.sort();
            assert_eq!(
                inv,
                vec![
                    ("/inv/a".to_string(), 2),
                    ("/inv/b:tricky".to_string(), 1)
                ],
                "{name}"
            );
            s.remove_chunks("/inv/a").unwrap();
            assert_eq!(s.list_paths().unwrap().len(), 1, "{name}");
        }
    }

    /// Ops laid out the way the daemon builds them: consecutive wire
    /// order, buffer windows as a running sum.
    fn layout_ops(specs: &[(u64, u64, u64)]) -> Vec<BatchOp> {
        let mut ops = Vec::with_capacity(specs.len());
        let mut cursor = 0u64;
        for &(chunk_id, offset, len) in specs {
            ops.push(BatchOp {
                chunk_id,
                offset,
                len,
                buf_offset: cursor,
            });
            cursor += len;
        }
        ops
    }

    #[test]
    fn batch_roundtrip_multi_chunk() {
        for (name, s) in storages() {
            let ops = layout_ops(&[(0, 0, 64), (1, 0, 64), (2, 0, 64), (7, 16, 32)]);
            let total: u64 = ops.iter().map(|o| o.len).sum();
            let bulk: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
            s.write_chunks_batch("/batch", &ops, &bulk).unwrap();
            let mut out = vec![0u8; total as usize];
            let lens = s.read_chunks_batch("/batch", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![64, 64, 64, 32], "{name}");
            assert_eq!(out, bulk, "{name}");
            // And the single-op API sees the same bytes.
            assert_eq!(s.read_chunk("/batch", 1, 0, 64).unwrap(), &bulk[64..128], "{name}");
        }
    }

    #[test]
    fn batch_coalesces_contiguous_same_chunk_ops() {
        for (name, s) in storages() {
            // 4 file-and-buffer-contiguous slices of chunk 3, then a
            // separate chunk: the file backend merges the first run.
            let ops = layout_ops(&[(3, 0, 16), (3, 16, 16), (3, 32, 16), (3, 48, 16), (4, 0, 16)]);
            let bulk: Vec<u8> = (0..80u8).collect();
            s.write_chunks_batch("/co", &ops, &bulk).unwrap();
            let mut out = vec![0u8; 80];
            let lens = s.read_chunks_batch("/co", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![16, 16, 16, 16, 16], "{name}");
            assert_eq!(out, bulk, "{name}");
            if name == "file" {
                let (_, _, coalesced) = s.stats().engine_snapshot();
                // 3 merges on the write pass + 3 on the read pass.
                assert_eq!(coalesced, 6, "{name}: coalescing must trigger");
            }
        }
    }

    #[test]
    fn batch_read_short_and_missing_chunks() {
        for (name, s) in storages() {
            s.write_chunk("/sh", 0, 0, &[9u8; 24]).unwrap();
            // Op 0 is short (24 of 64), op 1 misses entirely.
            let ops = layout_ops(&[(0, 0, 64), (5, 0, 64)]);
            let mut out = vec![0xAAu8; 128];
            let lens = s.read_chunks_batch("/sh", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![24, 0], "{name}");
            assert_eq!(&out[..24], &[9u8; 24], "{name}");
            // Bytes past `actual` in each window are untouched.
            assert!(out[24..].iter().all(|&b| b == 0xAA), "{name}");
        }
    }

    #[test]
    fn batch_read_short_within_coalesced_run() {
        for (name, s) in storages() {
            // Chunk holds 40 bytes; a coalesced run of 4×16 must report
            // per-op lens 16,16,8,0 — EOF only truncates the tail.
            s.write_chunk("/shc", 0, 0, &[5u8; 40]).unwrap();
            let ops = layout_ops(&[(0, 0, 16), (0, 16, 16), (0, 32, 16), (0, 48, 16)]);
            let mut out = vec![0u8; 64];
            let lens = s.read_chunks_batch("/shc", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![16, 16, 8, 0], "{name}");
            assert_eq!(&out[..40], &[5u8; 40], "{name}");
        }
    }

    #[test]
    fn stats_track_io() {
        for (name, s) in storages() {
            s.write_chunk("/st", 0, 0, &[1u8; 100]).unwrap();
            let _ = s.read_chunk("/st", 0, 0, 100).unwrap();
            let (w_ops, w_bytes, r_ops, r_bytes) = s.stats().snapshot();
            assert_eq!(w_ops, 1, "{name}");
            assert_eq!(w_bytes, 100, "{name}");
            assert_eq!(r_ops, 1, "{name}");
            assert_eq!(r_bytes, 100, "{name}");
        }
    }
}
