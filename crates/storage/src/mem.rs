//! In-memory chunk storage.
//!
//! Same contract as [`crate::FileChunkStorage`], held in a sharded map.
//! Used by tests and by in-process clusters where exercising a real
//! disk would only add noise. Sharding by path hash keeps concurrent
//! writers of *different* files off each other's locks; batches for
//! one file intentionally serialize on their shard lock (the ops are
//! memcpys — see `write_chunks_batch`), so this store keeps the
//! trait's serial [`ChunkStorage::submit_batch`] default: parallel
//! fan-out and io_uring only pay off on the file backend.

use crate::stats::StorageStats;
use crate::{BatchOp, ChunkStorage};
use gkfs_common::hash::fnv1a64;
use gkfs_common::Result;
use gkfs_common::lock::{rank, OrderedRwLock};
use std::collections::HashMap;

const SHARDS: usize = 16;

type ChunkMap = HashMap<String, HashMap<u64, Vec<u8>>>;

/// Heap-backed chunk store.
pub struct MemChunkStorage {
    shards: Vec<OrderedRwLock<ChunkMap>>,
    stats: StorageStats,
}

impl Default for MemChunkStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl MemChunkStorage {
    /// New.
    pub fn new() -> MemChunkStorage {
        MemChunkStorage {
            shards: (0..SHARDS)
                .map(|_| OrderedRwLock::new(rank::STORAGE_SHARD, HashMap::new()))
                .collect(),
            stats: StorageStats::default(),
        }
    }

    fn shard(&self, path: &str) -> &OrderedRwLock<ChunkMap> {
        &self.shards[(fnv1a64(path.as_bytes()) % SHARDS as u64) as usize]
    }

    /// Total bytes held across all chunks (diagnostics).
    pub fn total_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard.read()
                    .values()
                    .flat_map(|chunks| chunks.values().map(|c| c.len()))
                    .sum::<usize>()
            })
            .sum()
    }
}

impl ChunkStorage for MemChunkStorage {
    fn write_chunk(&self, path: &str, chunk_id: u64, offset: u64, data: &[u8]) -> Result<()> {
        self.stats.record_write(data.len());
        let mut shard = self.shard(path).write();
        let chunk = shard
            .entry(path.to_string())
            .or_default()
            .entry(chunk_id)
            .or_default();
        let end = (offset as usize) + data.len();
        if chunk.len() < end {
            chunk.resize(end, 0);
        }
        chunk[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read_chunk(&self, path: &str, chunk_id: u64, offset: u64, len: u64) -> Result<Vec<u8>> {
        let shard = self.shard(path).read();
        let data = shard
            .get(path)
            .and_then(|chunks| chunks.get(&chunk_id))
            .map(|chunk| {
                let start = (offset as usize).min(chunk.len());
                let end = ((offset + len) as usize).min(chunk.len());
                chunk[start..end].to_vec()
            })
            .unwrap_or_default();
        self.stats.record_read(data.len());
        Ok(data)
    }

    fn write_chunks_batch(&self, path: &str, ops: &[BatchOp], bulk: &[u8]) -> Result<()> {
        // One shard-lock acquisition for the whole batch; all ops of a
        // batch share `path` and therefore a shard. This deliberately
        // serializes the engine's parallel segments for one file: the
        // ops are memcpys, so re-acquiring the lock per run would cost
        // more than it overlaps. Parallel-batch speedups therefore
        // apply to the file backend only (see EXPERIMENTS.md).
        let mut shard = self.shard(path).write();
        let chunks = shard.entry(path.to_string()).or_default();
        for op in ops {
            self.stats.record_write(op.len as usize);
            let chunk = chunks.entry(op.chunk_id).or_default();
            let end = (op.offset + op.len) as usize;
            if chunk.len() < end {
                chunk.resize(end, 0);
            }
            let a = op.buf_offset as usize;
            chunk[op.offset as usize..end].copy_from_slice(&bulk[a..a + op.len as usize]);
        }
        Ok(())
    }

    fn read_chunks_batch(&self, path: &str, ops: &[BatchOp], out: &mut [u8]) -> Result<Vec<u64>> {
        let shard = self.shard(path).read();
        let chunks = shard.get(path);
        let mut lens = Vec::with_capacity(ops.len());
        for op in ops {
            let n = match chunks.and_then(|c| c.get(&op.chunk_id)) {
                Some(chunk) => {
                    let start = (op.offset as usize).min(chunk.len());
                    let end = ((op.offset + op.len) as usize).min(chunk.len());
                    let a = op.buf_offset as usize;
                    out[a..a + (end - start)].copy_from_slice(&chunk[start..end]);
                    end - start
                }
                None => 0,
            };
            self.stats.record_read(n);
            lens.push(n as u64);
        }
        Ok(lens)
    }

    fn remove_chunks(&self, path: &str) -> Result<()> {
        self.shard(path).write().remove(path);
        Ok(())
    }

    fn truncate_chunks(&self, path: &str, keep_chunk: u64, keep_bytes: u64) -> Result<()> {
        let mut shard = self.shard(path).write();
        if let Some(chunks) = shard.get_mut(path) {
            chunks.retain(|&id, _| id <= keep_chunk);
            if let Some(boundary) = chunks.get_mut(&keep_chunk) {
                if boundary.len() as u64 > keep_bytes {
                    boundary.truncate(keep_bytes as usize);
                }
            }
        }
        Ok(())
    }

    fn chunk_count(&self, path: &str) -> Result<usize> {
        Ok(self
            .shard(path)
            .read()
            .get(path)
            .map(|c| c.len())
            .unwrap_or(0))
    }

    fn list_paths(&self) -> Result<Vec<(String, usize)>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (path, chunks) in shard.read().iter() {
                if !chunks.is_empty() {
                    out.push((path.clone(), chunks.len()));
                }
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_bytes_tracks_contents() {
        let s = MemChunkStorage::new();
        assert_eq!(s.total_bytes(), 0);
        s.write_chunk("/a", 0, 0, &[0u8; 100]).unwrap();
        s.write_chunk("/b", 1, 0, &[0u8; 50]).unwrap();
        assert_eq!(s.total_bytes(), 150);
        s.remove_chunks("/a").unwrap();
        assert_eq!(s.total_bytes(), 50);
    }

    #[test]
    fn shards_distribute_paths() {
        let s = MemChunkStorage::new();
        for i in 0..200 {
            s.write_chunk(&format!("/f{i}"), 0, 0, b"x").unwrap();
        }
        let populated = s.shards.iter().filter(|shard| !shard.read().is_empty()).count();
        assert!(populated > SHARDS / 2, "paths should spread over shards");
    }
}
