//! Minimal io_uring backend for batch chunk I/O (feature `uring`).
//!
//! A coalesced batch becomes one ring submission: every contiguous run
//! is an `IORING_OP_READ`/`IORING_OP_WRITE` SQE against the cached
//! chunk descriptor, one `io_uring_enter(2)` submits them all and
//! waits for all completions. Compared to the task-pool engine this
//! trades N worker wakeups + N pread/pwrite syscalls for a single
//! syscall, letting the kernel overlap the per-run I/O internally.
//!
//! The implementation is deliberately small and dependency-free: raw
//! `syscall(2)` via the C runtime (no libc crate), plain-fd SQEs
//! without registered files or fixed buffers (an honest next step —
//! see DESIGN.md), and a single ring behind an [`OrderedMutex`] at
//! rank [`STORAGE_URING`](gkfs_common::lock::rank::STORAGE_URING):
//! batches serialize on submission, the parallelism lives inside the
//! kernel.
//!
//! [`UringEngine::probe`] feature-tests the kernel at daemon startup.
//! Sandboxed or pre-5.1 kernels fail `io_uring_setup(2)` with
//! `ENOSYS`/`EPERM`; the caller then falls back to the task pool, so
//! selecting [`IoBackend::Uring`](gkfs_common::IoBackend::Uring) is
//! always safe.

#![allow(missing_docs)] // struct-field docs below would restate the ABI

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use gkfs_common::lock::{rank, OrderedMutex};
    use gkfs_common::Result;
    use std::fs;
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicU32, Ordering};

    // x86_64 syscall numbers.
    const SYS_MMAP: i64 = 9;
    const SYS_MUNMAP: i64 = 11;
    const SYS_IO_URING_SETUP: i64 = 425;
    const SYS_IO_URING_ENTER: i64 = 426;

    const IORING_OP_READ: u8 = 22;
    const IORING_OP_WRITE: u8 = 23;
    const IORING_ENTER_GETEVENTS: u32 = 1;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const PROT_READ: i64 = 1;
    const PROT_WRITE: i64 = 2;
    const MAP_SHARED: i64 = 1;
    const MAP_POPULATE: i64 = 0x8000;

    extern "C" {
        fn syscall(num: i64, ...) -> i64;
        fn __errno_location() -> *mut i32;
    }

    fn errno() -> i32 {
        // SAFETY: __errno_location returns the calling thread's errno
        // slot, valid for the lifetime of the thread.
        unsafe { *__errno_location() }
    }

    /// Offsets into the SQ ring mapping (`io_sqring_offsets`).
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct SqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        resv2: u64,
    }

    /// Offsets into the CQ ring mapping (`io_cqring_offsets`).
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct CqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        resv2: u64,
    }

    /// `struct io_uring_params` (120 bytes).
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct UringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqOffsets,
        cq_off: CqOffsets,
    }

    /// `struct io_uring_sqe` (64 bytes), the subset of fields the
    /// READ/WRITE opcodes use; the rest stays zeroed.
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        pad: [u64; 3],
    }

    /// `struct io_uring_cqe` (16 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    /// One I/O request for [`UringEngine::run`]: a raw buffer window
    /// plus the descriptor it targets. The caller guarantees the
    /// buffer and file outlive the `run` call (it is fully
    /// synchronous: every SQE is reaped before it returns).
    pub struct RingOp {
        opcode: u8,
        fd: i32,
        addr: u64,
        len: u32,
        offset: u64,
    }

    impl RingOp {
        pub fn read(file: &fs::File, buf: *mut u8, len: u32, offset: u64) -> RingOp {
            RingOp {
                opcode: IORING_OP_READ,
                fd: file.as_raw_fd(),
                addr: buf as u64,
                len,
                offset,
            }
        }

        pub fn write(file: &fs::File, buf: *const u8, len: u32, offset: u64) -> RingOp {
            RingOp {
                opcode: IORING_OP_WRITE,
                fd: file.as_raw_fd(),
                addr: buf as u64,
                len,
                offset,
            }
        }
    }

    /// The mmapped rings and their geometry. Everything in here is
    /// only touched under the `ring` mutex.
    struct Ring {
        fd: i32,
        sq_ptr: *mut u8,
        sq_len: usize,
        cq_ptr: *mut u8,
        cq_len: usize,
        sqes_ptr: *mut u8,
        sqes_len: usize,
        sq_entries: u32,
        sq_mask: u32,
        sq_tail: *const AtomicU32,
        sq_array: *mut u32,
        sqes: *mut Sqe,
        cq_mask: u32,
        cq_head: *const AtomicU32,
        cq_tail: *const AtomicU32,
        cqes: *const Cqe,
    }

    // SAFETY: the raw pointers all target the two shared-with-kernel
    // ring mappings owned by this struct (unmapped only in Drop), and
    // every access goes through &mut self under the engine's ordered
    // mutex — no concurrent userspace access is possible.
    unsafe impl Send for Ring {}

    impl Drop for Ring {
        fn drop(&mut self) {
            // SAFETY: unmapping the mappings this struct owns, then
            // closing the ring fd; nothing can touch them afterwards
            // because Drop consumes the only handle.
            unsafe {
                syscall(SYS_MUNMAP, self.sq_ptr, self.sq_len);
                if !self.cq_ptr.is_null() {
                    syscall(SYS_MUNMAP, self.cq_ptr, self.cq_len);
                }
                syscall(SYS_MUNMAP, self.sqes_ptr, self.sqes_len);
                syscall(SYS_CLOSE, self.fd);
            }
        }
    }

    const SYS_CLOSE: i64 = 3;

    /// A probed, ready io_uring instance.
    pub struct UringEngine {
        ring: OrderedMutex<Ring>,
    }

    fn mmap(len: usize, fd: i32, offset: i64) -> Option<*mut u8> {
        // SAFETY: plain MAP_SHARED mapping of the ring fd at a
        // kernel-defined offset; a MAP_FAILED return is checked below.
        let ptr = unsafe {
            syscall(
                SYS_MMAP,
                std::ptr::null_mut::<u8>(),
                len as i64,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                fd as i64,
                offset,
            )
        };
        if ptr == -1 {
            None
        } else {
            Some(ptr as *mut u8)
        }
    }

    impl UringEngine {
        /// Feature-test the kernel: set up a ring with `entries`
        /// slots, mmap it, and return the engine — or `None` when the
        /// kernel (or sandbox) refuses, in which case the caller
        /// falls back to the task pool.
        pub fn probe(entries: u32) -> Option<UringEngine> {
            let mut params = UringParams::default();
            // SAFETY: params is a properly-sized, zeroed
            // io_uring_params the kernel fills in; entries is a plain
            // integer. A negative return is the error path.
            let fd = unsafe { syscall(SYS_IO_URING_SETUP, entries as i64, &mut params as *mut UringParams) };
            if fd < 0 {
                return None; // ENOSYS / EPERM / EINVAL: no uring here
            }
            let fd = fd as i32;
            let close = |fd: i32| {
                // SAFETY: closing the ring fd we just created.
                unsafe { syscall(SYS_CLOSE, fd as i64) };
            };
            let sq_len = params.sq_off.array as usize
                + params.sq_entries as usize * std::mem::size_of::<u32>();
            let cq_len = params.cq_off.cqes as usize
                + params.cq_entries as usize * std::mem::size_of::<Cqe>();
            let sqes_len = params.sq_entries as usize * std::mem::size_of::<Sqe>();
            let Some(sq_ptr) = mmap(sq_len, fd, IORING_OFF_SQ_RING) else {
                close(fd);
                return None;
            };
            let Some(cq_ptr) = mmap(cq_len, fd, IORING_OFF_CQ_RING) else {
                // SAFETY: unmapping the mapping created just above.
                unsafe { syscall(SYS_MUNMAP, sq_ptr, sq_len) };
                close(fd);
                return None;
            };
            let Some(sqes_ptr) = mmap(sqes_len, fd, IORING_OFF_SQES) else {
                // SAFETY: unmapping the two mappings created above.
                unsafe {
                    syscall(SYS_MUNMAP, sq_ptr, sq_len);
                    syscall(SYS_MUNMAP, cq_ptr, cq_len);
                }
                close(fd);
                return None;
            };
            // SAFETY: all pointer arithmetic below stays inside the
            // mappings sized from the kernel-reported offsets; the
            // head/tail words are 4-byte-aligned u32s shared with the
            // kernel, viewed as AtomicU32.
            let ring = unsafe {
                Ring {
                    fd,
                    sq_ptr,
                    sq_len,
                    cq_ptr,
                    cq_len,
                    sqes_ptr,
                    sqes_len,
                    sq_entries: params.sq_entries,
                    sq_mask: *(sq_ptr.add(params.sq_off.ring_mask as usize) as *const u32),
                    sq_tail: sq_ptr.add(params.sq_off.tail as usize) as *const AtomicU32,
                    sq_array: sq_ptr.add(params.sq_off.array as usize) as *mut u32,
                    sqes: sqes_ptr as *mut Sqe,
                    cq_mask: *(cq_ptr.add(params.cq_off.ring_mask as usize) as *const u32),
                    cq_head: cq_ptr.add(params.cq_off.head as usize) as *const AtomicU32,
                    cq_tail: cq_ptr.add(params.cq_off.tail as usize) as *const AtomicU32,
                    cqes: cq_ptr.add(params.cq_off.cqes as usize) as *const Cqe,
                }
            };
            let engine = UringEngine {
                ring: OrderedMutex::new(rank::STORAGE_URING, ring),
            };
            // Round-trip a no-op-sized batch so a ring the sandbox
            // half-supports (setup succeeds, enter doesn't) is caught
            // at probe time, not in the data path.
            match engine.run(&[]) {
                Ok(_) => Some(engine),
                Err(_) => None,
            }
        }

        /// Submit `ops` and wait for all completions. Returns raw
        /// per-op results (`res` from the CQE: byte count, or negated
        /// errno) in op order.
        ///
        /// The caller must keep every buffer and descriptor in `ops`
        /// alive across the call — trivially true because the call is
        /// synchronous.
        pub fn run(&self, ops: &[RingOp]) -> Result<Vec<i32>> {
            let mut results = vec![0i32; ops.len()];
            let ring = self.ring.lock();
            let chunk_max = ring.sq_entries as usize;
            // Batches larger than the ring go in ring-sized waves.
            for (wave_idx, wave) in ops.chunks(chunk_max).enumerate() {
                let base = wave_idx * chunk_max;
                // SAFETY: head/tail are the kernel-shared ring
                // indices; Acquire on head pairs with the kernel's
                // updates, Release on tail publishes the filled SQEs.
                unsafe {
                    let tail0 = (*ring.sq_tail).load(Ordering::Acquire);
                    for (i, op) in wave.iter().enumerate() {
                        let idx = (tail0.wrapping_add(i as u32)) & ring.sq_mask;
                        *ring.sqes.add(idx as usize) = Sqe {
                            opcode: op.opcode,
                            fd: op.fd,
                            off: op.offset,
                            addr: op.addr,
                            len: op.len,
                            user_data: (base + i) as u64,
                            ..Sqe::default()
                        };
                        *ring.sq_array.add(idx as usize) = idx;
                    }
                    (*ring.sq_tail)
                        .store(tail0.wrapping_add(wave.len() as u32), Ordering::Release);
                }
                let mut reaped = 0usize;
                while reaped < wave.len() {
                    let to_submit = if reaped == 0 { wave.len() } else { 0 };
                    // SAFETY: plain io_uring_enter on the ring fd; the
                    // SQEs just published point at buffers the caller
                    // keeps alive for the duration of this call.
                    let rc = unsafe {
                        syscall(
                            SYS_IO_URING_ENTER,
                            ring.fd as i64,
                            to_submit as i64,
                            (wave.len() - reaped) as i64,
                            IORING_ENTER_GETEVENTS as i64,
                            std::ptr::null::<u8>(),
                            0i64,
                        )
                    };
                    if rc < 0 {
                        let e = errno();
                        if e == 4 {
                            continue; // EINTR
                        }
                        return Err(std::io::Error::from_raw_os_error(e).into());
                    }
                    // SAFETY: CQE slots between head and tail are
                    // owned by userspace until head is advanced;
                    // Acquire/Release pair with the kernel's updates.
                    unsafe {
                        let tail = (*ring.cq_tail).load(Ordering::Acquire);
                        let mut head = (*ring.cq_head).load(Ordering::Relaxed);
                        while head != tail {
                            let cqe = *ring.cqes.add((head & ring.cq_mask) as usize);
                            if (cqe.user_data as usize) < results.len() {
                                results[cqe.user_data as usize] = cqe.res;
                            }
                            head = head.wrapping_add(1);
                            reaped += 1;
                        }
                        (*ring.cq_head).store(head, Ordering::Release);
                    }
                }
            }
            Ok(results)
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub use sys::{RingOp, UringEngine};

/// Stub for targets without the raw-syscall backend: the probe always
/// reports "no io_uring" and the caller falls back to the task pool.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys_stub {
    use gkfs_common::Result;
    use std::fs;

    pub struct RingOp;

    impl RingOp {
        pub fn read(_f: &fs::File, _b: *mut u8, _l: u32, _o: u64) -> RingOp {
            RingOp
        }
        pub fn write(_f: &fs::File, _b: *const u8, _l: u32, _o: u64) -> RingOp {
            RingOp
        }
    }

    pub struct UringEngine;

    impl UringEngine {
        pub fn probe(_entries: u32) -> Option<UringEngine> {
            None
        }
        pub fn run(&self, _ops: &[RingOp]) -> Result<Vec<i32>> {
            Ok(Vec::new())
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub use sys_stub::{RingOp, UringEngine};

#[cfg(test)]
mod tests {
    use super::*;

    /// The probe must never panic or leak: either the kernel supports
    /// io_uring (and a trivial read roundtrips), or it reports `None`
    /// and the engine selection falls back.
    #[test]
    fn probe_succeeds_or_degrades() {
        match UringEngine::probe(8) {
            None => {
                // Sandboxed / old kernel: fallback path. Nothing more
                // to assert — open_with() covers engine selection.
            }
            Some(ring) => {
                let dir = std::env::temp_dir().join(format!("gkfs-uring-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).unwrap();
                let path = dir.join("probe");
                std::fs::write(&path, b"io_uring lives").unwrap();
                let f = std::fs::File::open(&path).unwrap();
                let mut buf = vec![0u8; 14];
                let ops = [RingOp::read(&f, buf.as_mut_ptr(), 14, 0)];
                let res = ring.run(&ops).unwrap();
                assert_eq!(res, vec![14]);
                assert_eq!(&buf, b"io_uring lives");
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}
