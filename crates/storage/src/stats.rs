//! Storage-layer counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// I/O counters for one chunk store.
#[derive(Debug, Default)]
pub struct StorageStats {
    /// Chunk writes served.
    pub write_ops: AtomicU64,
    /// Bytes written to chunks.
    pub write_bytes: AtomicU64,
    /// Chunk reads served.
    pub read_ops: AtomicU64,
    /// Bytes read from chunks.
    pub read_bytes: AtomicU64,
    /// Open-fd cache hits (file backend; zero for in-memory stores).
    pub fd_hits: AtomicU64,
    /// Open-fd cache misses — each one cost an `open(2)`.
    pub fd_misses: AtomicU64,
    /// Batch ops merged into a preceding op's syscall by coalescing.
    pub coalesced_ops: AtomicU64,
    /// Batch segments dispatched onto the I/O task pool.
    pub tasks_spawned: AtomicU64,
    /// Batch segments run inline on the submitting thread (pool
    /// saturated, or caller-runs overflow).
    pub tasks_inline: AtomicU64,
}

impl StorageStats {
    /// Record write.
    pub fn record_write(&self, bytes: usize) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.write_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record read.
    pub fn record_read(&self, bytes: usize) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.read_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// `(write_ops, write_bytes, read_ops, read_bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.write_ops.load(Ordering::Relaxed),
            self.write_bytes.load(Ordering::Relaxed),
            self.read_ops.load(Ordering::Relaxed),
            self.read_bytes.load(Ordering::Relaxed),
        )
    }

    /// `(fd_hits, fd_misses, coalesced_ops)` — the data-path engine
    /// counters surfaced through `DaemonStats` / `gkfs-cli df`.
    pub fn engine_snapshot(&self) -> (u64, u64, u64) {
        (
            self.fd_hits.load(Ordering::Relaxed),
            self.fd_misses.load(Ordering::Relaxed),
            self.coalesced_ops.load(Ordering::Relaxed),
        )
    }

    /// `(tasks_spawned, tasks_inline)` — batch fan-out counters.
    pub fn task_snapshot(&self) -> (u64, u64) {
        (
            self.tasks_spawned.load(Ordering::Relaxed),
            self.tasks_inline.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_records() {
        let s = StorageStats::default();
        s.record_write(10);
        s.record_write(20);
        s.record_read(5);
        assert_eq!(s.snapshot(), (2, 30, 1, 5));
    }
}
