//! Read-only chunk-file mappings — the syscall-free read path.
//!
//! A chunk file that has been read once stays mapped (`MAP_SHARED`,
//! `PROT_READ`) in the fd cache; later reads memcpy straight out of
//! the page cache with **zero syscalls**. `MAP_SHARED` keeps the
//! mapping coherent with `write(2)` through the cached descriptor, so
//! writes that land inside the mapped range are visible immediately
//! and need no invalidation.
//!
//! Safety rests on one storage-wide invariant: **chunk files never
//! shrink in place**. Growth beyond a mapping is detected by length
//! bookkeeping (`FdEntry::len` vs [`ChunkMap::valid`]) and handled by
//! remapping; truncation replaces the file via rewrite-and-rename, so
//! a concurrently mapped reader keeps the old inode (exactly the
//! stale-fd window the cache already documents) instead of faulting on
//! pages ripped out from under it. Unlink keeps a mapped inode alive
//! by POSIX.
//!
//! Raw `syscall(2)` like [`crate::uring`] — no libc crate — so the
//! fast path is gated to x86_64 Linux; other targets report "no
//! mapping" and the caller falls back to positional reads.

#![allow(missing_docs)] // field docs would restate the mmap ABI

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
use std::fs;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::fs;
    use std::os::unix::io::AsRawFd;

    const SYS_MMAP: i64 = 9;
    const SYS_MUNMAP: i64 = 11;
    const PROT_READ: i64 = 1;
    const MAP_SHARED: i64 = 1;
    const PAGE: u64 = 4096;

    extern "C" {
        fn syscall(num: i64, ...) -> i64;
    }

    /// One live read-only mapping of a chunk file.
    pub struct ChunkMap {
        ptr: *const u8,
        map_len: usize,
        /// File length at map time: the bytes this mapping may serve.
        /// The tail of the last page past `valid` is inside the file's
        /// final page (lengths only grow), so no access up to `valid`
        /// can fault.
        pub valid: u64,
    }

    // SAFETY: the mapping is immutable from userspace (PROT_READ) and
    // stays valid until Drop unmaps it; concurrent readers only take
    // shared slices of it.
    unsafe impl Send for ChunkMap {}
    // SAFETY: same — read-only shared mapping, no interior mutation.
    unsafe impl Sync for ChunkMap {}

    impl ChunkMap {
        /// Map the first `valid` bytes of `file` (rounded up to the
        /// page). Returns `None` for empty files or when the kernel
        /// refuses; the caller falls back to `pread`.
        pub fn map(file: &fs::File, valid: u64) -> Option<ChunkMap> {
            if valid == 0 {
                return None;
            }
            let map_len = valid.div_ceil(PAGE).checked_mul(PAGE)? as usize;
            // SAFETY: plain PROT_READ/MAP_SHARED mapping of a real
            // file descriptor; MAP_FAILED (-1) is checked below.
            let ptr = unsafe {
                syscall(
                    SYS_MMAP,
                    std::ptr::null_mut::<u8>(),
                    map_len as i64,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd() as i64,
                    0i64,
                )
            };
            if ptr == -1 {
                return None;
            }
            Some(ChunkMap {
                ptr: ptr as *const u8,
                map_len,
                valid,
            })
        }

        /// The mapped bytes that may be served: `[0, valid)`.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr..ptr+valid lies inside this struct's own
            // live mapping (valid <= map_len), which outlives the
            // returned borrow.
            unsafe { std::slice::from_raw_parts(self.ptr, self.valid as usize) }
        }
    }

    impl Drop for ChunkMap {
        fn drop(&mut self) {
            // SAFETY: unmapping the mapping this struct owns; the
            // borrow rules guarantee no outstanding `bytes()` slice.
            unsafe {
                syscall(SYS_MUNMAP, self.ptr, self.map_len as i64);
            }
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub use sys::ChunkMap;

/// Stub for targets without the raw-syscall fast path: mapping always
/// "fails" and reads use positional I/O.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub struct ChunkMap {
    /// See the x86_64 variant.
    pub valid: u64,
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
impl ChunkMap {
    pub fn map(_file: &fs::File, _valid: u64) -> Option<ChunkMap> {
        None
    }
    pub fn bytes(&self) -> &[u8] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::fs::FileExt;

    #[test]
    fn mapping_serves_and_stays_coherent() {
        let dir = std::env::temp_dir().join(format!("gkfs-map-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunk");
        std::fs::write(&path, [3u8; 5000]).unwrap();
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        match ChunkMap::map(&f, 5000) {
            None => {} // non-x86_64 or sandbox without mmap: fallback path
            Some(m) => {
                assert_eq!(m.valid, 5000);
                assert_eq!(m.bytes().len(), 5000);
                assert!(m.bytes().iter().all(|&b| b == 3));
                // Writes through the descriptor show through the map.
                f.write_all_at(&[9u8; 100], 4000).unwrap();
                assert_eq!(&m.bytes()[4000..4100], &[9u8; 100]);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_files_do_not_map() {
        let dir = std::env::temp_dir().join(format!("gkfs-map0-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty");
        std::fs::write(&path, b"").unwrap();
        let f = std::fs::File::open(&path).unwrap();
        assert!(ChunkMap::map(&f, 0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
