//! File-backed chunk storage — the paper's "one file per chunk".
//!
//! Layout under the root directory:
//!
//! ```text
//! <root>/chunks/<escaped-path>/<chunk_id>
//! ```
//!
//! GekkoFS escapes the file's GekkoFS path into a single directory name
//! (the C++ implementation substitutes `/` with `:`); we do the same
//! with a small escape for literal `:` so distinct paths can never
//! collide. Chunk files are written with positional I/O; sparse writes
//! rely on the underlying POSIX file zero-filling the gap.

use crate::stats::StorageStats;
use crate::ChunkStorage;
use gkfs_common::Result;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Chunk store rooted at a directory on the node-local file system.
pub struct FileChunkStorage {
    chunk_root: PathBuf,
    stats: StorageStats,
}

/// Escape a GekkoFS path into one directory-name-safe component.
/// `/a/b:c` → `:a:b;cc` — `/`→`:` (as in GekkoFS) and `:`→`;c` so the
/// mapping stays injective.
fn escape_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 4);
    for ch in path.chars() {
        match ch {
            '/' => out.push(':'),
            ':' => out.push_str(";c"),
            ';' => out.push_str(";s"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_path`] (used by the `fsck` inventory scan).
fn unescape_path(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(ch) = chars.next() {
        match ch {
            ':' => out.push('/'),
            ';' => match chars.next() {
                Some('c') => out.push(':'),
                Some('s') => out.push(';'),
                other => {
                    out.push(';');
                    if let Some(o) = other {
                        out.push(o);
                    }
                }
            },
            c => out.push(c),
        }
    }
    out
}

impl FileChunkStorage {
    /// Open (creating if needed) a chunk store under `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FileChunkStorage> {
        let chunk_root = root.into().join("chunks");
        fs::create_dir_all(&chunk_root)?;
        Ok(FileChunkStorage {
            chunk_root,
            stats: StorageStats::default(),
        })
    }

    fn file_dir(&self, path: &str) -> PathBuf {
        self.chunk_root.join(escape_path(path))
    }

    fn chunk_path(&self, path: &str, chunk_id: u64) -> PathBuf {
        self.file_dir(path).join(format!("{chunk_id}"))
    }
}

impl ChunkStorage for FileChunkStorage {
    fn write_chunk(&self, path: &str, chunk_id: u64, offset: u64, data: &[u8]) -> Result<()> {
        self.stats.record_write(data.len());
        let dir = self.file_dir(path);
        // Racing creators are fine: create_dir_all is idempotent.
        fs::create_dir_all(&dir)?;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(self.chunk_path(path, chunk_id))?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)?;
        Ok(())
    }

    fn read_chunk(&self, path: &str, chunk_id: u64, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match fs::File::open(self.chunk_path(path, chunk_id)) {
            Ok(mut f) => {
                let size = f.metadata()?.len();
                if offset < size {
                    let take = len.min(size - offset);
                    f.seek(SeekFrom::Start(offset))?;
                    out.resize(take as usize, 0);
                    f.read_exact(&mut out)?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        self.stats.record_read(out.len());
        Ok(out)
    }

    fn remove_chunks(&self, path: &str) -> Result<()> {
        match fs::remove_dir_all(self.file_dir(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn truncate_chunks(&self, path: &str, keep_chunk: u64, keep_bytes: u64) -> Result<()> {
        let dir = self.file_dir(path);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            let Ok(id) = entry.file_name().to_string_lossy().parse::<u64>() else {
                continue;
            };
            if id > keep_chunk {
                fs::remove_file(entry.path())?;
            } else if id == keep_chunk {
                let f = fs::OpenOptions::new().write(true).open(entry.path())?;
                if f.metadata()?.len() > keep_bytes {
                    f.set_len(keep_bytes)?;
                }
            }
        }
        Ok(())
    }

    fn chunk_count(&self, path: &str) -> Result<usize> {
        match fs::read_dir(self.file_dir(path)) {
            Ok(entries) => Ok(entries.count()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn list_paths(&self) -> Result<Vec<(String, usize)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.chunk_root)? {
            let entry = entry?;
            if !entry.path().is_dir() {
                continue;
            }
            let count = fs::read_dir(entry.path())?.count();
            if count > 0 {
                out.push((
                    unescape_path(&entry.file_name().to_string_lossy()),
                    count,
                ));
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_injective_for_tricky_paths() {
        let paths = ["/a/b", "/a:b", "/a;b", "/a/b:c", "/a:/bc", "/ab/c", "/a/b/c"];
        let mut seen = std::collections::HashSet::new();
        for p in paths {
            assert!(seen.insert(escape_path(p)), "collision for {p}");
        }
    }

    #[test]
    fn unescape_inverts_escape() {
        for p in ["/a/b", "/a:b", "/a;b", "/x/y:z;w/q", "/", "/;c;s::"] {
            assert_eq!(unescape_path(&escape_path(p)), p, "roundtrip {p}");
        }
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FileChunkStorage::open(&dir).unwrap();
            s.write_chunk("/persist/me", 7, 0, b"durable").unwrap();
        }
        {
            let s = FileChunkStorage::open(&dir).unwrap();
            assert_eq!(s.read_chunk("/persist/me", 7, 0, 7).unwrap(), b"durable");
            assert_eq!(s.chunk_count("/persist/me").unwrap(), 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_file_per_chunk_on_disk() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-layout-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/data/file", 0, 0, b"a").unwrap();
        s.write_chunk("/data/file", 1, 0, b"b").unwrap();
        let file_dir = dir.join("chunks").join(":data:file");
        let names: Vec<String> = fs::read_dir(&file_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"0".to_string()));
        assert!(names.contains(&"1".to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }
}
