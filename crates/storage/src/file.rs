//! File-backed chunk storage — the paper's "one file per chunk".
//!
//! Layout under the root directory:
//!
//! ```text
//! <root>/chunks/<escaped-path>/<chunk_id>
//! ```
//!
//! GekkoFS escapes the file's GekkoFS path into a single directory name
//! (the C++ implementation substitutes `/` with `:`); we do the same
//! with a small escape for literal `:` so distinct paths can never
//! collide. Chunk files are written with positional I/O
//! ([`FileExt::read_at`]/[`write_all_at`](FileExt::write_all_at)), so
//! concurrent tasks can hit one chunk file through a shared descriptor
//! without seek races; sparse writes rely on the underlying POSIX file
//! zero-filling the gap.
//!
//! Descriptors are kept in a sharded open-fd LRU cache: the paper's
//! Argobots ULTs dispatch many small per-chunk ops against the same
//! files, and re-running `open(2)` (plus `fstat`) per op dominates the
//! cost of the op itself. A cached fd can briefly outlive
//! `remove_chunks`/`truncate_chunks` of its path on a racing thread —
//! writes then land in an unlinked inode, exactly the POSIX behavior a
//! concurrent unlink gives the C++ implementation.
//!
//! # Batch I/O engines
//!
//! Batch ops execute on one of three engines, selected at open time
//! ([`FileChunkStorage::open_with`]):
//!
//! * **Serial** — every batch runs on the calling thread.
//! * **Pool** — batches are cut into contiguous *segments* (aligned to
//!   same-chunk runs so coalescing is never split) and fanned out over
//!   a [`TaskPool`] of pread/pwrite workers; the synchronous batch
//!   entry points run the first segment on the calling thread while
//!   workers handle the rest, and the completion-based
//!   [`ChunkStorage::submit_batch`] dispatches every segment and
//!   returns immediately.
//! * **Uring** (feature `uring`, runtime-probed) — whole coalesced
//!   runs become io_uring SQEs submitted as one kernel batch; the
//!   completion queue replaces the worker threads.
//!
//! Saturation degrades gracefully: when the pool queue is full the
//! submitting thread runs the segment itself (caller-runs), so
//! overload collapses to serial behavior instead of queuing without
//! bound.

use crate::mmap::ChunkMap;
use crate::stats::StorageStats;
use crate::{segment, validate_dense_layout, BatchOp, BatchPayload};
use crate::{BatchCompletion, BatchOutput, ChunkStorage, SegmentResult};
use gkfs_common::hash::fnv1a64;
use gkfs_common::lock::{rank, OrderedMutex};
use gkfs_common::{GkfsError, IoBackend, Result, TaskPool};
use std::collections::HashMap;
use std::fs;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

const FD_SHARDS: usize = 16;
/// Per-shard capacity: 16 × 192 = 3072 cached descriptors. A daemon
/// raises `RLIMIT_NOFILE` into the tens of thousands anyway, and each
/// cached fd also carries the chunk's read-only mapping — falling off
/// the cache costs open+fstat+mmap on the next touch, so the cache is
/// sized past the working set of a few hundred hot files rather than
/// squeezed under a default 1024-fd limit.
const FD_CACHE_PER_SHARD: usize = 192;

/// Queue entries on a probed io_uring (and the submit-batch bound).
#[cfg(feature = "uring")]
const URING_ENTRIES: u32 = 64;

struct FdEntry {
    file: Arc<fs::File>,
    /// Known file length: fstat'ed once at open, then maintained by
    /// the write paths. Chunk files never shrink in place (truncation
    /// replaces via rename), so this only grows while cached.
    len: u64,
    /// Lazily created read-only mapping (see [`crate::mmap`]); stale
    /// when `map.valid < len` and replaced on the next read.
    map: Option<Arc<ChunkMap>>,
    last_used: u64,
}

/// Where a read run's bytes come from.
enum ReadSrc {
    /// Memcpy out of the cached mapping — zero syscalls.
    Map(Arc<ChunkMap>),
    /// Positional read through the cached descriptor (mapping
    /// unavailable: non-x86_64, odd file system, or mmap refused).
    File(Arc<fs::File>),
    /// No chunk file on disk.
    Absent,
}

#[derive(Default)]
struct FdShard {
    /// path → chunk_id → cached descriptor. Nested so lookups borrow
    /// the path and invalidation drops a whole file in one `remove`.
    files: HashMap<String, HashMap<u64, FdEntry>>,
    /// Total entries across `files` (eviction bookkeeping).
    len: usize,
    /// Monotonic use counter; larger = more recently used.
    tick: u64,
}

/// The engine driving batch execution (see module docs).
enum IoEngine {
    Serial,
    Pool(TaskPool),
    #[cfg(feature = "uring")]
    Uring(crate::uring::UringEngine),
}

/// Everything batch tasks need, behind one `Arc` so pool jobs can
/// outlive the borrow that submitted them.
struct Inner {
    chunk_root: PathBuf,
    fd_shards: Vec<OrderedMutex<FdShard>>,
    stats: StorageStats,
}

/// Chunk store rooted at a directory on the node-local file system.
pub struct FileChunkStorage {
    inner: Arc<Inner>,
    engine: IoEngine,
}

/// Escape a GekkoFS path into one directory-name-safe component.
/// `/a/b:c` → `:a:b;cc` — `/`→`:` (as in GekkoFS) and `:`→`;c` so the
/// mapping stays injective.
fn escape_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 4);
    for ch in path.chars() {
        match ch {
            '/' => out.push(':'),
            ':' => out.push_str(";c"),
            ';' => out.push_str(";s"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_path`] (used by the `fsck` inventory scan).
fn unescape_path(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(ch) = chars.next() {
        match ch {
            ':' => out.push('/'),
            ';' => match chars.next() {
                Some('c') => out.push(':'),
                Some('s') => out.push(';'),
                other => {
                    out.push(';');
                    if let Some(o) = other {
                        out.push(o);
                    }
                }
            },
            c => out.push(c),
        }
    }
    out
}

/// Positional read loop: fill `buf` from `offset` until full or EOF.
/// Replaces the old `fstat` + `seek` + `read_exact` triple — EOF is
/// discovered by the read itself, one syscall in the common case.
fn read_into(file: &fs::File, mut offset: u64, buf: &mut [u8]) -> Result<usize> {
    let mut done = 0;
    while done < buf.len() {
        match file.read_at(&mut buf[done..], offset) {
            Ok(0) => break,
            Ok(n) => {
                done += n;
                offset += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(done)
}

/// Raw base pointer of a shared reply buffer, made sendable so segment
/// tasks can carry their window across threads.
struct SendPtr(*mut u8);

// The pointer is only ever sliced over one segment's own window, and
// windows of distinct segments are disjoint by construction (dense
// running-sum `buf_offset` layout, checked before fan-out).
// SAFETY: disjoint windows + the buffer outlives every task — the
// sync paths gather before returning (drop-guarded) and the
// completion path parks the buffer inside the `BatchCompletion`,
// whose `wait`/`Drop` block until all tasks report or provably die.
unsafe impl Send for SendPtr {}

/// Drop guard around a segment fan-out: receives until every
/// outstanding task reported (or its sender died), so the borrowed
/// buffer the tasks scatter into can never be freed under them — even
/// on an early return or unwind.
struct Gather {
    rx: mpsc::Receiver<SegmentResult>,
    outstanding: usize,
}

impl Gather {
    /// Collect results into `seg_lens`, tracking the error with the
    /// lowest segment index (op order).
    fn collect(
        &mut self,
        seg_lens: &mut [Option<Vec<u64>>],
        first_err: &mut Option<(usize, GkfsError)>,
    ) {
        while self.outstanding > 0 {
            match self.rx.recv() {
                Ok((idx, Ok(lens))) => {
                    seg_lens[idx] = Some(lens);
                    self.outstanding -= 1;
                }
                Ok((idx, Err(e))) => {
                    if first_err.as_ref().is_none_or(|(i, _)| idx < *i) {
                        *first_err = Some((idx, e));
                    }
                    self.outstanding -= 1;
                }
                Err(_) => {
                    // All senders gone with results missing: a task
                    // died without reporting. No task can touch the
                    // buffer anymore, so it is safe to stop.
                    self.outstanding = 0;
                    if first_err.is_none() {
                        *first_err =
                            Some((usize::MAX, GkfsError::Rpc("chunk batch task lost without result".into())));
                    }
                }
            }
        }
    }
}

impl Drop for Gather {
    fn drop(&mut self) {
        while self.outstanding > 0 {
            match self.rx.recv() {
                Ok(_) => self.outstanding -= 1,
                Err(_) => break,
            }
        }
    }
}

impl Inner {
    fn file_dir(&self, path: &str) -> PathBuf {
        self.chunk_root.join(escape_path(path))
    }

    fn chunk_path(&self, path: &str, chunk_id: u64) -> PathBuf {
        self.file_dir(path).join(format!("{chunk_id}"))
    }

    fn fd_shard(&self, path: &str, chunk_id: u64) -> &OrderedMutex<FdShard> {
        let h = fnv1a64(path.as_bytes()) ^ chunk_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.fd_shards[(h % FD_SHARDS as u64) as usize]
    }

    /// The cached descriptor for `(path, chunk_id)`, opening and
    /// caching on miss. `create` selects `O_CREAT` — the write path
    /// creates chunk files, the read path must not; a read miss on a
    /// nonexistent chunk file returns `Ok(None)`. The `open` itself
    /// runs outside the shard lock so a miss doesn't stall other
    /// chunks hashed to the same shard.
    fn chunk_fd(
        &self,
        path: &str,
        chunk_id: u64,
        create: bool,
    ) -> Result<Option<(Arc<fs::File>, u64)>> {
        {
            let mut shard = self.fd_shard(path, chunk_id).lock();
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(entry) = shard
                .files
                .get_mut(path)
                .and_then(|per| per.get_mut(&chunk_id))
            {
                entry.last_used = tick;
                self.stats.fd_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some((entry.file.clone(), entry.len)));
            }
        }
        self.stats.fd_misses.fetch_add(1, Ordering::Relaxed);
        let cpath = self.chunk_path(path, chunk_id);
        // Read+write regardless of caller: the one cached descriptor
        // serves both directions.
        let mut opts = fs::OpenOptions::new();
        opts.read(true).write(true).create(create);
        let file = match opts.open(&cpath) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if !create {
                    return Ok(None);
                }
                // First write to this file: the per-file directory is
                // missing. Racing creators are fine, create_dir_all is
                // idempotent.
                fs::create_dir_all(self.file_dir(path))?;
                opts.open(&cpath)?
            }
            Err(e) => return Err(e.into()),
        };
        // One fstat per cache fill seeds the length bookkeeping that
        // lets reads skip per-op fstat/pread entirely.
        let len = file.metadata()?.len();
        let file = Arc::new(file);
        let mut shard = self.fd_shard(path, chunk_id).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard
            .files
            .get_mut(path)
            .and_then(|per| per.get_mut(&chunk_id))
        {
            // A racing opener filled this slot while we were opening.
            // Keep the cached entry: its `len` may already cover writes
            // that landed after our fstat (`note_grow` runs once the
            // bytes are on disk), so replacing it would shrink the
            // length bookkeeping and clamp mapped reads short. Both
            // lengths are observed lower bounds of the file, so their
            // max is too.
            entry.last_used = tick;
            entry.len = entry.len.max(len);
            return Ok(Some((entry.file.clone(), entry.len)));
        }
        if shard.len >= FD_CACHE_PER_SHARD {
            // Evict the least-recently-used entry; the cap is small
            // enough that a scan beats maintaining an ordered index.
            let mut victim: Option<(String, u64, u64)> = None;
            for (p, per) in shard.files.iter() {
                for (&c, e) in per.iter() {
                    if victim.as_ref().is_none_or(|v| e.last_used < v.2) {
                        victim = Some((p.clone(), c, e.last_used));
                    }
                }
            }
            if let Some((p, c, _)) = victim {
                let emptied = shard.files.get_mut(&p).map(|per| {
                    per.remove(&c);
                    per.is_empty()
                });
                if emptied == Some(true) {
                    shard.files.remove(&p);
                }
                shard.len -= 1;
            }
        }
        let per = shard.files.entry(path.to_string()).or_default();
        if per
            .insert(
                chunk_id,
                FdEntry {
                    file: file.clone(),
                    len,
                    map: None,
                    last_used: tick,
                },
            )
            .is_none()
        {
            shard.len += 1;
        }
        Ok(Some((file, len)))
    }

    /// Resolve where a read of `(path, chunk_id)` should pull bytes
    /// from, preferring the cached mapping (zero syscalls). A fresh or
    /// grown file is (re)mapped outside the shard lock and cached for
    /// the next reader.
    fn read_source(&self, path: &str, chunk_id: u64) -> Result<ReadSrc> {
        let found = {
            let mut shard = self.fd_shard(path, chunk_id).lock();
            shard.tick += 1;
            let tick = shard.tick;
            match shard
                .files
                .get_mut(path)
                .and_then(|per| per.get_mut(&chunk_id))
            {
                Some(entry) => {
                    entry.last_used = tick;
                    self.stats.fd_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(map) = &entry.map {
                        if map.valid == entry.len {
                            return Ok(ReadSrc::Map(map.clone()));
                        }
                    }
                    Some((entry.file.clone(), entry.len))
                }
                None => None,
            }
        };
        let (file, len) = match found {
            Some(pair) => pair,
            None => match self.chunk_fd(path, chunk_id, false)? {
                Some(pair) => pair,
                None => return Ok(ReadSrc::Absent),
            },
        };
        match ChunkMap::map(&file, len).map(Arc::new) {
            None => Ok(ReadSrc::File(file)),
            Some(map) => {
                let mut shard = self.fd_shard(path, chunk_id).lock();
                if let Some(entry) = shard
                    .files
                    .get_mut(path)
                    .and_then(|per| per.get_mut(&chunk_id))
                {
                    // Cache only if still fresh — a racing writer may
                    // have grown the file; the next read remaps.
                    if entry.len == map.valid {
                        entry.map = Some(map.clone());
                    }
                }
                Ok(ReadSrc::Map(map))
            }
        }
    }

    /// Record that a successful write extended `(path, chunk_id)` to
    /// at least `end` bytes. Called only after the bytes are on the
    /// file — a length ahead of the data would let a reader map pages
    /// past EOF.
    fn note_grow(&self, path: &str, chunk_id: u64, end: u64) {
        let mut shard = self.fd_shard(path, chunk_id).lock();
        if let Some(entry) = shard
            .files
            .get_mut(path)
            .and_then(|per| per.get_mut(&chunk_id))
        {
            if end > entry.len {
                entry.len = end;
            }
        }
    }

    /// Drop every cached descriptor of `path` (after a remove or
    /// truncate so later ops re-resolve against the real directory).
    fn invalidate_fds(&self, path: &str) {
        for fd_shard in &self.fd_shards {
            let mut shard = fd_shard.lock();
            if let Some(per) = shard.files.remove(path) {
                shard.len -= per.len();
            }
        }
    }

    fn write_fd(&self, path: &str, chunk_id: u64) -> Result<Arc<fs::File>> {
        match self.chunk_fd(path, chunk_id, true)? {
            Some((f, _)) => Ok(f),
            // Unreachable with create=true; surface as a plain IO error
            // rather than panicking in the daemon's data path.
            None => Err(std::io::Error::from(std::io::ErrorKind::NotFound).into()),
        }
    }

    /// Coalescing run cursor shared by the batch paths: extend from
    /// `i` while ops stay contiguous in both the chunk file and the
    /// buffer, returning `(end, merged_len)`.
    fn run_end(&self, ops: &[BatchOp], i: usize) -> (usize, u64) {
        let mut end = i + 1;
        let mut len = ops[i].len;
        while end < ops.len()
            && ops[end].chunk_id == ops[i].chunk_id
            && ops[end].offset == ops[i].offset + len
            && ops[end].buf_offset == ops[i].buf_offset + len
        {
            len += ops[end].len;
            end += 1;
        }
        if end > i + 1 {
            self.stats
                .coalesced_ops
                .fetch_add((end - i - 1) as u64, Ordering::Relaxed);
        }
        (end, len)
    }

    /// Serial write path: one `write_all_at` per coalesced run.
    fn write_runs(&self, path: &str, ops: &[BatchOp], bulk: &[u8]) -> Result<()> {
        let mut i = 0;
        while i < ops.len() {
            let (end, len) = self.run_end(ops, i);
            let a = ops[i].buf_offset as usize;
            let data = &bulk[a..a + len as usize];
            self.stats.record_write(data.len());
            let file = self.write_fd(path, ops[i].chunk_id)?;
            file.write_all_at(data, ops[i].offset)?;
            self.note_grow(path, ops[i].chunk_id, ops[i].offset + len);
            i = end;
        }
        Ok(())
    }

    /// Serial read path: one memcpy out of the cached mapping per
    /// coalesced run (zero syscalls once warm), falling back to a
    /// positional read where mapping is unavailable. The per-run count
    /// is distributed back over the run (a short read is an EOF, so it
    /// can only truncate the tail).
    fn read_runs(&self, path: &str, ops: &[BatchOp], out: &mut [u8]) -> Result<Vec<u64>> {
        let mut lens = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let (end, len) = self.run_end(ops, i);
            let a = ops[i].buf_offset as usize;
            let offset = ops[i].offset;
            let n = match self.read_source(path, ops[i].chunk_id)? {
                ReadSrc::Absent => 0,
                ReadSrc::Map(map) => {
                    let avail = map.valid.saturating_sub(offset).min(len) as usize;
                    if avail > 0 {
                        let src = &map.bytes()[offset as usize..offset as usize + avail];
                        out[a..a + avail].copy_from_slice(src);
                    }
                    avail
                }
                ReadSrc::File(file) => {
                    read_into(&file, offset, &mut out[a..a + len as usize])?
                }
            };
            self.stats.record_read(n);
            let mut rel = 0u64;
            for op in &ops[i..end] {
                lens.push((n as u64).saturating_sub(rel).min(op.len));
                rel += op.len;
            }
            i = end;
        }
        Ok(lens)
    }

    /// io_uring write path: one SQE per coalesced run.
    #[cfg(feature = "uring")]
    fn write_runs_uring(
        &self,
        ring: &crate::uring::UringEngine,
        path: &str,
        ops: &[BatchOp],
        bulk: &[u8],
    ) -> Result<()> {
        use crate::uring::RingOp;
        let mut runs: Vec<(usize, u64, Arc<fs::File>)> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let (end, len) = self.run_end(ops, i);
            self.stats.record_write(len as usize);
            runs.push((i, len, self.write_fd(path, ops[i].chunk_id)?));
            i = end;
        }
        let ring_ops: Vec<RingOp> = runs
            .iter()
            .map(|&(i, len, ref file)| {
                let a = ops[i].buf_offset as usize;
                RingOp::write(file, bulk[a..a + len as usize].as_ptr(), len as u32, ops[i].offset)
            })
            .collect();
        let results = ring.run(&ring_ops)?;
        for (idx, &(i, len, ref file)) in runs.iter().enumerate() {
            let res = results[idx];
            if res < 0 {
                return Err(std::io::Error::from_raw_os_error(-res).into());
            }
            let n = res as usize;
            if (n as u64) < len {
                // Finish the tail positionally — write_all_at loops.
                let a = ops[i].buf_offset as usize + n;
                file.write_all_at(&bulk[a..a + (len as usize - n)], ops[i].offset + n as u64)?;
            }
            self.note_grow(path, ops[i].chunk_id, ops[i].offset + len);
        }
        Ok(())
    }
}

/// Rebase a segment's ops onto a window starting at `win_start`, so a
/// task only ever indexes the slice it exclusively owns.
fn rebase(ops: &[BatchOp], win_start: u64) -> Vec<BatchOp> {
    ops.iter()
        .map(|o| BatchOp {
            buf_offset: o.buf_offset - win_start,
            ..*o
        })
        .collect()
}

impl FileChunkStorage {
    /// Open (creating if needed) a chunk store under `root` with the
    /// default engine ([`IoBackend::Auto`]: a task pool sized to the
    /// machine).
    pub fn open(root: impl Into<PathBuf>) -> Result<FileChunkStorage> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::open_with(root, IoBackend::Auto, threads, 64)
    }

    /// Open a chunk store under `root` with an explicit batch engine.
    /// `threads`/`queue_depth` size the task pool (`threads == 0`
    /// selects the serial engine); `IoBackend::Uring` probes the
    /// kernel at open time and falls back to the pool when io_uring is
    /// unavailable (or the `uring` feature is off).
    pub fn open_with(
        root: impl Into<PathBuf>,
        backend: IoBackend,
        threads: usize,
        queue_depth: usize,
    ) -> Result<FileChunkStorage> {
        let chunk_root = root.into().join("chunks");
        fs::create_dir_all(&chunk_root)?;
        let engine = match backend {
            IoBackend::Serial => IoEngine::Serial,
            IoBackend::Auto | IoBackend::Pool => Self::pool_engine(threads, queue_depth),
            IoBackend::Uring => Self::uring_or_pool(threads, queue_depth),
        };
        Ok(FileChunkStorage {
            inner: Arc::new(Inner {
                chunk_root,
                fd_shards: (0..FD_SHARDS)
                    .map(|_| OrderedMutex::new(rank::STORAGE_FD_SHARD, FdShard::default()))
                    .collect(),
                stats: StorageStats::default(),
            }),
            engine,
        })
    }

    fn pool_engine(threads: usize, queue_depth: usize) -> IoEngine {
        if threads == 0 {
            IoEngine::Serial
        } else {
            IoEngine::Pool(TaskPool::new("chunk-io", threads, queue_depth.max(threads)))
        }
    }

    #[cfg(feature = "uring")]
    fn uring_or_pool(threads: usize, queue_depth: usize) -> IoEngine {
        match crate::uring::UringEngine::probe(URING_ENTRIES) {
            Some(ring) => IoEngine::Uring(ring),
            None => Self::pool_engine(threads, queue_depth),
        }
    }

    #[cfg(not(feature = "uring"))]
    fn uring_or_pool(threads: usize, queue_depth: usize) -> IoEngine {
        Self::pool_engine(threads, queue_depth)
    }

    /// Name of the active batch engine (diagnostics and tests).
    pub fn engine_name(&self) -> &'static str {
        match &self.engine {
            IoEngine::Serial => "serial",
            IoEngine::Pool(_) => "pool",
            #[cfg(feature = "uring")]
            IoEngine::Uring(_) => "uring",
        }
    }

    /// Submit `job` to the pool, running it inline on overflow, and
    /// count which way it went.
    fn dispatch(&self, pool: &TaskPool, job: Box<dyn FnOnce() + Send>) {
        match pool.try_submit(job) {
            Ok(()) => {
                self.inner.stats.tasks_spawned.fetch_add(1, Ordering::Relaxed);
            }
            Err(job) => {
                self.inner.stats.tasks_inline.fetch_add(1, Ordering::Relaxed);
                job(); // caller-runs: the submitting thread absorbs overflow
            }
        }
    }

    /// Synchronous parallel read: fan segments `1..` out over the
    /// pool, run segment 0 on the calling thread, gather before
    /// returning. Requires the dense layout (checked by the caller).
    fn read_fan_out(
        &self,
        pool: &TaskPool,
        path: &str,
        ops: &[BatchOp],
        out: &mut [u8],
        segs: &[(usize, usize)],
        total: u64,
    ) -> Result<Vec<u64>> {
        let base = SendPtr(out.as_mut_ptr());
        let (tx, rx) = mpsc::channel::<SegmentResult>();
        let mut gather = Gather { rx, outstanding: 0 };
        for (seg_idx, &(start, end)) in segs.iter().enumerate().skip(1) {
            let win_start = ops[start].buf_offset;
            // Window bounds come straight from the validated dense
            // layout (no re-summing that could diverge from `total`).
            let win_end = if end < ops.len() { ops[end].buf_offset } else { total };
            let win_len = (win_end - win_start) as usize;
            let seg_ops = rebase(&ops[start..end], win_start);
            // SAFETY: `base` stays valid and unaliased for this
            // window: the buffer lives past the gather below (drop
            // guard), and no other segment's window overlaps
            // [win_start, win_start + win_len).
            let win = unsafe { SendPtr(base.0.add(win_start as usize)) };
            let inner = self.inner.clone();
            let path = path.to_string();
            let tx = tx.clone();
            gather.outstanding += 1;
            self.dispatch(
                pool,
                Box::new(move || {
                    let win = win;
                    // SAFETY: disjoint window of the shared reply
                    // buffer; see the invariants on `SendPtr`.
                    let buf: &mut [u8] =
                        unsafe { std::slice::from_raw_parts_mut(win.0, win_len) };
                    let res = inner.read_runs(&path, &seg_ops, buf);
                    let _ = tx.send((seg_idx, res));
                }),
            );
        }
        drop(tx);
        // The calling thread works segment 0 while the pool handles
        // the rest — on an n-core box this keeps the submitter busy
        // instead of parked in the gather.
        let (s0, e0) = segs[0];
        let first_end = ops[e0].buf_offset as usize; // e0 < ops.len(): segs.len() > 1
        let first = self.inner.read_runs(path, &ops[s0..e0], &mut out[..first_end]);
        let mut seg_lens: Vec<Option<Vec<u64>>> = vec![None; segs.len()];
        let mut first_err: Option<(usize, GkfsError)> = None;
        match first {
            Ok(lens) => seg_lens[0] = Some(lens),
            Err(e) => first_err = Some((0, e)),
        }
        gather.collect(&mut seg_lens, &mut first_err);
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        let mut lens = Vec::with_capacity(ops.len());
        for seg in seg_lens {
            lens.extend(seg.unwrap_or_default());
        }
        Ok(lens)
    }
}

impl ChunkStorage for FileChunkStorage {
    fn write_chunk(&self, path: &str, chunk_id: u64, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.stats.record_write(data.len());
        let file = self.inner.write_fd(path, chunk_id)?;
        file.write_all_at(data, offset)?;
        self.inner
            .note_grow(path, chunk_id, offset + data.len() as u64);
        Ok(())
    }

    fn read_chunk(&self, path: &str, chunk_id: u64, offset: u64, len: u64) -> Result<Vec<u8>> {
        // The allocation is clamped to what the file can actually
        // yield (the trait contract does not bound `len` — only the
        // batch path enforces the 256 MiB cap), so a caller cannot
        // force a huge zeroed buffer against a chunk holding a few
        // bytes. The cached length bookkeeping makes this clamp free.
        match self.inner.read_source(path, chunk_id)? {
            ReadSrc::Absent => {
                self.inner.stats.record_read(0);
                Ok(Vec::new())
            }
            ReadSrc::Map(map) => {
                let avail = map.valid.saturating_sub(offset).min(len) as usize;
                let out = if avail > 0 {
                    map.bytes()[offset as usize..offset as usize + avail].to_vec()
                } else {
                    Vec::new()
                };
                self.inner.stats.record_read(out.len());
                Ok(out)
            }
            ReadSrc::File(file) => {
                let avail = file.metadata()?.len().saturating_sub(offset).min(len);
                let mut out = vec![0u8; avail as usize];
                let n = read_into(&file, offset, &mut out)?;
                out.truncate(n);
                self.inner.stats.record_read(n);
                Ok(out)
            }
        }
    }

    fn write_chunks_batch(&self, path: &str, ops: &[BatchOp], bulk: &[u8]) -> Result<()> {
        match &self.engine {
            #[cfg(feature = "uring")]
            IoEngine::Uring(ring) => self.inner.write_runs_uring(ring, path, ops, bulk),
            _ => self.inner.write_runs(path, ops, bulk),
        }
    }

    fn read_chunks_batch(&self, path: &str, ops: &[BatchOp], out: &mut [u8]) -> Result<Vec<u64>> {
        match &self.engine {
            // Reads serve from cached mappings on every engine — the
            // ring only accelerates writes, which must hit the kernel.
            IoEngine::Serial => self.inner.read_runs(path, ops, out),
            #[cfg(feature = "uring")]
            IoEngine::Uring(_) => self.inner.read_runs(path, ops, out),
            IoEngine::Pool(pool) => {
                // Fan out only for the dense layout the daemon builds;
                // other (merely disjoint) layouts run serially — the
                // segment-window math below depends on density.
                let dense = validate_dense_layout(ops);
                let Ok(total) = dense else {
                    return self.inner.read_runs(path, ops, out);
                };
                if total as usize > out.len() {
                    return self.inner.read_runs(path, ops, out);
                }
                let segs = segment(ops, pool.workers() + 1);
                if segs.len() <= 1 {
                    return self.inner.read_runs(path, ops, out);
                }
                self.read_fan_out(pool, path, ops, out, &segs, total)
            }
        }
    }

    fn submit_batch(&self, path: &str, ops: &[BatchOp], payload: BatchPayload) -> BatchCompletion {
        let pool = match &self.engine {
            IoEngine::Pool(pool) => pool,
            // Serial and uring engines complete synchronously (the
            // uring batch is itself one kernel-level completion round).
            _ => {
                let res = match payload {
                    BatchPayload::Write(bulk) => match check_write_windows(ops, bulk.len()) {
                        Err(e) => Err(e),
                        Ok(()) => self
                            .write_chunks_batch(path, ops, &bulk)
                            .map(|()| BatchOutput::default()),
                    },
                    BatchPayload::Read => validate_dense_layout(ops).and_then(|total| {
                        let mut data = vec![0u8; total as usize];
                        let lens = self.read_chunks_batch(path, ops, &mut data)?;
                        Ok(BatchOutput { data, lens })
                    }),
                };
                return BatchCompletion::ready(res);
            }
        };
        match payload {
            BatchPayload::Write(bulk) => {
                if let Err(e) = check_write_windows(ops, bulk.len()) {
                    return BatchCompletion::ready(Err(e));
                }
                let segs = segment(ops, pool.workers().max(1));
                if segs.len() <= 1 {
                    return BatchCompletion::ready(
                        self.inner.write_runs(path, ops, &bulk).map(|()| BatchOutput::default()),
                    );
                }
                let (tx, rx) = mpsc::channel::<SegmentResult>();
                for (seg_idx, &(start, end)) in segs.iter().enumerate() {
                    let inner = self.inner.clone();
                    let path = path.to_string();
                    let seg_ops = ops[start..end].to_vec();
                    let bulk = bulk.clone();
                    let tx = tx.clone();
                    self.dispatch(
                        pool,
                        Box::new(move || {
                            // Windows keep their original offsets into
                            // the shared refcounted bulk — no copy.
                            let res = inner.write_runs(&path, &seg_ops, &bulk).map(|()| Vec::new());
                            let _ = tx.send((seg_idx, res));
                        }),
                    );
                }
                BatchCompletion::pending(rx, segs.len(), Vec::new(), segs.len())
            }
            BatchPayload::Read => {
                let total = match validate_dense_layout(ops) {
                    Ok(t) => t,
                    Err(e) => return BatchCompletion::ready(Err(e)),
                };
                let mut data = vec![0u8; total as usize];
                let segs = segment(ops, pool.workers().max(1));
                if segs.len() <= 1 {
                    let res = self
                        .inner
                        .read_runs(path, ops, &mut data)
                        .map(|lens| BatchOutput { data, lens });
                    return BatchCompletion::ready(res);
                }
                let base = SendPtr(data.as_mut_ptr());
                let (tx, rx) = mpsc::channel::<SegmentResult>();
                for (seg_idx, &(start, end)) in segs.iter().enumerate() {
                    let win_start = ops[start].buf_offset;
                    let win_end = if end < ops.len() { ops[end].buf_offset } else { total };
                    let win_len = (win_end - win_start) as usize;
                    let seg_ops = rebase(&ops[start..end], win_start);
                    // SAFETY: disjoint window of the heap buffer the
                    // returned completion owns (moving the Vec into it
                    // leaves heap storage in place); its wait/Drop
                    // block until every task reported.
                    let win = unsafe { SendPtr(base.0.add(win_start as usize)) };
                    let inner = self.inner.clone();
                    let path = path.to_string();
                    let tx = tx.clone();
                    self.dispatch(
                        pool,
                        Box::new(move || {
                            let win = win;
                            // SAFETY: exclusive window; see `SendPtr`.
                            let buf: &mut [u8] =
                                unsafe { std::slice::from_raw_parts_mut(win.0, win_len) };
                            let res = inner.read_runs(&path, &seg_ops, buf);
                            let _ = tx.send((seg_idx, res));
                        }),
                    );
                }
                BatchCompletion::pending(rx, segs.len(), data, segs.len())
            }
        }
    }

    fn remove_chunks(&self, path: &str) -> Result<()> {
        let res = match fs::remove_dir_all(self.inner.file_dir(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        };
        self.inner.invalidate_fds(path);
        res
    }

    fn truncate_chunks(&self, path: &str, keep_chunk: u64, keep_bytes: u64) -> Result<()> {
        let dir = self.inner.file_dir(path);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            let Ok(id) = entry.file_name().to_string_lossy().parse::<u64>() else {
                continue;
            };
            if id > keep_chunk {
                fs::remove_file(entry.path())?;
            } else if id == keep_chunk {
                let cur = entry.path();
                let f = fs::File::open(&cur)?;
                if f.metadata()?.len() > keep_bytes {
                    // Rewrite-and-rename rather than `set_len`: chunk
                    // files never shrink in place, so a concurrently
                    // mapped reader keeps the old inode (the same
                    // stale window a cached fd already has) instead of
                    // faulting on pages yanked from under its memcpy.
                    // The file is larger than keep_bytes, so this
                    // fills completely (holes materialize as zeros).
                    let mut kept = vec![0u8; keep_bytes as usize];
                    read_into(&f, 0, &mut kept)?;
                    let tmp = cur.with_extension("t");
                    fs::write(&tmp, &kept)?;
                    fs::rename(&tmp, &cur)?;
                }
            }
        }
        self.inner.invalidate_fds(path);
        Ok(())
    }

    fn chunk_count(&self, path: &str) -> Result<usize> {
        match fs::read_dir(self.inner.file_dir(path)) {
            Ok(entries) => Ok(entries.count()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn list_paths(&self) -> Result<Vec<(String, usize)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.inner.chunk_root)? {
            let entry = entry?;
            if !entry.path().is_dir() {
                continue;
            }
            let count = fs::read_dir(entry.path())?.count();
            if count > 0 {
                out.push((
                    unescape_path(&entry.file_name().to_string_lossy()),
                    count,
                ));
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &StorageStats {
        &self.inner.stats
    }
}

/// Bounds-check every write op's bulk window (writes don't require the
/// dense layout — their windows just have to fit the payload).
fn check_write_windows(ops: &[BatchOp], bulk_len: usize) -> Result<()> {
    for op in ops {
        if op.buf_offset.checked_add(op.len).is_none_or(|e| e > bulk_len as u64) {
            return Err(GkfsError::InvalidArgument(
                "write batch op window exceeds bulk".into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn escaping_is_injective_for_tricky_paths() {
        let paths = ["/a/b", "/a:b", "/a;b", "/a/b:c", "/a:/bc", "/ab/c", "/a/b/c"];
        let mut seen = std::collections::HashSet::new();
        for p in paths {
            assert!(seen.insert(escape_path(p)), "collision for {p}");
        }
    }

    #[test]
    fn unescape_inverts_escape() {
        for p in ["/a/b", "/a:b", "/a;b", "/x/y:z;w/q", "/", "/;c;s::"] {
            assert_eq!(unescape_path(&escape_path(p)), p, "roundtrip {p}");
        }
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FileChunkStorage::open(&dir).unwrap();
            s.write_chunk("/persist/me", 7, 0, b"durable").unwrap();
        }
        {
            let s = FileChunkStorage::open(&dir).unwrap();
            assert_eq!(s.read_chunk("/persist/me", 7, 0, 7).unwrap(), b"durable");
            assert_eq!(s.chunk_count("/persist/me").unwrap(), 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_file_per_chunk_on_disk() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-layout-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/data/file", 0, 0, b"a").unwrap();
        s.write_chunk("/data/file", 1, 0, b"b").unwrap();
        let file_dir = dir.join("chunks").join(":data:file");
        let names: Vec<String> = fs::read_dir(&file_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"0".to_string()));
        assert!(names.contains(&"1".to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fd_cache_hits_after_first_touch() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-fdcache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/hot", 0, 0, b"abcd").unwrap();
        for _ in 0..10 {
            assert_eq!(s.read_chunk("/hot", 0, 0, 4).unwrap(), b"abcd");
        }
        let (hits, misses, _) = s.stats().engine_snapshot();
        assert_eq!(misses, 1, "one open for write, reads reuse it");
        assert!(hits >= 10, "reads must hit the fd cache, got {hits}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_invalidates_cached_fds() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-inval-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/gone", 0, 0, b"abcd").unwrap();
        s.remove_chunks("/gone").unwrap();
        // A stale cached fd would still read the unlinked inode's data.
        assert!(s.read_chunk("/gone", 0, 0, 4).unwrap().is_empty());
        // Re-create after remove goes to a fresh file.
        s.write_chunk("/gone", 0, 0, b"new").unwrap();
        assert_eq!(s.read_chunk("/gone", 0, 0, 4).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_invalidates_boundary_fd() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-trinval-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/tr", 0, 0, &[7u8; 64]).unwrap();
        s.write_chunk("/tr", 1, 0, &[8u8; 64]).unwrap();
        s.truncate_chunks("/tr", 0, 16).unwrap();
        assert_eq!(s.read_chunk("/tr", 0, 0, 64).unwrap().len(), 16);
        assert!(s.read_chunk("/tr", 1, 0, 64).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fd_cache_evicts_beyond_capacity() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-evict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        // Far more distinct chunks than the cache holds.
        let total = FD_SHARDS * FD_CACHE_PER_SHARD * 2;
        for c in 0..total as u64 {
            s.write_chunk("/many", c, 0, &c.to_le_bytes()).unwrap();
        }
        let cached: usize = s.inner.fd_shards.iter().map(|sh| sh.lock().len).sum();
        assert!(
            cached <= FD_SHARDS * FD_CACHE_PER_SHARD,
            "cache exceeded capacity: {cached}"
        );
        // Every chunk still reads back correctly through re-opens.
        for c in [0u64, 37, total as u64 - 1] {
            assert_eq!(s.read_chunk("/many", c, 0, 8).unwrap(), c.to_le_bytes());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    fn layout(specs: &[(u64, u64, u64)]) -> Vec<BatchOp> {
        let mut cursor = 0;
        specs
            .iter()
            .map(|&(chunk_id, offset, len)| {
                let op = BatchOp { chunk_id, offset, len, buf_offset: cursor };
                cursor += len;
                op
            })
            .collect()
    }

    /// Every engine must produce identical batch results: roundtrips,
    /// short reads inside coalesced runs, and parallel fan-out all
    /// agree with the serial reference.
    #[test]
    fn engines_agree_on_batches() {
        let base = std::env::temp_dir().join(format!("gkfs-fcs-engines-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let stores = vec![
            ("serial", FileChunkStorage::open_with(base.join("s"), IoBackend::Serial, 0, 0).unwrap()),
            ("pool", FileChunkStorage::open_with(base.join("p"), IoBackend::Pool, 4, 64).unwrap()),
            ("uring-or-pool", FileChunkStorage::open_with(base.join("u"), IoBackend::Uring, 4, 64).unwrap()),
        ];
        for (name, s) in &stores {
            let ops = layout(&[
                (0, 0, 64), (0, 64, 64), (1, 0, 64), (2, 0, 64),
                (3, 0, 64), (4, 0, 64), (5, 0, 64), (6, 0, 64),
            ]);
            let bulk: Vec<u8> = (0..8 * 64u32).map(|i| (i % 249) as u8).collect();
            s.write_chunks_batch("/eng", &ops, &bulk).unwrap();
            let mut out = vec![0u8; bulk.len()];
            let lens = s.read_chunks_batch("/eng", &ops, &mut out).unwrap();
            assert_eq!(lens, vec![64; 8], "{name}");
            assert_eq!(out, bulk, "{name}");
            // Short read within a coalesced run: chunk 7 holds 40 of
            // the 64 requested; per-op lens must be 16,16,8,0.
            s.write_chunk("/eng", 7, 0, &[5u8; 40]).unwrap();
            let short = layout(&[(7, 0, 16), (7, 16, 16), (7, 32, 16), (7, 48, 16)]);
            let mut out = vec![0u8; 64];
            let lens = s.read_chunks_batch("/eng", &short, &mut out).unwrap();
            assert_eq!(lens, vec![16, 16, 8, 0], "{name}");
            assert_eq!(&out[..40], &[5u8; 40], "{name}");
        }
        let _ = fs::remove_dir_all(&base);
    }

    /// The pool engine's completion API overlaps segments; results
    /// must still be byte-identical and op-ordered, and errors must
    /// surface (not hang) when waited or dropped.
    #[test]
    fn pool_submit_batch_completes_out_of_line() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-submit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open_with(&dir, IoBackend::Pool, 4, 64).unwrap();
        assert_eq!(s.engine_name(), "pool");
        let ops = layout(&[(0, 0, 4096), (1, 0, 4096), (2, 0, 4096), (3, 0, 4096)]);
        let bulk: Vec<u8> = (0..4 * 4096u32).map(|i| (i % 239) as u8).collect();
        // Submit the write, then immediately submit the read: wait on
        // the write completion first, then the read must see it all.
        let wc = s.submit_batch("/cmpl", &ops, BatchPayload::Write(Bytes::from(bulk.clone())));
        wc.wait().unwrap();
        let rc = s.submit_batch("/cmpl", &ops, BatchPayload::Read);
        let out = rc.wait().unwrap();
        assert_eq!(out.lens, vec![4096; 4]);
        assert_eq!(out.data, bulk);
        let (spawned, _) = s.stats().task_snapshot();
        assert!(spawned > 0, "pool engine must actually spawn tasks");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_thread_pool_collapses_to_serial() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-serial0-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open_with(&dir, IoBackend::Pool, 0, 0).unwrap();
        assert_eq!(s.engine_name(), "serial");
        s.write_chunk("/z", 0, 0, b"ok").unwrap();
        assert_eq!(s.read_chunk("/z", 0, 0, 2).unwrap(), b"ok");
        fs::remove_dir_all(&dir).unwrap();
    }
}
