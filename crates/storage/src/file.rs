//! File-backed chunk storage — the paper's "one file per chunk".
//!
//! Layout under the root directory:
//!
//! ```text
//! <root>/chunks/<escaped-path>/<chunk_id>
//! ```
//!
//! GekkoFS escapes the file's GekkoFS path into a single directory name
//! (the C++ implementation substitutes `/` with `:`); we do the same
//! with a small escape for literal `:` so distinct paths can never
//! collide. Chunk files are written with positional I/O
//! ([`FileExt::read_at`]/[`write_all_at`](FileExt::write_all_at)), so
//! concurrent tasks can hit one chunk file through a shared descriptor
//! without seek races; sparse writes rely on the underlying POSIX file
//! zero-filling the gap.
//!
//! Descriptors are kept in a sharded open-fd LRU cache: the paper's
//! Argobots ULTs dispatch many small per-chunk ops against the same
//! files, and re-running `open(2)` (plus `fstat`) per op dominates the
//! cost of the op itself. A cached fd can briefly outlive
//! `remove_chunks`/`truncate_chunks` of its path on a racing thread —
//! writes then land in an unlinked inode, exactly the POSIX behavior a
//! concurrent unlink gives the C++ implementation.

use crate::stats::StorageStats;
use crate::{BatchOp, ChunkStorage};
use gkfs_common::hash::fnv1a64;
use gkfs_common::lock::{rank, OrderedMutex};
use gkfs_common::Result;
use std::collections::HashMap;
use std::fs;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const FD_SHARDS: usize = 8;
/// Per-shard capacity: 8 × 64 = 512 cached descriptors, comfortably
/// inside a default 1024 `RLIMIT_NOFILE` alongside sockets and the KV
/// store's tables.
const FD_CACHE_PER_SHARD: usize = 64;

struct FdEntry {
    file: Arc<fs::File>,
    last_used: u64,
}

#[derive(Default)]
struct FdShard {
    /// path → chunk_id → cached descriptor. Nested so lookups borrow
    /// the path and invalidation drops a whole file in one `remove`.
    files: HashMap<String, HashMap<u64, FdEntry>>,
    /// Total entries across `files` (eviction bookkeeping).
    len: usize,
    /// Monotonic use counter; larger = more recently used.
    tick: u64,
}

/// Chunk store rooted at a directory on the node-local file system.
pub struct FileChunkStorage {
    chunk_root: PathBuf,
    fd_shards: Vec<OrderedMutex<FdShard>>,
    stats: StorageStats,
}

/// Escape a GekkoFS path into one directory-name-safe component.
/// `/a/b:c` → `:a:b;cc` — `/`→`:` (as in GekkoFS) and `:`→`;c` so the
/// mapping stays injective.
fn escape_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 4);
    for ch in path.chars() {
        match ch {
            '/' => out.push(':'),
            ':' => out.push_str(";c"),
            ';' => out.push_str(";s"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_path`] (used by the `fsck` inventory scan).
fn unescape_path(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(ch) = chars.next() {
        match ch {
            ':' => out.push('/'),
            ';' => match chars.next() {
                Some('c') => out.push(':'),
                Some('s') => out.push(';'),
                other => {
                    out.push(';');
                    if let Some(o) = other {
                        out.push(o);
                    }
                }
            },
            c => out.push(c),
        }
    }
    out
}

/// Positional read loop: fill `buf` from `offset` until full or EOF.
/// Replaces the old `fstat` + `seek` + `read_exact` triple — EOF is
/// discovered by the read itself, one syscall in the common case.
fn read_into(file: &fs::File, mut offset: u64, buf: &mut [u8]) -> Result<usize> {
    let mut done = 0;
    while done < buf.len() {
        match file.read_at(&mut buf[done..], offset) {
            Ok(0) => break,
            Ok(n) => {
                done += n;
                offset += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(done)
}

impl FileChunkStorage {
    /// Open (creating if needed) a chunk store under `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FileChunkStorage> {
        let chunk_root = root.into().join("chunks");
        fs::create_dir_all(&chunk_root)?;
        Ok(FileChunkStorage {
            chunk_root,
            fd_shards: (0..FD_SHARDS)
                .map(|_| OrderedMutex::new(rank::STORAGE_FD_SHARD, FdShard::default()))
                .collect(),
            stats: StorageStats::default(),
        })
    }

    fn file_dir(&self, path: &str) -> PathBuf {
        self.chunk_root.join(escape_path(path))
    }

    fn chunk_path(&self, path: &str, chunk_id: u64) -> PathBuf {
        self.file_dir(path).join(format!("{chunk_id}"))
    }

    fn fd_shard(&self, path: &str, chunk_id: u64) -> &OrderedMutex<FdShard> {
        let h = fnv1a64(path.as_bytes()) ^ chunk_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.fd_shards[(h % FD_SHARDS as u64) as usize]
    }

    /// The cached descriptor for `(path, chunk_id)`, opening and
    /// caching on miss. `create` selects `O_CREAT` — the write path
    /// creates chunk files, the read path must not; a read miss on a
    /// nonexistent chunk file returns `Ok(None)`. The `open` itself
    /// runs outside the shard lock so a miss doesn't stall other
    /// chunks hashed to the same shard.
    fn chunk_fd(&self, path: &str, chunk_id: u64, create: bool) -> Result<Option<Arc<fs::File>>> {
        {
            let mut shard = self.fd_shard(path, chunk_id).lock();
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(entry) = shard
                .files
                .get_mut(path)
                .and_then(|per| per.get_mut(&chunk_id))
            {
                entry.last_used = tick;
                self.stats.fd_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(entry.file.clone()));
            }
        }
        self.stats.fd_misses.fetch_add(1, Ordering::Relaxed);
        let cpath = self.chunk_path(path, chunk_id);
        // Read+write regardless of caller: the one cached descriptor
        // serves both directions.
        let mut opts = fs::OpenOptions::new();
        opts.read(true).write(true).create(create);
        let file = match opts.open(&cpath) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if !create {
                    return Ok(None);
                }
                // First write to this file: the per-file directory is
                // missing. Racing creators are fine, create_dir_all is
                // idempotent.
                fs::create_dir_all(self.file_dir(path))?;
                opts.open(&cpath)?
            }
            Err(e) => return Err(e.into()),
        };
        let file = Arc::new(file);
        let mut shard = self.fd_shard(path, chunk_id).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.len >= FD_CACHE_PER_SHARD {
            // Evict the least-recently-used entry; the cap is small
            // enough that a scan beats maintaining an ordered index.
            let mut victim: Option<(String, u64, u64)> = None;
            for (p, per) in shard.files.iter() {
                for (&c, e) in per.iter() {
                    if victim.as_ref().is_none_or(|v| e.last_used < v.2) {
                        victim = Some((p.clone(), c, e.last_used));
                    }
                }
            }
            if let Some((p, c, _)) = victim {
                let emptied = shard.files.get_mut(&p).map(|per| {
                    per.remove(&c);
                    per.is_empty()
                });
                if emptied == Some(true) {
                    shard.files.remove(&p);
                }
                shard.len -= 1;
            }
        }
        let per = shard.files.entry(path.to_string()).or_default();
        if per
            .insert(
                chunk_id,
                FdEntry {
                    file: file.clone(),
                    last_used: tick,
                },
            )
            .is_none()
        {
            shard.len += 1;
        }
        Ok(Some(file))
    }

    /// Drop every cached descriptor of `path` (after a remove or
    /// truncate so later ops re-resolve against the real directory).
    fn invalidate_fds(&self, path: &str) {
        for fd_shard in &self.fd_shards {
            let mut shard = fd_shard.lock();
            if let Some(per) = shard.files.remove(path) {
                shard.len -= per.len();
            }
        }
    }

    fn write_fd(&self, path: &str, chunk_id: u64) -> Result<Arc<fs::File>> {
        match self.chunk_fd(path, chunk_id, true)? {
            Some(f) => Ok(f),
            // Unreachable with create=true; surface as a plain IO error
            // rather than panicking in the daemon's data path.
            None => Err(std::io::Error::from(std::io::ErrorKind::NotFound).into()),
        }
    }
}

impl ChunkStorage for FileChunkStorage {
    fn write_chunk(&self, path: &str, chunk_id: u64, offset: u64, data: &[u8]) -> Result<()> {
        self.stats.record_write(data.len());
        let file = self.write_fd(path, chunk_id)?;
        file.write_all_at(data, offset)?;
        Ok(())
    }

    fn read_chunk(&self, path: &str, chunk_id: u64, offset: u64, len: u64) -> Result<Vec<u8>> {
        let Some(file) = self.chunk_fd(path, chunk_id, false)? else {
            self.stats.record_read(0);
            return Ok(Vec::new());
        };
        // Clamp the allocation to what the file can actually yield:
        // the trait contract does not bound `len` (only the engine's
        // batch path enforces the 256 MiB cap), so a zeroed `len`-sized
        // buffer would let any caller force a huge allocation against a
        // chunk holding a few bytes. One fstat on the cached fd.
        let avail = file.metadata()?.len().saturating_sub(offset).min(len);
        let mut out = vec![0u8; avail as usize];
        let n = read_into(&file, offset, &mut out)?;
        out.truncate(n);
        self.stats.record_read(n);
        Ok(out)
    }

    fn write_chunks_batch(&self, path: &str, ops: &[BatchOp], bulk: &[u8]) -> Result<()> {
        let mut i = 0;
        while i < ops.len() {
            let mut end = i + 1;
            let mut len = ops[i].len;
            // Merge ops contiguous in both the chunk file and the bulk
            // buffer: one write_all_at for the whole run.
            while end < ops.len()
                && ops[end].chunk_id == ops[i].chunk_id
                && ops[end].offset == ops[i].offset + len
                && ops[end].buf_offset == ops[i].buf_offset + len
            {
                len += ops[end].len;
                end += 1;
            }
            if end > i + 1 {
                self.stats
                    .coalesced_ops
                    .fetch_add((end - i - 1) as u64, Ordering::Relaxed);
            }
            let a = ops[i].buf_offset as usize;
            let data = &bulk[a..a + len as usize];
            self.stats.record_write(data.len());
            let file = self.write_fd(path, ops[i].chunk_id)?;
            file.write_all_at(data, ops[i].offset)?;
            i = end;
        }
        Ok(())
    }

    fn read_chunks_batch(&self, path: &str, ops: &[BatchOp], out: &mut [u8]) -> Result<Vec<u64>> {
        let mut lens = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let mut end = i + 1;
            let mut len = ops[i].len;
            while end < ops.len()
                && ops[end].chunk_id == ops[i].chunk_id
                && ops[end].offset == ops[i].offset + len
                && ops[end].buf_offset == ops[i].buf_offset + len
            {
                len += ops[end].len;
                end += 1;
            }
            if end > i + 1 {
                self.stats
                    .coalesced_ops
                    .fetch_add((end - i - 1) as u64, Ordering::Relaxed);
            }
            let n = match self.chunk_fd(path, ops[i].chunk_id, false)? {
                Some(file) => {
                    let a = ops[i].buf_offset as usize;
                    read_into(&file, ops[i].offset, &mut out[a..a + len as usize])?
                }
                None => 0,
            };
            self.stats.record_read(n);
            // Distribute the merged count back over the run: a short
            // read is an EOF, so it can only truncate the tail.
            let mut rel = 0u64;
            for op in &ops[i..end] {
                lens.push((n as u64).saturating_sub(rel).min(op.len));
                rel += op.len;
            }
            i = end;
        }
        Ok(lens)
    }

    fn remove_chunks(&self, path: &str) -> Result<()> {
        let res = match fs::remove_dir_all(self.file_dir(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        };
        self.invalidate_fds(path);
        res
    }

    fn truncate_chunks(&self, path: &str, keep_chunk: u64, keep_bytes: u64) -> Result<()> {
        let dir = self.file_dir(path);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            let Ok(id) = entry.file_name().to_string_lossy().parse::<u64>() else {
                continue;
            };
            if id > keep_chunk {
                fs::remove_file(entry.path())?;
            } else if id == keep_chunk {
                let f = fs::OpenOptions::new().write(true).open(entry.path())?;
                if f.metadata()?.len() > keep_bytes {
                    f.set_len(keep_bytes)?;
                }
            }
        }
        self.invalidate_fds(path);
        Ok(())
    }

    fn chunk_count(&self, path: &str) -> Result<usize> {
        match fs::read_dir(self.file_dir(path)) {
            Ok(entries) => Ok(entries.count()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn list_paths(&self) -> Result<Vec<(String, usize)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.chunk_root)? {
            let entry = entry?;
            if !entry.path().is_dir() {
                continue;
            }
            let count = fs::read_dir(entry.path())?.count();
            if count > 0 {
                out.push((
                    unescape_path(&entry.file_name().to_string_lossy()),
                    count,
                ));
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_injective_for_tricky_paths() {
        let paths = ["/a/b", "/a:b", "/a;b", "/a/b:c", "/a:/bc", "/ab/c", "/a/b/c"];
        let mut seen = std::collections::HashSet::new();
        for p in paths {
            assert!(seen.insert(escape_path(p)), "collision for {p}");
        }
    }

    #[test]
    fn unescape_inverts_escape() {
        for p in ["/a/b", "/a:b", "/a;b", "/x/y:z;w/q", "/", "/;c;s::"] {
            assert_eq!(unescape_path(&escape_path(p)), p, "roundtrip {p}");
        }
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = FileChunkStorage::open(&dir).unwrap();
            s.write_chunk("/persist/me", 7, 0, b"durable").unwrap();
        }
        {
            let s = FileChunkStorage::open(&dir).unwrap();
            assert_eq!(s.read_chunk("/persist/me", 7, 0, 7).unwrap(), b"durable");
            assert_eq!(s.chunk_count("/persist/me").unwrap(), 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_file_per_chunk_on_disk() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-layout-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/data/file", 0, 0, b"a").unwrap();
        s.write_chunk("/data/file", 1, 0, b"b").unwrap();
        let file_dir = dir.join("chunks").join(":data:file");
        let names: Vec<String> = fs::read_dir(&file_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"0".to_string()));
        assert!(names.contains(&"1".to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fd_cache_hits_after_first_touch() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-fdcache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/hot", 0, 0, b"abcd").unwrap();
        for _ in 0..10 {
            assert_eq!(s.read_chunk("/hot", 0, 0, 4).unwrap(), b"abcd");
        }
        let (hits, misses, _) = s.stats().engine_snapshot();
        assert_eq!(misses, 1, "one open for write, reads reuse it");
        assert!(hits >= 10, "reads must hit the fd cache, got {hits}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_invalidates_cached_fds() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-inval-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/gone", 0, 0, b"abcd").unwrap();
        s.remove_chunks("/gone").unwrap();
        // A stale cached fd would still read the unlinked inode's data.
        assert!(s.read_chunk("/gone", 0, 0, 4).unwrap().is_empty());
        // Re-create after remove goes to a fresh file.
        s.write_chunk("/gone", 0, 0, b"new").unwrap();
        assert_eq!(s.read_chunk("/gone", 0, 0, 4).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_invalidates_boundary_fd() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-trinval-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        s.write_chunk("/tr", 0, 0, &[7u8; 64]).unwrap();
        s.write_chunk("/tr", 1, 0, &[8u8; 64]).unwrap();
        s.truncate_chunks("/tr", 0, 16).unwrap();
        assert_eq!(s.read_chunk("/tr", 0, 0, 64).unwrap().len(), 16);
        assert!(s.read_chunk("/tr", 1, 0, 64).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fd_cache_evicts_beyond_capacity() {
        let dir = std::env::temp_dir().join(format!("gkfs-fcs-evict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = FileChunkStorage::open(&dir).unwrap();
        // Far more distinct chunks than the cache holds.
        let total = FD_SHARDS * FD_CACHE_PER_SHARD * 2;
        for c in 0..total as u64 {
            s.write_chunk("/many", c, 0, &c.to_le_bytes()).unwrap();
        }
        let cached: usize = s.fd_shards.iter().map(|sh| sh.lock().len).sum();
        assert!(
            cached <= FD_SHARDS * FD_CACHE_PER_SHARD,
            "cache exceeded capacity: {cached}"
        );
        // Every chunk still reads back correctly through re-opens.
        for c in [0u64, 37, total as u64 - 1] {
            assert_eq!(s.read_chunk("/many", c, 0, 8).unwrap(), c.to_le_bytes());
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
