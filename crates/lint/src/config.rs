//! `lint.toml` parsing — a deliberately small TOML subset (no
//! external deps): `[section]` headers, `key = int`, `key = "string"`,
//! and `key = [ "..." , ... ]` arrays that may span lines. Comments
//! start with `#` outside strings.
//!
//! Recognized content:
//!
//! ```toml
//! # Waivers, checked as RULE@path:line.
//! allow = [
//!   "GKL002@crates/kvstore/src/blobstore.rs:140",
//! ]
//!
//! [ranks]        # rank name -> numeric rank (higher = acquired first)
//! KV_VERSION = 108
//!
//! [locks]        # receiver identifier -> rank name
//! version = "KV_VERSION"
//! ```

use std::collections::{HashMap, HashSet};

/// Parsed lint configuration.
#[derive(Default, Debug)]
pub struct Config {
    /// Rank name → numeric rank.
    pub ranks: HashMap<String, u16>,
    /// Lock receiver identifier → rank name.
    pub locks: HashMap<String, String>,
    /// Waivers in `RULE@path:line` form.
    pub allow: HashSet<String>,
}

impl Config {
    /// The numeric rank for a receiver identifier, with its rank name.
    pub fn rank_of(&self, receiver: &str) -> Option<(&str, u16)> {
        let name = self.locks.get(receiver)?;
        let rank = self.ranks.get(name)?;
        Some((name.as_str(), *rank))
    }

    /// Parse `lint.toml` content. Unknown sections and keys are
    /// ignored so the format can grow.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                let end = line
                    .find(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", n + 1))?;
                section = line[1..end].trim().to_string();
                continue;
            }
            let eq = line
                .find('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // An array may span lines: keep consuming until the
            // closing bracket (outside strings; our arrays hold only
            // simple waiver strings, which never contain brackets).
            if value.starts_with('[') {
                while !value.contains(']') {
                    match lines.next() {
                        Some((_, more)) => {
                            value.push(' ');
                            value.push_str(strip_comment(more).trim());
                        }
                        None => return Err(format!("line {}: unterminated array", n + 1)),
                    }
                }
            }
            match section.as_str() {
                "ranks" => {
                    let v: u16 = value
                        .parse()
                        .map_err(|_| format!("line {}: rank `{key}` is not a u16", n + 1))?;
                    cfg.ranks.insert(key, v);
                }
                "locks" => {
                    cfg.locks.insert(key, parse_string(&value, n + 1)?);
                }
                _ => {
                    if key == "allow" {
                        for s in parse_string_array(&value, n + 1)? {
                            cfg.allow.insert(s);
                        }
                    }
                }
            }
        }
        // Every lock must map to a declared rank.
        for (recv, name) in &cfg.locks {
            if !cfg.ranks.contains_key(name) {
                return Err(format!("lock `{recv}` maps to undeclared rank `{name}`"));
            }
        }
        Ok(cfg)
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str, line: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {line}: expected a quoted string, got `{v}`"))
    }
}

fn parse_string_array(v: &str, line: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    if !v.starts_with('[') || !v.ends_with(']') {
        return Err(format!("line {line}: expected an array of strings"));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# waivers
allow = [
  "GKL002@crates/a.rs:10", # trailing comment
  "GKL003@crates/b.rs:20",
]

[ranks]
KV_VERSION = 108
KV_MEMTABLE = 104

[locks]
version = "KV_VERSION"
mem = "KV_MEMTABLE"
"#,
        )
        .unwrap();
        assert_eq!(cfg.ranks["KV_VERSION"], 108);
        assert_eq!(cfg.rank_of("mem"), Some(("KV_MEMTABLE", 104)));
        assert!(cfg.allow.contains("GKL002@crates/a.rs:10"));
        assert_eq!(cfg.allow.len(), 2);
        assert_eq!(cfg.rank_of("nope"), None);
    }

    #[test]
    fn undeclared_rank_is_an_error() {
        let err = Config::parse("[locks]\nx = \"NOPE\"\n").unwrap_err();
        assert!(err.contains("undeclared rank"));
    }

    #[test]
    fn bad_rank_value_is_an_error() {
        assert!(Config::parse("[ranks]\nX = notanumber\n").is_err());
    }

    #[test]
    fn empty_config_is_fine() {
        let cfg = Config::parse("").unwrap();
        assert!(cfg.ranks.is_empty() && cfg.locks.is_empty() && cfg.allow.is_empty());
    }
}
