//! `gkfs-lint` binary — see `gkfs_lint::cli_main` for the interface.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(gkfs_lint::cli_main(&args));
}
