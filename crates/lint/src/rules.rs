//! The lint rules, evaluated over the token stream of one file.
//!
//! | rule   | checks |
//! |--------|--------|
//! | GKL001 | nested lock acquisition must strictly descend the declared rank hierarchy |
//! | GKL002 | no blocking call (fsync/sync/sleep/join/bare recv/WAL append) inside a held guard scope |
//! | GKL003 | no `unwrap()`/`expect()` on rpc/daemon/client non-test paths |
//! | GKL004 | no `Instant::now`/`SystemTime` inside `crates/sim` (determinism) |
//! | GKL005 | every `unsafe` must carry a `// SAFETY:` comment or a `# Safety` doc section |
//!
//! Guard scopes are tracked *lexically* and intraprocedurally: a guard
//! produced by `.lock()`, `.read()` or `.write()` (empty argument
//! lists — which excludes `io::Read::read(&mut buf)` and friends) on a
//! receiver registered in `lint.toml`'s `[locks]` table is considered
//! held until its binding is dropped, its block closes, or — for
//! statement temporaries — its statement ends. Temporaries in `if
//! let`/`while let`/`match`/`for` headers extend through the
//! construct's body, mirroring Rust's temporary-scope rules (this is
//! exactly the gotcha that turns `while let Some(x) =
//! lock.read().first() { ... }` into a guard held across the body).
//! Nesting that spans function boundaries is the runtime checker's job
//! (`gkfs_common::lock`).

use crate::config::Config;
use crate::lexer::{lex, Tok, TokKind};

/// One finding, formatted as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    /// The waiver key for this diagnostic: `RULE@file:line`.
    pub fn waiver_key(&self) -> String {
        format!("{}@{}:{}", self.rule, self.file, self.line)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Calls considered blocking under a held guard (GKL002). `join` and
/// `recv` count only with empty argument lists: `handle.join()` blocks
/// but `parts.join(",")` is string joining, and `recv()` blocks where
/// `recv_timeout(..)` is a different identifier altogether. Condvar
/// `wait`/`wait_for` are deliberately absent — they release the lock
/// while blocked.
const BLOCKING: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "sleep",
    "join",
    "recv",
    "append_log",
    "sync_log",
    "rotate_log",
];

/// How a tracked guard dies.
#[derive(PartialEq, Debug, Clone, Copy)]
enum Mode {
    /// Let-bound: dies when its block closes (or on `drop`/rebind).
    Block,
    /// `if let`/`while let`/`match`/`for` header temporary: lives
    /// through the construct's body.
    HeaderTemp,
    /// Plain `if`/`while` condition temporary: dies at the `{`.
    CondTemp,
    /// Statement temporary: dies at the next `;` at its depth.
    Stmt,
}

struct Guard {
    binding: Option<String>,
    lock: String,
    rank_name: String,
    rank: u16,
    line: u32,
    depth: i32,
    mode: Mode,
    /// For HeaderTemp: the construct's block has opened.
    opened: bool,
}

/// Result of checking one file: diagnostics plus the acquisition-order
/// edges (`held rank name → acquired rank name`) observed, for the
/// workspace-wide cycle report.
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub edges: Vec<(String, String)>,
}

/// Run every applicable rule over one file.
pub fn check_file(rel_path: &str, src: &str, cfg: &Config) -> FileReport {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let skip = find_test_ranges(toks);

    let unwrap_scope = rel_path.starts_with("crates/rpc/src")
        || rel_path.starts_with("crates/daemon/src")
        || rel_path.starts_with("crates/client/src");
    let sim_scope = rel_path.starts_with("crates/sim/src");

    let mut out = FileReport {
        diagnostics: Vec::new(),
        edges: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    // (extends_through_body, depth at header keyword)
    let mut pending_header: Option<bool> = None;

    let mut i = 0usize;
    let mut skip_idx = 0usize;
    while i < toks.len() {
        if skip_idx < skip.len() && i == skip.get(skip_idx).map(|r| r.0).unwrap_or(usize::MAX) {
            i = skip[skip_idx].1;
            skip_idx += 1;
            continue;
        }
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if pending_header.take().is_some() {
                    for g in &mut guards {
                        if !g.opened && g.mode == Mode::HeaderTemp {
                            g.opened = true;
                        }
                    }
                    guards.retain(|g| g.mode != Mode::CondTemp || g.opened);
                }
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                guards.retain(|g| {
                    let block_dead = g.mode == Mode::Block && g.depth > depth;
                    let header_dead =
                        g.mode == Mode::HeaderTemp && g.opened && depth <= g.depth;
                    let stranded = g.depth > depth; // safety net for any mode
                    !(block_dead || header_dead || stranded)
                });
            }
            (TokKind::Punct, ";") => {
                guards.retain(|g| !(g.mode == Mode::Stmt && g.depth == depth));
                pending_header = None; // e.g. `for` inside a generic bound never got a block
            }
            (TokKind::Ident, "if") | (TokKind::Ident, "while") => {
                let extends = toks.get(i + 1).map(|n| n.is_ident("let")).unwrap_or(false);
                pending_header = Some(extends);
            }
            (TokKind::Ident, "match") | (TokKind::Ident, "for") => {
                pending_header = Some(true);
            }
            (TokKind::Ident, "drop")
                if toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false) =>
            {
                if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                    if toks.get(i + 3).map(|n| n.is_punct(')')).unwrap_or(false) {
                        guards.retain(|g| g.binding.as_deref() != Some(&name.text));
                    }
                }
            }
            (TokKind::Ident, "unsafe") => {
                let line = t.line;
                // Either convention satisfies the rule: `// SAFETY:`
                // immediately above (unsafe blocks), or a `# Safety`
                // doc section (unsafe fn declarations, where the
                // caller contract lives in the rustdoc).
                let documented = lexed.comments.iter().any(|(cl, text)| {
                    *cl + 4 >= line
                        && *cl <= line
                        && (text.contains("SAFETY:") || text.contains("# Safety"))
                });
                if !documented {
                    out.diagnostics.push(Diagnostic {
                        rule: "GKL005",
                        file: rel_path.to_string(),
                        line,
                        message: "`unsafe` without a preceding `// SAFETY:` comment".into(),
                    });
                }
            }
            _ => {}
        }

        // GKL003: unwrap/expect on rpc/daemon/client non-test paths.
        if unwrap_scope
            && t.is_punct('.')
            && toks
                .get(i + 1)
                .map(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                .unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            let name = &toks[i + 1].text;
            out.diagnostics.push(Diagnostic {
                rule: "GKL003",
                file: rel_path.to_string(),
                line: toks[i + 1].line,
                message: format!(
                    "`.{name}()` on a non-test rpc/daemon/client path — propagate the error"
                ),
            });
        }

        // GKL004: wall-clock time sources in the deterministic simulator.
        if sim_scope && t.kind == TokKind::Ident {
            let instant_now = t.text == "Instant"
                && toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
                && toks.get(i + 3).map(|n| n.is_ident("now")).unwrap_or(false);
            let systemtime = t.text == "SystemTime";
            if instant_now || systemtime {
                out.diagnostics.push(Diagnostic {
                    rule: "GKL004",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}` in crates/sim — the simulator must stay deterministic",
                        if systemtime { "SystemTime" } else { "Instant::now" }
                    ),
                });
            }
        }

        // GKL002: blocking call while a guard is held.
        if t.kind == TokKind::Ident
            && BLOCKING.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && !(i > 0 && toks[i - 1].is_ident("fn"))
            && !guards.is_empty()
        {
            let needs_empty = t.text == "join" || t.text == "recv";
            let empty = toks.get(i + 2).map(|n| n.is_punct(')')).unwrap_or(false);
            if !needs_empty || empty {
                let held = guards.last().expect("guards nonempty");
                out.diagnostics.push(Diagnostic {
                    rule: "GKL002",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "blocking call `{}` while holding `{}` ({}={}, acquired line {})",
                        t.text, held.lock, held.rank_name, held.rank, held.line
                    ),
                });
            }
        }

        // GKL001: lock acquisition — strictly descending ranks.
        if let Some(acq) = match_acquisition(toks, i, cfg) {
            for g in &guards {
                out.edges.push((g.rank_name.clone(), acq.rank_name.clone()));
                if g.rank <= acq.rank {
                    out.diagnostics.push(Diagnostic {
                        rule: "GKL001",
                        file: rel_path.to_string(),
                        line: toks[i].line,
                        message: format!(
                            "acquiring `{}` ({}={}) while holding `{}` ({}={}, acquired line {}) — \
                             ranks must strictly descend",
                            acq.lock, acq.rank_name, acq.rank, g.lock, g.rank_name, g.rank, g.line
                        ),
                    });
                }
            }
            // Determine how this guard lives.
            let after = i + 4; // past `. name ( )`
            let ends_stmt = toks.get(after).map(|n| n.is_punct(';')).unwrap_or(false);
            let (binding, mode) = if ends_stmt {
                match stmt_binding(toks, i) {
                    Some(Binding::Let(name)) => (Some(name), Mode::Block),
                    Some(Binding::Reassign(name)) => {
                        guards.retain(|g| g.binding.as_deref() != Some(&name));
                        (Some(name), Mode::Block)
                    }
                    None => (None, temp_mode(pending_header)),
                }
            } else {
                (None, temp_mode(pending_header))
            };
            guards.push(Guard {
                binding,
                lock: acq.lock,
                rank_name: acq.rank_name,
                rank: acq.rank,
                line: toks[i].line,
                depth,
                mode,
                opened: false,
            });
        }

        i += 1;
    }
    out
}

fn temp_mode(pending_header: Option<bool>) -> Mode {
    match pending_header {
        Some(true) => Mode::HeaderTemp,
        Some(false) => Mode::CondTemp,
        None => Mode::Stmt,
    }
}

struct Acq {
    lock: String,
    rank_name: String,
    rank: u16,
}

/// Does the token at `i` start `. lock()` / `. read()` / `. write()`
/// (empty argument list) on a receiver registered in `[locks]`?
fn match_acquisition(toks: &[Tok], i: usize, cfg: &Config) -> Option<Acq> {
    if !toks[i].is_punct('.') {
        return None;
    }
    let m = toks.get(i + 1)?;
    if !(m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")) {
        return None;
    }
    if !toks.get(i + 2)?.is_punct('(') || !toks.get(i + 3)?.is_punct(')') {
        return None;
    }
    let recv = receiver_name(toks, i)?;
    let (rank_name, rank) = cfg.rank_of(&recv)?;
    Some(Acq {
        lock: recv,
        rank_name: rank_name.to_string(),
        rank,
    })
}

/// The receiver identifier of the call whose `.` is at `i`: the ident
/// just before the dot, or — when the receiver is itself a call like
/// `self.shard(path)` — the callee's name.
fn receiver_name(toks: &[Tok], i: usize) -> Option<String> {
    if i == 0 {
        return None;
    }
    let prev = &toks[i - 1];
    if prev.kind == TokKind::Ident {
        return Some(prev.text.clone());
    }
    if prev.is_punct(')') {
        // Walk back over the matched parens, then take the ident
        // before the `(`.
        let mut bal = 1i32;
        let mut j = i - 1;
        while bal > 0 && j > 0 {
            j -= 1;
            if toks[j].is_punct(')') {
                bal += 1;
            } else if toks[j].is_punct('(') {
                bal -= 1;
            }
        }
        if bal == 0 && j > 0 && toks[j - 1].kind == TokKind::Ident {
            return Some(toks[j - 1].text.clone());
        }
    }
    None
}

enum Binding {
    Let(String),
    Reassign(String),
}

/// For an acquisition ending its statement, find the binding pattern
/// at the start of the statement: `let [mut] NAME = …` or `NAME = …`.
fn stmt_binding(toks: &[Tok], acq_dot: usize) -> Option<Binding> {
    // Scan back to the statement start.
    let mut s = acq_dot;
    while s > 0 {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let first = toks.get(s)?;
    if first.is_ident("let") {
        let mut n = s + 1;
        if toks.get(n).map(|t| t.is_ident("mut")).unwrap_or(false) {
            n += 1;
        }
        let name = toks.get(n).filter(|t| t.kind == TokKind::Ident)?;
        // The next token must introduce `=` directly or via a type
        // ascription; anything else (tuple/struct patterns) is not a
        // guard binding.
        let next = toks.get(n + 1)?;
        if next.is_punct('=') || next.is_punct(':') {
            return Some(Binding::Let(name.text.clone()));
        }
        return None;
    }
    if first.kind == TokKind::Ident
        && toks.get(s + 1).map(|t| t.is_punct('=')).unwrap_or(false)
        && !toks.get(s + 2).map(|t| t.is_punct('=')).unwrap_or(false)
    {
        return Some(Binding::Reassign(first.text.clone()));
    }
    None
}

/// Token index ranges `[start, end)` covering `#[test]` functions and
/// `#[cfg(test)]` items (plus any attribute mentioning `test` without
/// `not`, e.g. `#[cfg(all(test, …))]`), which every rule skips.
fn find_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false) {
            let mut j = i + 2;
            let mut bal = 1i32;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && bal > 0 {
                if toks[j].is_punct('[') {
                    bal += 1;
                } else if toks[j].is_punct(']') {
                    bal -= 1;
                } else if toks[j].is_ident("test") {
                    has_test = true;
                } else if toks[j].is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip to the end of the annotated item: a `;` before
                // any `{`, or the matching `}` of the first `{`.
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct(';') {
                        k += 1;
                        break;
                    }
                    if toks[k].is_punct('{') {
                        let mut b = 1i32;
                        k += 1;
                        while k < toks.len() && b > 0 {
                            if toks[k].is_punct('{') {
                                b += 1;
                            } else if toks[k].is_punct('}') {
                                b -= 1;
                            }
                            k += 1;
                        }
                        break;
                    }
                    k += 1;
                }
                ranges.push((i, k));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn cfg() -> Config {
        let mut ranks = HashMap::new();
        ranks.insert("HIGH".to_string(), 200u16);
        ranks.insert("MID".to_string(), 100u16);
        ranks.insert("LOW".to_string(), 50u16);
        let mut locks = HashMap::new();
        locks.insert("outer".to_string(), "HIGH".to_string());
        locks.insert("inner".to_string(), "MID".to_string());
        locks.insert("leaf".to_string(), "LOW".to_string());
        Config {
            ranks,
            locks,
            allow: HashSet::new(),
        }
    }

    fn rules(src: &str) -> Vec<Diagnostic> {
        check_file("crates/x/src/lib.rs", src, &cfg()).diagnostics
    }

    fn rules_at(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(path, src, &cfg()).diagnostics
    }

    // ---- GKL001 ----

    #[test]
    fn gkl001_fires_on_ascending_ranks() {
        let d = rules("fn f(&self) { let a = self.inner.lock(); let b = self.outer.lock(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "GKL001");
        assert!(d[0].message.contains("outer"));
    }

    #[test]
    fn gkl001_clean_on_descending_ranks() {
        let d = rules("fn f(&self) { let a = self.outer.lock(); let b = self.inner.read(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_equal_rank_fires() {
        let d = rules("fn f(&self) { let a = self.inner.lock(); let b = self.inner.lock(); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn gkl001_drop_releases() {
        let d = rules(
            "fn f(&self) { let a = self.inner.lock(); drop(a); let b = self.outer.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_block_scope_releases() {
        let d = rules("fn f(&self) { { let a = self.inner.lock(); } let b = self.outer.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_statement_temp_releases_at_semicolon() {
        let d = rules("fn f(&self) { self.inner.lock().push(1); let b = self.outer.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_while_let_temp_extends_through_body() {
        // The classic gotcha: the scrutinee guard lives through the
        // body, so the inner acquisition nests under it.
        let d = rules(
            "fn f(&self) { while let Some(x) = self.inner.read().first() { \
             let g = self.outer.lock(); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "GKL001");
    }

    #[test]
    fn gkl001_plain_if_condition_temp_dies_at_block() {
        let d = rules(
            "fn f(&self) { if self.inner.read().is_empty() { let g = self.outer.lock(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_reassignment_tracks_new_guard() {
        let d = rules(
            "fn f(&self) { let mut g = self.inner.lock(); drop(g); \
             g = self.inner.lock(); let h = self.leaf.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_method_receiver_via_parens() {
        let d = rules("fn f(&self) { let a = self.leaf.lock(); let b = self.inner(0).write(); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn gkl001_unknown_receiver_is_ignored() {
        let d = rules("fn f(&self) { let a = self.mystery.lock(); let b = self.outer.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl001_io_read_with_args_is_not_a_lock() {
        let d = rules("fn f(&self) { let a = self.outer.lock(); inner.read(&mut buf); }");
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- GKL002 ----

    #[test]
    fn gkl002_fires_on_sync_under_guard() {
        let d = rules("fn f(&self) { let g = self.inner.lock(); file.sync_data(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "GKL002");
    }

    #[test]
    fn gkl002_fires_on_join_in_header_temp() {
        let d = rules(
            "fn f(&self) { if let Some(t) = self.inner.lock().take() { let _ = t.join(); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "GKL002");
    }

    #[test]
    fn gkl002_clean_after_guard_dropped() {
        let d = rules("fn f(&self) { let g = self.inner.lock(); drop(g); file.sync_data(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl002_string_join_with_args_is_fine() {
        let d = rules("fn f(&self) { let g = self.inner.lock(); let s = parts.join(sep); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl002_recv_timeout_is_fine() {
        let d = rules("fn f(&self) { let g = self.inner.lock(); rx.recv_timeout(d); }");
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- GKL003 ----

    #[test]
    fn gkl003_fires_in_scoped_crates() {
        let d = rules_at("crates/rpc/src/lib.rs", "fn f() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "GKL003"));
    }

    #[test]
    fn gkl003_ignores_test_code() {
        let d = rules_at(
            "crates/client/src/lib.rs",
            "#[cfg(test)] mod tests { fn f() { x.unwrap(); } }\n\
             #[test]\nfn t() { y.unwrap(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl003_out_of_scope_crates_are_fine() {
        let d = rules_at("crates/kvstore/src/db.rs", "fn f() { x.unwrap(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl003_unwrap_or_is_fine() {
        let d = rules_at("crates/rpc/src/lib.rs", "fn f() { x.unwrap_or(0); }");
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- GKL004 ----

    #[test]
    fn gkl004_fires_in_sim() {
        let d = rules_at(
            "crates/sim/src/lib.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "GKL004"));
    }

    #[test]
    fn gkl004_instant_elapsed_alone_is_fine() {
        let d = rules_at("crates/sim/src/lib.rs", "fn f(t: Instant) { t.elapsed(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl004_only_applies_to_sim() {
        let d = rules_at("crates/kvstore/src/db.rs", "fn f() { let t = Instant::now(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- GKL005 ----

    #[test]
    fn gkl005_fires_without_safety_comment() {
        let d = rules("fn f() { unsafe { danger() } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "GKL005");
    }

    #[test]
    fn gkl005_clean_with_safety_comment() {
        let d = rules("fn f() {\n    // SAFETY: checked above\n    unsafe { danger() }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn gkl005_comment_too_far_away_fires() {
        let d = rules("// SAFETY: stale\n\n\n\n\n\n\nfn f() { unsafe { danger() } }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn gkl005_clean_with_safety_doc_section() {
        let d = rules(
            "/// # Safety\n/// `p` must be valid.\n#[no_mangle]\npub unsafe fn f(p: *const u8) {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- edges ----

    #[test]
    fn edges_are_reported_for_nested_acquisition() {
        let r = check_file(
            "crates/x/src/lib.rs",
            "fn f(&self) { let a = self.outer.lock(); let b = self.inner.lock(); }",
            &cfg(),
        );
        assert_eq!(r.edges, vec![("HIGH".to_string(), "MID".to_string())]);
    }
}
