//! # gkfs-lint — the workspace's concurrency & safety analyzer
//!
//! A from-scratch static pass (hand-rolled lexer, no `syn`, no
//! external deps) that walks every `crates/*/src/**.rs` and enforces
//! the project's concurrency rules; see [`rules`] for the rule table
//! and DESIGN.md ("Concurrency invariants & lock hierarchy") for the
//! declared lock hierarchy it checks against. The runtime half of the
//! story lives in `gkfs_common::lock` — this pass catches what it can
//! lexically at CI time; the ranked wrappers catch cross-function
//! nesting in debug-build tests.
//!
//! Configuration and waivers live in `lint.toml` at the workspace
//! root: `[ranks]` declares the hierarchy, `[locks]` maps guard
//! receiver identifiers to ranks, and `allow = ["RULE@file:line"]`
//! waives individual findings (e.g. the WAL store syncing under its
//! own log lock — that *is* the group-commit design).

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{check_file, Diagnostic};

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Result of a workspace run.
pub struct Outcome {
    /// Diagnostics that were not waived, ready to print.
    pub diagnostics: Vec<Diagnostic>,
    /// Waivers in `lint.toml` (or `--allow`) that matched nothing —
    /// stale entries that should be removed.
    pub unused_waivers: Vec<String>,
    /// Number of files scanned.
    pub files_checked: usize,
}

/// Scan `crates/*/src/**.rs` under `root`, applying `lint.toml` from
/// `root` if present plus `extra_allow` waivers.
pub fn run_workspace(root: &Path, extra_allow: &[String]) -> Result<Outcome, String> {
    let mut cfg = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("lint.toml: {e}"))?,
        Err(_) => Config::default(),
    };
    for a in extra_allow {
        cfg.allow.insert(a.clone());
    }

    let files = workspace_files(root)?;
    let mut all: Vec<Diagnostic> = Vec::new();
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("{}: {e}", rel.display()))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let report = check_file(&rel_str, &src, &cfg);
        all.extend(report.diagnostics);
        edges.extend(report.edges);
    }

    // Workspace-wide acquisition-graph cycle report. With numeric
    // ranks every individually-legal edge descends, so a cycle here
    // means the per-site rule already fired somewhere — but report it
    // explicitly: a cycle is the actual deadlock shape.
    if let Some(cycle) = find_cycle(&edges) {
        all.push(Diagnostic {
            rule: "GKL001",
            file: "(workspace)".into(),
            line: 0,
            message: format!(
                "lock acquisition graph contains a cycle: {}",
                cycle.join(" → ")
            ),
        });
    }

    let mut used: BTreeSet<String> = BTreeSet::new();
    let diagnostics: Vec<Diagnostic> = all
        .into_iter()
        .filter(|d| {
            let key = d.waiver_key();
            if cfg.allow.contains(&key) {
                used.insert(key);
                false
            } else {
                true
            }
        })
        .collect();
    let unused_waivers: Vec<String> = cfg
        .allow
        .iter()
        .filter(|w| !used.contains(*w))
        .cloned()
        .collect();

    Ok(Outcome {
        diagnostics,
        unused_waivers,
        files_checked: files.len(),
    })
}

/// Every `crates/*/src/**.rs` under `root`, sorted for stable output.
fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e} (run from the workspace root or pass --root)", crates_dir.display()))?;
    let mut files = Vec::new();
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let files = files
        .into_iter()
        .map(|f| {
            f.strip_prefix(root)
                .map(|p| p.to_path_buf())
                .unwrap_or(f)
        })
        .collect();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

/// DFS cycle search over the rank-name acquisition graph.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    // For each node, walk its reachable set looking for a path back.
    for &start in adj.keys() {
        let mut stack: Vec<Vec<&str>> = vec![vec![start]];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("path never empty");
            for next in adj.get(last).map(|v| v.as_slice()).unwrap_or(&[]) {
                if *next == start {
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    cycle.push(start.to_string());
                    return Some(cycle);
                }
                if seen.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push(p);
                }
            }
        }
    }
    None
}

/// The CLI entry point, shared by the `gkfs-lint` binary and the
/// `gkfs-cli lint` subcommand. Returns the process exit code: 0 clean,
/// 1 diagnostics (or, under `--deny-all`, stale waivers), 2 usage or
/// I/O errors.
pub fn cli_main(args: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut extra_allow: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--allow" => match it.next() {
                Some(w) => extra_allow.push(w.clone()),
                None => return usage("--allow needs RULE@file:line"),
            },
            "--deny-all" => deny_all = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    match run_workspace(&root, &extra_allow) {
        Ok(outcome) => {
            for d in &outcome.diagnostics {
                println!("{d}");
            }
            let stale = !outcome.unused_waivers.is_empty();
            if stale {
                for w in &outcome.unused_waivers {
                    println!("lint.toml: stale waiver `{w}` matches nothing — remove it");
                }
            }
            println!(
                "gkfs-lint: {} file(s), {} diagnostic(s), {} stale waiver(s)",
                outcome.files_checked,
                outcome.diagnostics.len(),
                outcome.unused_waivers.len()
            );
            if !outcome.diagnostics.is_empty() || (deny_all && stale) {
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("gkfs-lint: {e}");
            2
        }
    }
}

const USAGE: &str = "\
gkfs-lint — concurrency & safety analyzer for the GekkoFS workspace

USAGE: gkfs-lint [--root DIR] [--deny-all] [--allow RULE@file:line]...

  --root DIR    workspace root (default: current directory)
  --deny-all    also fail on stale waivers in lint.toml
  --allow W     extra waiver, same syntax as lint.toml's allow list

Rules: GKL001 lock-rank order · GKL002 blocking call under guard ·
GKL003 unwrap/expect on rpc/daemon/client paths · GKL004 wall-clock
in crates/sim · GKL005 unsafe without SAFETY comment.

Exit codes: 0 clean · 1 diagnostics · 2 usage/config error.";

fn usage(err: &str) -> i32 {
    eprintln!("gkfs-lint: {err}\n{USAGE}");
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection_finds_inversion() {
        let mut edges = BTreeSet::new();
        edges.insert(("A".to_string(), "B".to_string()));
        edges.insert(("B".to_string(), "C".to_string()));
        assert!(find_cycle(&edges).is_none());
        edges.insert(("C".to_string(), "A".to_string()));
        let cycle = find_cycle(&edges).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4);
    }
}
