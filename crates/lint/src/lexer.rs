//! A hand-rolled Rust lexer — just enough structure for the lint
//! rules: identifiers, punctuation, and literals with line numbers,
//! plus a side list of comments (for the `SAFETY:` rule). String,
//! char, and raw-string contents are consumed but never tokenized, so
//! rules cannot false-positive on text inside literals or comments.

/// Token classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// String/char/numeric literal (content not preserved).
    Lit,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lexer output: the token stream and every comment with its line.
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// `(line, text)` for each comment; block comments are recorded at
    /// their starting line with their full text.
    pub comments: Vec<(u32, String)>,
}

/// Lex `src`. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_lines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push((line, String::from_utf8_lossy(&b[start..i]).into_owned()));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push((start_line, String::from_utf8_lossy(&b[start..i]).into_owned()));
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                line += nl;
                i = end;
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` followed
                // by ident chars with no closing quote right after.
                if i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        // Char literal like 'a'.
                        i = j + 1;
                        toks.push(Tok {
                            kind: TokKind::Lit,
                            text: String::new(),
                            line,
                        });
                    } else {
                        // Lifetime: skip the tick and the name.
                        i = j;
                    }
                } else {
                    // Char literal, possibly escaped: '\n', '\'', '\\'.
                    let mut j = i + 1;
                    if j < b.len() && b[j] == b'\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    line += count_lines(&b[i..j.min(b.len())]);
                    i = (j + 1).min(b.len());
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                // Raw strings / byte strings: r"..." r#"..."# b"..." br#"..."#
                if i < b.len() && (text == "r" || text == "b" || text == "br" || text == "rb") {
                    if b[i] == b'"' || b[i] == b'#' {
                        let raw = text != "b"; // b"..." is an escaped string
                        let (end, nl) = if raw {
                            scan_raw_string(b, i)
                        } else {
                            scan_string(b, i)
                        };
                        line += nl;
                        i = end;
                        toks.push(Tok {
                            kind: TokKind::Lit,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                    if text == "b" && b[i] == b'\'' {
                        // Byte char b'x': skip it.
                        let mut j = i + 1;
                        if j < b.len() && b[j] == b'\\' {
                            j += 2;
                        } else {
                            j += 1;
                        }
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        i = (j + 1).min(b.len());
                        toks.push(Tok {
                            kind: TokKind::Lit,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but not a `..` range.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                let _ = start;
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { toks, comments }
}

/// Scan a `"`-delimited string starting at the quote (or at an `r`/`b`
/// prefix's quote position). Returns `(index after closing quote,
/// newlines consumed)`.
fn scan_string(b: &[u8], start: usize) -> (usize, u32) {
    let mut i = start;
    while i < b.len() && b[i] != b'"' {
        i += 1;
    }
    i += 1; // past opening quote
    let mut nl = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scan a raw string `r#*"..."#*` starting at the first `#` or quote.
fn scan_raw_string(b: &[u8], start: usize) -> (usize, u32) {
    let mut i = start;
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    let mut nl = 0;
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0;
            while j < b.len() && b[j] == b'#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return (j, nl);
            }
        }
        if b[i] == b'\n' {
            nl += 1;
        }
        i += 1;
    }
    (i, nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_punct() {
        let l = lex("let g = self.work.lock();");
        let words: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, vec!["let", "g", "=", "self", ".", "work", ".", "lock", "(", ")", ";"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let l = lex("// SAFETY: fine\nunsafe { x() } /* block\ncomment */");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0], (1, "// SAFETY: fine".to_string()));
        assert!(l.comments[1].1.contains("block"));
        assert!(l.toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(l.toks.iter().all(|t| t.text != "SAFETY"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "a.lock() // not a comment"; s.len()"#);
        assert!(l.comments.is_empty());
        assert!(!l.toks.iter().any(|t| t.is_ident("lock")));
        assert!(l.toks.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = lex("let s = r#\"quote \" inside\"#; let t = \"esc \\\" q\"; done()");
        assert!(l.toks.iter().any(|t| t.is_ident("done")));
        assert!(!l.toks.iter().any(|t| t.is_ident("inside")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        // No stray tokens from the lifetime; two char literals.
        let lits = l.toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 2);
        assert!(l.toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..5 { x[i] = 1.5; }");
        let dots = l.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..5 keeps both range dots");
    }
}
