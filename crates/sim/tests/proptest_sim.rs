//! Property tests for the simulator: conservation laws and
//! monotonicity that must hold for *any* configuration, not just the
//! calibrated one.

use gkfs_sim::engine::{run_closed_loop, MultiServer};
use gkfs_sim::{
    sim_ior, sim_mdtest, IorPhase, IorSimConfig, MdtestPhase, MdtestSimConfig, SharedFileMode,
    SystemKind,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn multiserver_conserves_work(
        servers in 1usize..8,
        jobs in prop::collection::vec((0u64..1000, 1u64..500), 1..100),
    ) {
        let mut s = MultiServer::new(servers);
        let mut arrivals: Vec<(u64, u64)> = jobs.clone();
        arrivals.sort();
        let mut max_done = 0u64;
        let total_service: u64 = arrivals.iter().map(|(_, svc)| svc).sum();
        for (arr, svc) in &arrivals {
            let done = s.submit(*arr, *svc);
            // A job can never finish before its arrival plus service.
            prop_assert!(done >= arr + svc);
            max_done = max_done.max(done);
        }
        // Work conservation: busy time equals summed service.
        prop_assert_eq!(s.busy_ns, total_service);
        prop_assert_eq!(s.jobs, arrivals.len() as u64);
        // Makespan is at least total work / servers.
        prop_assert!(max_done as u128 * servers as u128 >= total_service as u128);
    }

    #[test]
    fn closed_loop_completes_all_ops(
        procs in 1usize..20,
        ops in 1u64..50,
        svc in 1u64..10_000,
    ) {
        let mut server = MultiServer::new(2);
        let r = run_closed_loop(procs, ops, |_p, _i, now| server.submit(now, svc));
        prop_assert_eq!(r.total_ops, procs as u64 * ops);
        prop_assert_eq!(server.jobs, r.total_ops);
        // Latency stats are sane.
        prop_assert!(r.mean_latency_ns >= svc);
        prop_assert!(r.max_latency_ns >= r.mean_latency_ns);
        // Makespan bounded below by per-proc serial time and above by
        // fully-serialized time.
        prop_assert!(r.makespan_ns >= ops * svc);
        prop_assert!(r.makespan_ns <= procs as u64 * ops * svc);
    }

    #[test]
    fn mdtest_sim_throughput_monotone_in_nodes(seed_nodes in 1usize..32) {
        let run = |nodes: usize| {
            let mut cfg = MdtestSimConfig::new(nodes, MdtestPhase::Create, SystemKind::GekkoFS);
            cfg.files_per_process = 100;
            sim_mdtest(&cfg).ops_per_sec()
        };
        let small = run(seed_nodes);
        let big = run(seed_nodes * 2);
        // Doubling nodes must never reduce aggregate throughput (allow
        // 2% simulation noise).
        prop_assert!(big >= small * 0.98, "nodes {seed_nodes}: {small} -> {big}");
    }

    #[test]
    fn ior_sim_bytes_accounting(
        nodes in 1usize..16,
        xfer_pow in 13u32..21, // 8 KiB .. 1 MiB
    ) {
        let xfer = 1u64 << xfer_pow;
        let mut cfg = IorSimConfig::new(nodes, IorPhase::Write, xfer);
        cfg.data_per_proc = xfer * 4;
        cfg.mode = SharedFileMode::FilePerProcess;
        let r = sim_ior(&cfg);
        // Total bytes = procs * ops * xfer exactly.
        let procs = nodes * cfg.params.procs_per_node;
        prop_assert_eq!(r.total_bytes, procs as u64 * 4 * xfer);
        // Fabric traffic never exceeds total traffic.
        prop_assert!(r.net_bytes <= r.total_bytes);
        prop_assert!(r.mib_per_sec() > 0.0);
    }
}
