//! IOR at MOGON II scale: the model behind Figure 3 and the §IV-B
//! random-access and shared-file experiments.
//!
//! Each closed-loop rank moves `data_per_proc` bytes in `transfer_size`
//! units. Every transfer is split into 512 KiB chunk pieces with the
//! *real* chunking code ([`gkfs_common::chunk::chunk_range`]) and each
//! piece visits, in order: the client node's NIC (bandwidth), the
//! owning daemon's NIC, its handler pool, and its SSD (fixed per-op
//! cost + effective-bandwidth transfer + a seek penalty for random
//! sub-chunk offsets). Writes then send one size-update RPC to the
//! file's single metadata owner — the §IV-B hotspot — unless the
//! client cache coalesces `window` updates into one.

use crate::engine::{run_closed_loop, LoopResult, MultiServer};
use crate::params::SimParams;
use gkfs_common::chunk::{chunk_range, ChunkLayout};
use gkfs_common::hash::xxh64;

/// Write or read phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IorPhase {
    /// The write phase.
    Write,
    /// The read phase.
    Read,
}

/// File layout / shared-file cache mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedFileMode {
    /// Each rank has its own file (metadata owners spread out).
    FilePerProcess,
    /// One shared file, synchronous size updates (paper's default —
    /// the ≈150 K ops/s ceiling).
    SharedNoCache,
    /// One shared file with the §IV-B client cache coalescing this
    /// many write size-updates into one RPC.
    /// One shared file with the §IV-B client cache coalescing
    /// `window` write size-updates into one RPC.
    SharedCached {
        /// Updates coalesced per flush.
        window: u64,
    },
}

/// Simulation inputs for one Figure-3 data point.
#[derive(Debug, Clone)]
pub struct IorSimConfig {
    /// Number of file-system nodes.
    pub nodes: usize,
    /// Write or read phase.
    pub phase: IorPhase,
    /// Bytes per I/O call (8 KiB … 64 MiB in the paper).
    pub transfer_size: u64,
    /// Bytes each rank moves (paper: 4 GiB; scaled down by default —
    /// throughput is steady-state).
    pub data_per_proc: u64,
    /// Shuffled offsets (the §IV-B random-access experiment).
    pub random: bool,
    /// Mode.
    pub mode: SharedFileMode,
    /// BurstFS-style write-local placement ablation (§II/§V): chunks
    /// stay on the writing client's node, skipping the network.
    pub locality: bool,
    /// N-to-1 read pattern: every rank reads rank 0's output (a
    /// broadcast/restart pattern). Only meaningful for the read phase;
    /// under `locality` all of that file's chunks live on rank 0's
    /// node, so the pattern exposes the write-local trade-off.
    pub n_to_one_read: bool,
    /// Testbed calibration.
    pub params: SimParams,
}

impl IorSimConfig {
    /// Config with scaled-down default volumes.
    pub fn new(nodes: usize, phase: IorPhase, transfer_size: u64) -> IorSimConfig {
        IorSimConfig {
            nodes,
            phase,
            transfer_size,
            data_per_proc: (16 * 1024 * 1024).max(transfer_size),
            random: false,
            mode: SharedFileMode::FilePerProcess,
            locality: false,
            n_to_one_read: false,
            params: SimParams::default(),
        }
    }
}

/// Result of one simulated IOR phase.
#[derive(Debug, Clone, Copy)]
pub struct IorSimResult {
    /// Closed-loop timing result.
    pub inner: LoopResult,
    /// Bytes moved across all ranks.
    pub total_bytes: u64,
    /// Bytes that crossed the fabric (zero for purely local
    /// placement) — the observable the locality ablation trades on.
    pub net_bytes: u64,
}

impl IorSimResult {
    /// Aggregate throughput in MiB/s.
    pub fn mib_per_sec(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0) / (self.inner.makespan_ns as f64 / 1e9)
    }

    /// Aggregate I/O operations (transfers) per second.
    pub fn iops(&self) -> f64 {
        self.inner.ops_per_sec()
    }

    /// Mean per-transfer latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.inner.mean_latency_ns as f64 / 1e3
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

struct NodeRes {
    client_nic: MultiServer,
    daemon_nic: MultiServer,
    handlers: MultiServer,
    ssd: MultiServer,
}

/// Simulate one IOR phase.
pub fn sim_ior(cfg: &IorSimConfig) -> IorSimResult {
    let p = &cfg.params;
    let procs = cfg.nodes * p.procs_per_node;
    let ops_per_proc = (cfg.data_per_proc / cfg.transfer_size).max(1);
    let layout = ChunkLayout::new(p.chunk_size);
    let nodes = cfg.nodes as u64;

    let mut res: Vec<NodeRes> = (0..cfg.nodes)
        .map(|_| NodeRes {
            client_nic: MultiServer::new(1),
            daemon_nic: MultiServer::new(1),
            handlers: MultiServer::new(p.handler_threads),
            ssd: MultiServer::new(1),
        })
        .collect();

    let (ssd_bw, ssd_op, seek) = match cfg.phase {
        IorPhase::Write => (
            p.ssd_write_bw * p.fs_write_eff,
            p.ssd_write_op_ns,
            p.ssd_write_seek_ns,
        ),
        IorPhase::Read => (
            p.ssd_read_bw * p.fs_read_eff,
            p.ssd_read_op_ns,
            p.ssd_read_seek_ns,
        ),
    };
    let sub_chunk_random = cfg.random && cfg.transfer_size < p.chunk_size;

    let procs_per_node = p.procs_per_node;
    let mut net_bytes: u64 = 0;
    let result = run_closed_loop(procs, ops_per_proc, |proc, i, now| {
        let client_node = proc / procs_per_node;
        // N-to-1 reads target rank 0's file regardless of the reader.
        let n_to_one = cfg.n_to_one_read && cfg.phase == IorPhase::Read;
        // File identity decides metadata ownership and chunk hashing.
        let file_id: u64 = if n_to_one {
            1
        } else {
            match cfg.mode {
                SharedFileMode::FilePerProcess => proc as u64 + 1,
                _ => 0,
            }
        };
        // Offset of this transfer within the global file space.
        let base = if n_to_one {
            0u64
        } else {
            match cfg.mode {
                SharedFileMode::FilePerProcess => 0u64,
                _ => proc as u64 * cfg.data_per_proc,
            }
        };
        let logical_i = if cfg.random {
            // Deterministic *permutation* of the transfer order (IOR
            // shuffles; a plain hash-mod would repeat offsets and skew
            // placement). For power-of-two op counts an odd-multiplier
            // affine map is a bijection; otherwise fall back to a
            // coprime stride.
            let salt = xxh64(&proc.to_le_bytes(), 11) | 1;
            if ops_per_proc.is_power_of_two() {
                (i.wrapping_mul(0x9E3779B97F4A7C15 | 1).wrapping_add(salt))
                    & (ops_per_proc - 1)
            } else {
                // Stride 1 less than a power of two is odd; make it
                // coprime by trial.
                let mut stride = (salt % ops_per_proc).max(1);
                while gcd(stride, ops_per_proc) != 1 {
                    stride += 1;
                }
                (i * stride + salt) % ops_per_proc
            }
        } else {
            i
        };
        let offset = base + logical_i * cfg.transfer_size;

        let t0 = now + p.client_overhead_ns;
        let mut data_done = t0;
        for piece in chunk_range(layout, offset, cfg.transfer_size) {
            let owner = if cfg.locality {
                if n_to_one {
                    0 // the writer (rank 0, node 0) holds every chunk
                } else {
                    client_node // BurstFS-style: chunks stay on my node
                }
            } else {
                (xxh64(
                    &[file_id.to_le_bytes(), piece.chunk_id.to_le_bytes()].concat(),
                    1,
                ) % nodes) as usize
            };
            let data_is_local = cfg.locality && owner == client_node;
            let handled_at = if data_is_local {
                // Local IPC: no fabric crossing, no NIC serialization.
                t0
            } else {
                if owner != client_node {
                    net_bytes += piece.len;
                }
                // Client NIC serializes this node's outbound pieces.
                let nic_svc = (piece.len as f64 / p.nic_bw * 1e9) as u64;
                let sent = res[client_node].client_nic.submit(t0, nic_svc);
                res[owner]
                    .daemon_nic
                    .submit(sent + p.net_latency_ns, nic_svc)
            };
            let handled = res[owner]
                .handlers
                .submit(handled_at, p.chunk_handler_svc_ns);
            let mut ssd_svc = ssd_op + (piece.len as f64 / ssd_bw * 1e9) as u64;
            if sub_chunk_random {
                ssd_svc += seek;
            }
            let stored = res[owner].ssd.submit(handled, ssd_svc);
            let reply_latency = if data_is_local { 0 } else { p.net_latency_ns };
            data_done = data_done.max(stored + reply_latency);
        }

        // Writes update the file size at its metadata owner. The
        // candidate (offset + len) is known up front, so the client
        // issues the update concurrently with the chunk transfers; the
        // operation completes when both legs have.
        if cfg.phase == IorPhase::Write {
            let send_update = match cfg.mode {
                SharedFileMode::FilePerProcess | SharedFileMode::SharedNoCache => true,
                SharedFileMode::SharedCached { window } => (i + 1) % window.max(1) == 0,
            };
            if send_update {
                let meta_owner = (xxh64(&file_id.to_le_bytes(), 2) % nodes) as usize;
                let arrive = t0 + p.net_latency_ns;
                let updated = res[meta_owner]
                    .handlers
                    .submit(arrive, p.update_size_svc_ns);
                data_done = data_done.max(updated + p.net_latency_ns);
            }
        }
        data_done
    });

    IorSimResult {
        inner: result,
        total_bytes: procs as u64 * ops_per_proc * cfg.transfer_size,
        net_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;

    fn run(
        nodes: usize,
        phase: IorPhase,
        xfer: u64,
        random: bool,
        mode: SharedFileMode,
    ) -> IorSimResult {
        let mut cfg = IorSimConfig::new(nodes, phase, xfer);
        cfg.random = random;
        cfg.mode = mode;
        cfg.data_per_proc = (4 * MIB).max(xfer * 4);
        sim_ior(&cfg)
    }

    #[test]
    fn large_transfers_hit_fs_efficiency_of_ssd_peak() {
        let p = SimParams::default();
        let r = run(8, IorPhase::Write, 64 * MIB, false, SharedFileMode::FilePerProcess);
        let eff = r.mib_per_sec() / p.ssd_peak_write_mib_s(8);
        // Paper: ~80% of aggregated SSD peak for 64 MiB writes (the
        // small 8-node run sees slightly less straggler loss than the
        // 512-node endpoint, hence the band's upper edge).
        assert!((0.72..0.92).contains(&eff), "write efficiency {eff:.2}");
        let r = run(8, IorPhase::Read, 64 * MIB, false, SharedFileMode::FilePerProcess);
        let eff = r.mib_per_sec() / p.ssd_peak_read_mib_s(8);
        // Paper: ~70% for reads.
        assert!((0.62..0.84).contains(&eff), "read efficiency {eff:.2}");
    }

    #[test]
    fn throughput_scales_with_nodes() {
        let t2 = run(2, IorPhase::Write, MIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let t16 = run(16, IorPhase::Write, MIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let speedup = t16 / t2;
        assert!(speedup > 6.0, "8× nodes gave only {speedup:.1}× throughput");
    }

    #[test]
    fn small_transfers_lose_to_per_op_costs() {
        let small = run(4, IorPhase::Write, 8 * KIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let large = run(4, IorPhase::Write, 64 * MIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        assert!(small < large, "8 KiB {small:.0} must trail 64 MiB {large:.0}");
        // But not catastrophically: paper has 8 KiB at ≈70% of peak×0.8.
        assert!(small > large * 0.5, "8 KiB too slow: {small:.0} vs {large:.0}");
    }

    #[test]
    fn random_sub_chunk_writes_degrade_a_third() {
        let seq = run(8, IorPhase::Write, 8 * KIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let rnd = run(8, IorPhase::Write, 8 * KIB, true, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let loss = 1.0 - rnd / seq;
        // Paper: ≈33% degradation for random 8 KiB writes.
        assert!((0.20..0.45).contains(&loss), "write loss {loss:.2}");
    }

    #[test]
    fn random_sub_chunk_reads_degrade_more() {
        let seq = run(8, IorPhase::Read, 8 * KIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let rnd = run(8, IorPhase::Read, 8 * KIB, true, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let loss = 1.0 - rnd / seq;
        // Paper: ≈60% degradation for random 8 KiB reads.
        assert!((0.45..0.70).contains(&loss), "read loss {loss:.2}");
    }

    #[test]
    fn random_at_chunk_size_is_free() {
        // "random accesses for large transfer sizes are conceptually
        // the same as sequential accesses" (§IV-B).
        let seq = run(4, IorPhase::Write, MIB, false, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        let rnd = run(4, IorPhase::Write, MIB, true, SharedFileMode::FilePerProcess)
            .mib_per_sec();
        assert!(
            (rnd / seq) > 0.95,
            "≥chunk-size random should match sequential: {seq:.0} vs {rnd:.0}"
        );
    }

    #[test]
    fn shared_file_without_cache_caps_near_150k_ops() {
        let r = run(16, IorPhase::Write, 8 * KIB, false, SharedFileMode::SharedNoCache);
        // Paper: "No more than approximately 150K write operations per
        // second" regardless of node count.
        assert!(
            (100e3..180e3).contains(&r.iops()),
            "shared-file ceiling: {:.0}",
            r.iops()
        );
        // More nodes do NOT help.
        let r2 = run(32, IorPhase::Write, 8 * KIB, false, SharedFileMode::SharedNoCache);
        assert!(
            (r2.iops() - r.iops()).abs() / r.iops() < 0.25,
            "ceiling should be flat: {:.0} vs {:.0}",
            r.iops(),
            r2.iops()
        );
    }

    #[test]
    fn size_cache_restores_shared_file_throughput() {
        let fpp = run(16, IorPhase::Write, 8 * KIB, false, SharedFileMode::FilePerProcess);
        let nocache = run(16, IorPhase::Write, 8 * KIB, false, SharedFileMode::SharedNoCache);
        let cached = run(
            16,
            IorPhase::Write,
            8 * KIB,
            false,
            SharedFileMode::SharedCached { window: 64 },
        );
        assert!(
            cached.iops() > nocache.iops() * 2.0,
            "cache must lift the ceiling: {:.0} vs {:.0}",
            cached.iops(),
            nocache.iops()
        );
        // "shared file I/O throughput ... similar to file-per-process".
        assert!(
            cached.iops() > fpp.iops() * 0.8,
            "cached {:.0} should approach fpp {:.0}",
            cached.iops(),
            fpp.iops()
        );
    }

    #[test]
    fn locality_ablation_trades_network_for_rigidity() {
        // BurstFS-style write-local placement (§II/§V ablation): for a
        // balanced file-per-process write load the throughput matches
        // wide striping (both are SSD-bound) — but the fabric carries
        // (N-1)/N of the bytes under wide striping and ~0 under
        // locality. Wide striping's cost is the network, its payoff is
        // shared files and location-free reads.
        let mut wide = IorSimConfig::new(16, IorPhase::Write, MIB);
        wide.data_per_proc = 8 * MIB;
        let wide_r = sim_ior(&wide);

        let mut local = wide.clone();
        local.locality = true;
        let local_r = sim_ior(&local);

        // Throughput parity within 15% (both SSD-bound).
        let ratio = local_r.mib_per_sec() / wide_r.mib_per_sec();
        assert!((0.85..1.25).contains(&ratio), "throughput ratio {ratio:.2}");

        // Network traffic: ~15/16 of bytes vs zero.
        assert_eq!(local_r.net_bytes, 0, "local placement crosses no fabric");
        let frac = wide_r.net_bytes as f64 / wide_r.total_bytes as f64;
        assert!(
            (0.90..0.97).contains(&frac),
            "wide striping should ship ~(N-1)/N of bytes, got {frac:.2}"
        );
    }

    #[test]
    fn n_to_one_read_exposes_the_write_local_tradeoff() {
        // Restart/broadcast pattern: every rank reads rank 0's output.
        // Wide striping spread those chunks over all SSDs at write
        // time, so the read scales; write-local placement left them on
        // ONE node, which becomes the bottleneck — precisely why §II
        // calls out that BurstFS "is limited to write data locally".
        let mk = |locality: bool| {
            let mut cfg = IorSimConfig::new(16, IorPhase::Read, MIB);
            cfg.locality = locality;
            cfg.n_to_one_read = true;
            cfg.data_per_proc = 8 * MIB;
            sim_ior(&cfg).mib_per_sec()
        };
        let wide = mk(false);
        let local = mk(true);
        assert!(
            wide > local * 4.0,
            "wide striping must win N-to-1 reads: {wide:.0} vs {local:.0} MiB/s"
        );
        // The write-local number is bounded by roughly one node's
        // effective read bandwidth.
        let p = SimParams::default();
        let one_ssd = p.ssd_read_bw * p.fs_read_eff / (1024.0 * 1024.0);
        assert!(
            local < one_ssd * 1.3,
            "local N-to-1 reads bottleneck on one SSD: {local:.0} vs {one_ssd:.0}"
        );
    }

    #[test]
    fn small_transfer_latency_bounded() {
        // Paper: "the average latency can be bounded by at most 700 µs
        // for file system operations with a transfer size of 8 KiB".
        let r = run(8, IorPhase::Write, 8 * KIB, false, SharedFileMode::FilePerProcess);
        assert!(
            r.mean_latency_us() < 700.0,
            "mean 8 KiB latency {:.0} µs",
            r.mean_latency_us()
        );
    }
}
