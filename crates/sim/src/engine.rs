//! Simulation primitives: virtual time, multi-server FIFO queues, and
//! the closed-loop process scheduler.
//!
//! The simulator is process-ordered rather than callback-ordered: a
//! global heap holds `(next_action_time, process)` pairs; the earliest
//! process is popped, performs one operation (submitting work to the
//! shared resources at its current virtual time), and is pushed back
//! with its completion time. Because the globally earliest process
//! always acts first, arrival times at every resource are
//! non-decreasing and FIFO queueing stays causal — a classic
//! event-per-operation DES without heap-allocated callbacks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual nanoseconds.
pub type Clock = u64;

/// A resource with `k` parallel servers (a Margo handler pool, an SSD
/// channel, a NIC lane). `submit` returns the completion time of a job
/// arriving at `arrival` needing `service` ns of one server.
///
/// The model is *server reservation*: a job takes the earliest-free
/// server and holds it from `max(arrival, free)` for `service` ns.
/// With the process scheduler's near-monotonic arrivals this is FIFO
/// queueing; for chained mid-operation submissions that arrive
/// slightly out of order it remains a conservative work-conserving
/// approximation.
pub struct MultiServer {
    /// Earliest-free-time per server.
    free: BinaryHeap<Reverse<Clock>>,
    /// Total busy nanoseconds, for utilization reporting.
    pub busy_ns: u64,
    /// Total jobs served.
    pub jobs: u64,
}

impl MultiServer {
    /// New.
    pub fn new(servers: usize) -> MultiServer {
        let servers = servers.max(1);
        let mut free = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free.push(Reverse(0));
        }
        MultiServer {
            free,
            busy_ns: 0,
            jobs: 0,
        }
    }

    /// Enqueue a job; returns its completion time.
    pub fn submit(&mut self, arrival: Clock, service: Clock) -> Clock {
        let Reverse(earliest_free) = self.free.pop().expect("at least one server");
        let start = arrival.max(earliest_free);
        let done = start + service;
        self.free.push(Reverse(done));
        self.busy_ns += service;
        self.jobs += 1;
        done
    }

    /// When would a job submitted now start (without submitting)?
    pub fn earliest_start(&self, arrival: Clock) -> Clock {
        let Reverse(f) = *self.free.peek().expect("at least one server");
        arrival.max(f)
    }
}

/// The closed-loop scheduler: `n` processes, each repeatedly performing
/// an operation whose completion time the callback returns. Runs until
/// every process has done its `ops` operations; returns the makespan
/// (time the last operation completes) and per-op latency stats.
///
/// The callback receives `(process_id, op_index, now)` and must return
/// the operation's completion time (≥ `now`).
pub fn run_closed_loop<F>(processes: usize, ops_per_process: u64, mut op: F) -> LoopResult
where
    F: FnMut(usize, u64, Clock) -> Clock,
{
    let mut heap: BinaryHeap<Reverse<(Clock, usize)>> = (0..processes)
        .map(|p| Reverse((0, p)))
        .collect();
    let mut done_ops = vec![0u64; processes];
    let mut makespan: Clock = 0;
    let mut total_latency: u128 = 0;
    let mut max_latency: Clock = 0;
    let total_ops = processes as u64 * ops_per_process;
    let mut completed: u64 = 0;

    while let Some(Reverse((now, p))) = heap.pop() {
        if done_ops[p] >= ops_per_process {
            continue;
        }
        let finish = op(p, done_ops[p], now);
        debug_assert!(finish >= now);
        let latency = finish - now;
        total_latency += latency as u128;
        max_latency = max_latency.max(latency);
        done_ops[p] += 1;
        completed += 1;
        makespan = makespan.max(finish);
        if done_ops[p] < ops_per_process {
            heap.push(Reverse((finish, p)));
        }
    }
    debug_assert_eq!(completed, total_ops);

    LoopResult {
        makespan_ns: makespan,
        total_ops,
        mean_latency_ns: if total_ops > 0 {
            (total_latency / total_ops as u128) as u64
        } else {
            0
        },
        max_latency_ns: max_latency,
    }
}

/// Outcome of one closed-loop phase.
#[derive(Debug, Clone, Copy)]
pub struct LoopResult {
    /// Makespan ns.
    pub makespan_ns: Clock,
    /// Total ops.
    pub total_ops: u64,
    /// Mean latency ns.
    pub mean_latency_ns: u64,
    /// Max latency ns.
    pub max_latency_ns: u64,
}

impl LoopResult {
    /// Aggregate operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / (self.makespan_ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut s = MultiServer::new(1);
        assert_eq!(s.submit(0, 10), 10);
        assert_eq!(s.submit(0, 10), 20, "queued behind the first");
        assert_eq!(s.submit(100, 10), 110, "idle gap honoured");
        assert_eq!(s.busy_ns, 30);
        assert_eq!(s.jobs, 3);
    }

    #[test]
    fn k_servers_run_in_parallel() {
        let mut s = MultiServer::new(4);
        for _ in 0..4 {
            assert_eq!(s.submit(0, 100), 100);
        }
        // Fifth job waits for a server.
        assert_eq!(s.submit(0, 100), 200);
    }

    #[test]
    fn closed_loop_throughput_is_capacity_bound() {
        // 8 procs hammer a 2-server resource with 50ns service:
        // capacity = 2/50ns = 40M ops/s; demand is higher, so the
        // result must sit at capacity.
        let mut server = MultiServer::new(2);
        let r = run_closed_loop(8, 1000, |_p, _i, now| server.submit(now, 50));
        let ops_per_ns = r.total_ops as f64 / r.makespan_ns as f64;
        assert!((ops_per_ns - 2.0 / 50.0).abs() < 0.001, "got {ops_per_ns}");
    }

    #[test]
    fn closed_loop_latency_bound_when_underloaded() {
        // 1 proc, plenty of servers: latency = service, throughput =
        // 1/service.
        let mut server = MultiServer::new(8);
        let r = run_closed_loop(1, 100, |_p, _i, now| server.submit(now, 1000));
        assert_eq!(r.mean_latency_ns, 1000);
        assert_eq!(r.max_latency_ns, 1000);
        assert_eq!(r.makespan_ns, 100 * 1000);
    }

    #[test]
    fn ops_per_sec_math() {
        let r = LoopResult {
            makespan_ns: 1_000_000_000,
            total_ops: 5000,
            mean_latency_ns: 0,
            max_latency_ns: 0,
        };
        assert!((r.ops_per_sec() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn earliest_start_peeks_without_submitting() {
        let mut s = MultiServer::new(1);
        s.submit(0, 100);
        assert_eq!(s.earliest_start(10), 100);
        assert_eq!(s.jobs, 1, "peek must not count as a job");
    }
}
