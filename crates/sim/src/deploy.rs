//! Deployment-time model: "deployed in under 20 seconds on a 512 node
//! cluster" (paper §I, §IV: "GekkoFS daemons are restarted (requiring
//! less than 20 seconds for 512 nodes)").
//!
//! Startup is a parallel remote launch: the job launcher fans out over
//! the nodes in a spawning tree (`pdsh`/`srun`-style), each daemon
//! initializes its local backends, and the launcher waits for every
//! daemon's ready handshake.

use crate::params::SimParams;
use std::time::Duration;

/// Per-node daemon initialization: process start + RocksDB open +
/// chunk-dir creation on the SSD. Measured single-node GekkoFS starts
/// are 1–2 s; we use a conservative value.
const DAEMON_INIT_NS: u64 = 1_800_000_000;

/// Remote-spawn cost per tree hop (ssh/launcher handshake).
const SPAWN_HOP_NS: u64 = 350_000_000;

/// Fan-out of the spawning tree.
const SPAWN_FANOUT: usize = 8;

/// Simulated wall-clock time to deploy `nodes` daemons.
pub fn sim_deploy_time(nodes: usize, params: &SimParams) -> Duration {
    assert!(nodes > 0);
    // Depth of the spawn tree: ceil(log_fanout(nodes)).
    let mut depth = 0u32;
    let mut reach = 1usize;
    while reach < nodes {
        reach *= SPAWN_FANOUT;
        depth += 1;
    }
    // All leaves start after `depth` hops; daemons initialize in
    // parallel; one final handshake round-trip.
    let total =
        depth as u64 * SPAWN_HOP_NS + DAEMON_INIT_NS + 2 * params.net_latency_ns;
    Duration::from_nanos(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_just_daemon_init() {
        let t = sim_deploy_time(1, &SimParams::default());
        assert!(t < Duration::from_secs(3), "{t:?}");
    }

    #[test]
    fn deploys_512_nodes_under_20_seconds() {
        let t = sim_deploy_time(512, &SimParams::default());
        assert!(t < Duration::from_secs(20), "paper bound violated: {t:?}");
        assert!(t > Duration::from_secs(1), "implausibly fast: {t:?}");
    }

    #[test]
    fn growth_is_logarithmic() {
        let t64 = sim_deploy_time(64, &SimParams::default());
        let t512 = sim_deploy_time(512, &SimParams::default());
        // 8× more nodes must cost far less than 8× the time.
        assert!(t512 < t64 * 2, "{t64:?} -> {t512:?}");
    }
}
