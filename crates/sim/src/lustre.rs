//! The Lustre baseline model for the paper's Figure 2 comparison.
//!
//! Lustre's metadata path is a *single metadata server* (the paper's
//! partition ran one MDS): every create/stat/remove from every client
//! crosses the network to the MDS and is served by its thread pool.
//! For workloads inside one shared directory, inserts and unlinks also
//! serialize on the directory's lock — which is exactly why the paper
//! calls "a huge number of files ... created in a single directory
//! from multiple processes" among the most difficult PFS workloads and
//! why mdtest is run in both `single dir` and `unique dir` modes.
//!
//! The model: a [`MultiServer`] thread pool, preceded (for single-dir
//! create/remove) by a 1-server dirlock stage. Unique-dir mode swaps
//! the shared lock for a small per-directory critical section folded
//! into the service time.

use crate::engine::{Clock, MultiServer};
use crate::mdtest::MdtestPhase;
use crate::params::SimParams;

/// How mdtest lays out directories on the Lustre baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LustreDirMode {
    /// All ranks operate in one shared directory.
    SingleDir,
    /// Each rank has its own private directory.
    UniqueDir,
}

/// The simulated metadata server.
pub struct LustreMds {
    threads: MultiServer,
    dirlock: MultiServer,
    mode: LustreDirMode,
    params: SimParams,
}

impl LustreMds {
    /// New.
    pub fn new(params: &SimParams, mode: LustreDirMode) -> LustreMds {
        LustreMds {
            threads: MultiServer::new(params.mds_threads),
            dirlock: MultiServer::new(1),
            mode,
            params: params.clone(),
        }
    }

    /// Execute one metadata op arriving at the MDS at `arrival`;
    /// returns its completion time (MDS-side only; network is added by
    /// the caller).
    pub fn serve(&mut self, phase: MdtestPhase, arrival: Clock) -> Clock {
        let p = &self.params;
        let (svc, lock_ns) = match (phase, self.mode) {
            (MdtestPhase::Create, LustreDirMode::SingleDir) => {
                (p.mds_create_svc_ns, Some(p.mds_dirlock_ns))
            }
            (MdtestPhase::Create, LustreDirMode::UniqueDir) => {
                (p.mds_create_svc_ns + p.mds_unique_dirlock_ns, None)
            }
            (MdtestPhase::Stat, _) => (p.mds_stat_svc_ns, None),
            (MdtestPhase::Remove, LustreDirMode::SingleDir) => {
                (p.mds_remove_svc_ns, Some(p.mds_remove_dirlock_ns))
            }
            (MdtestPhase::Remove, LustreDirMode::UniqueDir) => {
                (p.mds_remove_svc_ns + p.mds_unique_dirlock_ns, None)
            }
        };
        // Thread does its work, taking the directory lock partway
        // through; modeled as pool stage then lock stage.
        let after_pool = self.threads.submit(arrival, svc);
        match lock_ns {
            Some(l) => self.dirlock.submit(after_pool, l),
            None => after_pool,
        }
    }

    /// Jobs served so far.
    pub fn served(&self) -> u64 {
        self.threads.jobs
    }

    /// Total busy nanoseconds across the thread pool.
    pub fn busy_ns(&self) -> u64 {
        self.threads.busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_closed_loop;

    fn throughput(mode: LustreDirMode, phase: MdtestPhase, clients: usize) -> f64 {
        let params = SimParams::default();
        let mut mds = LustreMds::new(&params, mode);
        let r = run_closed_loop(clients, 500, |_p, _i, now| {
            let arrive = now + params.client_overhead_ns + params.net_latency_ns;
            mds.serve(phase, arrive) + params.net_latency_ns
        });
        r.ops_per_sec()
    }

    #[test]
    fn single_dir_creates_plateau_at_dirlock() {
        let t = throughput(LustreDirMode::SingleDir, MdtestPhase::Create, 256);
        // 1 / 30 µs ≈ 33 K/s — the paper's Lustre create plateau.
        assert!((28e3..38e3).contains(&t), "got {t}");
    }

    #[test]
    fn unique_dir_creates_beat_single_dir() {
        let single = throughput(LustreDirMode::SingleDir, MdtestPhase::Create, 256);
        let unique = throughput(LustreDirMode::UniqueDir, MdtestPhase::Create, 256);
        assert!(unique > single * 1.5, "unique {unique} vs single {single}");
        // Unique-dir bound: threads / (svc + lock) ≈ 65 K/s.
        assert!((50e3..80e3).contains(&unique), "got {unique}");
    }

    #[test]
    fn stats_are_not_dirlock_bound() {
        let s = throughput(LustreDirMode::SingleDir, MdtestPhase::Stat, 256);
        let u = throughput(LustreDirMode::UniqueDir, MdtestPhase::Stat, 256);
        // Both modes ≈ threads / stat_svc ≈ 122 K/s.
        assert!((100e3..140e3).contains(&s), "single {s}");
        assert!((s * 0.9..s * 1.1).contains(&u), "modes should match: {s} vs {u}");
    }

    #[test]
    fn removes_plateau_near_paper_value() {
        let t = throughput(LustreDirMode::SingleDir, MdtestPhase::Remove, 256);
        // Paper end-point ≈ 48.5 K removes/s.
        assert!((42e3..56e3).contains(&t), "got {t}");
    }

    #[test]
    fn throughput_is_flat_in_client_count() {
        // The defining Lustre behaviour in Fig. 2: more clients do NOT
        // increase single-dir metadata throughput once saturated.
        let t64 = throughput(LustreDirMode::SingleDir, MdtestPhase::Create, 64);
        let t512 = throughput(LustreDirMode::SingleDir, MdtestPhase::Create, 512);
        assert!(
            (t512 - t64).abs() / t64 < 0.1,
            "flat scaling expected: {t64} vs {t512}"
        );
    }
}
