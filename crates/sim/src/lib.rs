//! # gkfs-sim — a discrete-event simulator for the paper's evaluation
//!
//! The paper's experiments ran on MOGON II: up to **512 nodes**,
//! 16 processes each, Intel DC S3700 SSDs, 100 Gbit/s Omni-Path. That
//! testbed is the one thing this reproduction cannot build in Rust, so
//! `gkfs-sim` replaces it with a calibrated discrete-event model that
//! executes the *same decision logic* as the real client/daemon code
//! (pseudo-random placement, chunking, per-daemon handler pools,
//! single-owner size updates) against resource models (handler service
//! times, SSD envelopes, NIC bandwidth/latency).
//!
//! What is modeled mechanistically (not curve-fit):
//!
//! * closed-loop clients: each simulated process issues its next
//!   operation only after the previous one completes, exactly like
//!   mdtest/IOR ranks;
//! * placement: ops hash uniformly over daemons (GekkoFS) or hit one
//!   MDS (Lustre);
//! * queueing: every daemon is a k-server FIFO (its Margo handler
//!   pool); the Lustre MDS adds a 1-server "directory lock" stage for
//!   single-directory create/remove workloads;
//! * the data path: transfers split into 512 KiB chunks, each chunk
//!   visits its daemon's NIC (bandwidth) and SSD (per-op latency +
//!   bandwidth, with a seek penalty for intra-chunk random access);
//! * shared-file metadata: every write sends a size update to the one
//!   daemon owning the file's metadata — unless the §IV-B client cache
//!   coalesces a window of W updates into one.
//!
//! Calibration constants ([`params::SimParams`]) come from the paper's
//! own endpoints and the S3700 datasheet; `EXPERIMENTS.md` records the
//! resulting paper-vs-simulated comparison for every figure.

#![warn(missing_docs)]

pub mod deploy;
pub mod engine;
pub mod ior;
pub mod lustre;
pub mod mdtest;
pub mod params;

pub use deploy::sim_deploy_time;
pub use engine::{Clock, MultiServer};
pub use ior::{sim_ior, IorPhase, IorSimConfig, IorSimResult, SharedFileMode};
pub use lustre::LustreDirMode;
pub use mdtest::{sim_mdtest, sim_mdtest_detailed, MdtestPhase, MdtestSimConfig, SystemKind};
pub use params::SimParams;
