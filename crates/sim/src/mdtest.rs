//! mdtest at MOGON II scale: the model behind Figure 2.
//!
//! Closed-loop ranks (16 per node) issue create/stat/remove operations
//! on zero-byte files. For GekkoFS each operation is routed by path
//! hash to one of `nodes` daemons and served by its handler pool; for
//! Lustre every operation crosses to the single MDS (see
//! [`crate::lustre`]).
//!
//! The default file counts are scaled down from the paper's 100 000
//! files per process: throughput is a steady-state property, so a few
//! thousand operations per rank measure the same plateau in a fraction
//! of the events. The workload *shape* — one shared directory, uniform
//! pseudo-random placement, fixed 4 M files for Lustre — is preserved.

use crate::engine::{run_closed_loop, LoopResult, MultiServer};
use crate::lustre::{LustreDirMode, LustreMds};
use crate::params::SimParams;
use gkfs_common::hash::xxh64;

/// Which mdtest phase to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdtestPhase {
    /// The file-creation phase.
    Create,
    /// The stat phase.
    Stat,
    /// The removal phase.
    Remove,
}

/// Which system serves the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// GekkoFS: hash-distributed daemons.
    GekkoFS,
    /// The Lustre baseline: one MDS, in the given directory mode.
    Lustre(LustreDirMode),
}

/// Simulation inputs for one Figure-2 data point.
#[derive(Debug, Clone)]
pub struct MdtestSimConfig {
    /// Number of file-system nodes.
    pub nodes: usize,
    /// Which mdtest phase to run.
    pub phase: MdtestPhase,
    /// Which system serves the workload.
    pub system: SystemKind,
    /// Files per process for GekkoFS (paper: 100 000; scaled down by
    /// default — see module docs).
    pub files_per_process: u64,
    /// Total files for Lustre, fixed regardless of node count
    /// (paper: 4 000 000; scaled down proportionally by default).
    pub lustre_total_files: u64,
    /// Testbed calibration.
    pub params: SimParams,
}

impl MdtestSimConfig {
    /// Config with scaled-down default op counts.
    pub fn new(nodes: usize, phase: MdtestPhase, system: SystemKind) -> MdtestSimConfig {
        MdtestSimConfig {
            nodes,
            phase,
            system,
            files_per_process: 2_000,
            lustre_total_files: 80_000,
            params: SimParams::default(),
        }
    }
}

/// Simulate one mdtest phase; returns aggregate ops/s plus latency
/// statistics.
pub fn sim_mdtest(cfg: &MdtestSimConfig) -> LoopResult {
    sim_mdtest_detailed(cfg).0
}

/// Like [`sim_mdtest`], additionally reporting each daemon's handler
/// utilization (busy time / makespan) — the observable behind the
/// paper's load-balancing claim ("all data and metadata are
/// distributed across all nodes", §I). For the Lustre baseline a
/// single utilization (the MDS pool) is returned.
pub fn sim_mdtest_detailed(cfg: &MdtestSimConfig) -> (LoopResult, Vec<f64>) {
    let p = &cfg.params;
    let procs = cfg.nodes * p.procs_per_node;

    match cfg.system {
        SystemKind::GekkoFS => {
            let mut daemons: Vec<MultiServer> = (0..cfg.nodes)
                .map(|_| MultiServer::new(p.handler_threads))
                .collect();
            let svc = match cfg.phase {
                MdtestPhase::Create => p.create_svc_ns,
                MdtestPhase::Stat => p.stat_svc_ns,
                MdtestPhase::Remove => p.remove_svc_ns,
            };
            let nodes = cfg.nodes as u64;
            let result = run_closed_loop(procs, cfg.files_per_process, |proc, i, now| {
                // The file path's hash decides the owning daemon —
                // same placement function shape as the real client.
                let owner = (xxh64(&[proc.to_le_bytes(), i.to_le_bytes()].concat(), 0)
                    % nodes) as usize;
                let arrive = now + p.client_overhead_ns + p.net_latency_ns;
                daemons[owner].submit(arrive, svc) + p.net_latency_ns
            });
            let span = result.makespan_ns.max(1) as f64 * p.handler_threads as f64;
            let utils = daemons.iter().map(|d| d.busy_ns as f64 / span).collect();
            (result, utils)
        }
        SystemKind::Lustre(mode) => {
            let mut mds = LustreMds::new(p, mode);
            let per_proc = (cfg.lustre_total_files / procs as u64).max(1);
            let result = run_closed_loop(procs, per_proc, |_proc, _i, now| {
                let arrive = now + p.client_overhead_ns + p.net_latency_ns;
                mds.serve(cfg.phase, arrive) + p.net_latency_ns
            });
            let util = mds.busy_ns() as f64
                / (result.makespan_ns.max(1) as f64 * p.mds_threads as f64);
            (result, vec![util])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: usize, phase: MdtestPhase, system: SystemKind) -> f64 {
        let mut cfg = MdtestSimConfig::new(nodes, phase, system);
        cfg.files_per_process = 400;
        cfg.lustre_total_files = 40_000;
        sim_mdtest(&cfg).ops_per_sec()
    }

    #[test]
    fn gekkofs_single_node_near_90k_creates() {
        let t = quick(1, MdtestPhase::Create, SystemKind::GekkoFS);
        // 4 handlers / 44 µs ≈ 90 K/s (Fig. 2a left edge ≈ 1e5).
        assert!((75e3..100e3).contains(&t), "got {t}");
    }

    #[test]
    fn gekkofs_scales_near_linearly() {
        let t1 = quick(1, MdtestPhase::Create, SystemKind::GekkoFS);
        let t16 = quick(16, MdtestPhase::Create, SystemKind::GekkoFS);
        let t64 = quick(64, MdtestPhase::Create, SystemKind::GekkoFS);
        let s16 = t16 / t1;
        let s64 = t64 / t1;
        assert!(s16 > 12.0, "16-node speedup only {s16:.1}");
        assert!(s64 > 45.0, "64-node speedup only {s64:.1}");
    }

    #[test]
    fn gekkofs_beats_lustre_by_orders_of_magnitude_at_scale() {
        let g = quick(64, MdtestPhase::Create, SystemKind::GekkoFS);
        let l = quick(
            64,
            MdtestPhase::Create,
            SystemKind::Lustre(LustreDirMode::SingleDir),
        );
        let ratio = g / l;
        // At 512 nodes the paper reports ×1405; at 64 nodes the gap is
        // proportionally smaller (≈64/512 of it) but still ≈175×.
        assert!(ratio > 100.0, "ratio only {ratio:.0}");
    }

    #[test]
    fn stat_outpaces_remove_on_gekkofs() {
        let stat = quick(8, MdtestPhase::Stat, SystemKind::GekkoFS);
        let remove = quick(8, MdtestPhase::Remove, SystemKind::GekkoFS);
        assert!(stat > remove * 1.5, "stat {stat:.0} vs remove {remove:.0}");
    }

    #[test]
    fn lustre_flat_across_node_counts() {
        let l8 = quick(8, MdtestPhase::Create, SystemKind::Lustre(LustreDirMode::SingleDir));
        let l64 = quick(64, MdtestPhase::Create, SystemKind::Lustre(LustreDirMode::SingleDir));
        assert!(
            (l64 - l8).abs() / l8 < 0.15,
            "Lustre should be flat: {l8:.0} vs {l64:.0}"
        );
    }

    #[test]
    fn load_balances_across_daemons() {
        // "For load-balancing, all data and metadata are distributed
        // across all nodes" (§I): under saturation every daemon's
        // handler pool runs near-uniformly busy.
        let mut cfg = MdtestSimConfig::new(64, MdtestPhase::Create, SystemKind::GekkoFS);
        cfg.files_per_process = 400;
        let (result, utils) = sim_mdtest_detailed(&cfg);
        assert!(result.ops_per_sec() > 0.0);
        assert_eq!(utils.len(), 64);
        let max = utils.iter().cloned().fold(0.0f64, f64::max);
        let min = utils.iter().cloned().fold(1.0f64, f64::min);
        assert!(max <= 1.0 + 1e-9, "utilization cannot exceed 1: {max}");
        assert!(min > 0.75, "every daemon should be busy: min {min:.2}");
        assert!(max - min < 0.15, "spread too wide: {min:.2}..{max:.2}");
    }

    #[test]
    fn lustre_mds_is_the_single_hot_resource() {
        let mut cfg = MdtestSimConfig::new(
            64,
            MdtestPhase::Stat,
            SystemKind::Lustre(LustreDirMode::SingleDir),
        );
        cfg.lustre_total_files = 40_000;
        let (_, utils) = sim_mdtest_detailed(&cfg);
        assert_eq!(utils.len(), 1, "one MDS");
        assert!(utils[0] > 0.9, "the MDS saturates: {:.2}", utils[0]);
    }

    #[test]
    fn headline_512_node_numbers() {
        // The paper's §IV-A headline: ≈46 M creates/s, ≈44 M stats/s,
        // ≈22 M removes/s at 512 nodes. Run with reduced per-proc file
        // counts (steady state reaches the same plateau).
        let mut cfg = MdtestSimConfig::new(512, MdtestPhase::Create, SystemKind::GekkoFS);
        cfg.files_per_process = 200;
        let creates = sim_mdtest(&cfg).ops_per_sec();
        assert!(
            (38e6..52e6).contains(&creates),
            "creates at 512 nodes: {creates:.0}"
        );
        cfg.phase = MdtestPhase::Remove;
        let removes = sim_mdtest(&cfg).ops_per_sec();
        assert!(
            (18e6..26e6).contains(&removes),
            "removes at 512 nodes: {removes:.0}"
        );
    }
}
