//! Calibration constants for the MOGON II model.
//!
//! Each constant is either taken from hardware documentation (S3700
//! datasheet, Omni-Path specs) or derived from an endpoint the paper
//! itself reports; derivations are noted inline. The simulator's job
//! is to reproduce *shape* — scaling slope, who wins, where crossovers
//! sit — with these as the only free parameters.

/// All tunables of the simulated testbed.
#[derive(Debug, Clone)]
pub struct SimParams {
    // --- processes -------------------------------------------------
    /// Ranks per node (paper: 16).
    pub procs_per_node: usize,

    // --- network (100 Gbit/s Omni-Path, full bisection) -------------
    /// One-way small-message latency, ns. Omni-Path ≈ 1 µs; add client
    /// software stack → 1.5 µs.
    pub net_latency_ns: u64,
    /// Per-node NIC bandwidth, bytes/s (100 Gbit/s ≈ 12.5 GB/s; usable
    /// ≈ 11 GB/s).
    pub nic_bw: f64,

    // --- GekkoFS daemon ---------------------------------------------
    /// Margo handler threads per daemon.
    pub handler_threads: usize,
    /// Daemon-side service time of a create (RPC decode + RocksDB
    /// put), ns. Derived: paper reports ≈46 M creates/s on 512
    /// daemons → ≈90 K/s per daemon; with 4 handlers → ≈44 µs.
    pub create_svc_ns: u64,
    /// Service time of a stat (RocksDB get). ≈44 M stats/s → ≈46 µs.
    pub stat_svc_ns: u64,
    /// Service time of a remove (get + delete + chunk-dir unlink).
    /// ≈22 M removes/s → ≈93 µs.
    pub remove_svc_ns: u64,
    /// Service time of a size-update merge. Derived from the paper's
    /// shared-file ceiling: ≈150 K updates/s through one daemon with 4
    /// handlers → ≈26 µs.
    pub update_size_svc_ns: u64,
    /// Fixed daemon-side CPU cost per chunk I/O (request handling,
    /// not the SSD transfer itself), ns.
    pub chunk_handler_svc_ns: u64,
    /// Client-side per-operation overhead (interception, hashing,
    /// serialization), ns.
    pub client_overhead_ns: u64,

    // --- SSD (Intel DC S3700, XFS) ----------------------------------
    /// Sequential write bandwidth, bytes/s. Derived: 141 GiB/s at 512
    /// nodes is "~80% of aggregated SSD peak" → peak ≈ 352 MiB/s,
    /// consistent with the 400 GB S3700's ≈ 360 MB/s datasheet value.
    pub ssd_write_bw: f64,
    /// Sequential read bandwidth, bytes/s. 204 GiB/s = "~70% of peak"
    /// → ≈ 583 MiB/s ≈ the S3700's 500-550 MB/s envelope with kernel
    /// readahead.
    pub ssd_read_bw: f64,
    /// Fixed per-I/O cost on the write path (FS + device), ns.
    pub ssd_write_op_ns: u64,
    /// Fixed per-I/O cost on the read path, ns.
    pub ssd_read_op_ns: u64,
    /// Extra penalty for a *random offset within an existing chunk
    /// file* (read-modify-write / missed readahead), write path, ns.
    /// Derived from the paper's −33% random-write throughput at 8 KiB.
    pub ssd_write_seek_ns: u64,
    /// Same for reads. Derived from −60% random-read throughput:
    /// random 8 KiB reads lose the readahead benefit entirely.
    pub ssd_read_seek_ns: u64,
    /// Fraction of raw SSD write bandwidth a sustained one-file-per-
    /// chunk stream achieves through XFS + the daemon (the paper's
    /// "~80% of the aggregated SSD peak bandwidth").
    pub fs_write_eff: f64,
    /// Read-path equivalent (paper: "~70%").
    pub fs_read_eff: f64,

    // --- GekkoFS layout ----------------------------------------------
    /// Chunk size, bytes (paper evaluation: 512 KiB).
    pub chunk_size: u64,

    // --- Lustre baseline ----------------------------------------------
    /// MDS service threads.
    pub mds_threads: usize,
    /// MDS service time per create, ns. With the dirlock this yields
    /// the paper's ≈33 K creates/s single-dir plateau.
    pub mds_create_svc_ns: u64,
    /// MDS per-stat service, ns (≈122 K stats/s plateau → ≈131 µs
    /// over 16 threads).
    pub mds_stat_svc_ns: u64,
    /// MDS per-remove service, ns (≈49 K removes/s plateau).
    pub mds_remove_svc_ns: u64,
    /// Serialized critical section under the single-directory lock for
    /// creates, ns (this — not thread count — caps single-dir
    /// throughput; ≈33 K creates/s plateau → ≈30 µs).
    pub mds_dirlock_ns: u64,
    /// Dirlock hold time for removes (≈49 K removes/s → ≈20 µs; the
    /// unlink path holds the lock for less work than insert).
    pub mds_remove_dirlock_ns: u64,
    /// Unique-dir mode relieves the shared lock but per-directory
    /// locks still serialize each rank's own directory; a shorter
    /// critical section remains (added to the MDS service time).
    pub mds_unique_dirlock_ns: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            procs_per_node: 16,

            net_latency_ns: 1_500,
            nic_bw: 11.0e9,

            handler_threads: 4,
            create_svc_ns: 44_000,
            stat_svc_ns: 46_000,
            remove_svc_ns: 92_000,
            update_size_svc_ns: 26_000,
            chunk_handler_svc_ns: 6_000,
            client_overhead_ns: 3_000,

            ssd_write_bw: 352.0 * 1024.0 * 1024.0,
            ssd_read_bw: 583.0 * 1024.0 * 1024.0,
            ssd_write_op_ns: 8_000,
            ssd_read_op_ns: 2_000,
            ssd_write_seek_ns: 20_000,
            ssd_read_seek_ns: 35_000,
            fs_write_eff: 0.88,
            fs_read_eff: 0.78,

            chunk_size: 512 * 1024,

            mds_threads: 16,
            mds_create_svc_ns: 230_000,
            mds_stat_svc_ns: 131_000,
            mds_remove_svc_ns: 300_000,
            mds_dirlock_ns: 30_000,
            mds_remove_dirlock_ns: 20_000,
            mds_unique_dirlock_ns: 14_000,
        }
    }
}

impl SimParams {
    /// Aggregated raw SSD write bandwidth for `nodes` nodes, in MiB/s —
    /// the white "SSD peak perf." rectangles in Fig. 3.
    pub fn ssd_peak_write_mib_s(&self, nodes: usize) -> f64 {
        self.ssd_write_bw * nodes as f64 / (1024.0 * 1024.0)
    }

    /// Aggregated raw SSD read bandwidth, MiB/s.
    pub fn ssd_peak_read_mib_s(&self, nodes: usize) -> f64 {
        self.ssd_read_bw * nodes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_daemon_capacity_matches_paper_endpoint() {
        let p = SimParams::default();
        // capacity/daemon = handlers / svc; × 512 daemons ≈ 46 M/s.
        let per_daemon = p.handler_threads as f64 / (p.create_svc_ns as f64 / 1e9);
        let total = per_daemon * 512.0;
        assert!(
            (40e6..55e6).contains(&total),
            "512-node create capacity {total:.0} should be ≈46M"
        );
    }

    #[test]
    fn ssd_peaks_match_figure_3_rectangles() {
        let p = SimParams::default();
        // Paper: 141 GiB/s ≈ 80% of write peak at 512 nodes.
        let write_peak = p.ssd_peak_write_mib_s(512);
        assert!((write_peak * 0.8 - 141.0 * 1024.0).abs() / (141.0 * 1024.0) < 0.05);
        // Paper: 204 GiB/s ≈ 70% of read peak.
        let read_peak = p.ssd_peak_read_mib_s(512);
        assert!((read_peak * 0.7 - 204.0 * 1024.0).abs() / (204.0 * 1024.0) < 0.05);
    }

    #[test]
    fn shared_file_ceiling_matches_paper() {
        let p = SimParams::default();
        // One daemon absorbs all size updates: handlers / svc ≈ 150 K/s.
        let ceiling = p.handler_threads as f64 / (p.update_size_svc_ns as f64 / 1e9);
        assert!((130e3..170e3).contains(&ceiling), "got {ceiling}");
    }
}
