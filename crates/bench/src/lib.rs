//! # gkfs-bench — benchmark harness for the paper's evaluation
//!
//! Two kinds of targets live here:
//!
//! * **Figure binaries** (`src/bin/`): regenerate every figure and
//!   in-text experiment of the paper's §IV, printing the same series
//!   the plots show. Run with `--release`:
//!   - `fig2` — Fig. 2a/b/c: create/stat/remove ops/s vs node count,
//!     GekkoFS vs Lustre single/unique dir (+ the §IV-A headline
//!     ratios), with a real-FS validation pass at small node counts.
//!   - `fig3` — Fig. 3a/b: sequential write/read MiB/s vs node count
//!     for 8 KiB / 64 KiB / 1 MiB / 64 MiB transfers, with the
//!     aggregated-SSD-peak reference and a real-FS validation pass.
//!   - `random_access` — §IV-B: random vs sequential throughput.
//!   - `shared_file` — §IV-B: the shared-file ceiling and the client
//!     size-update cache fix.
//!   - `deploy_time` — §I/§IV: deployment time vs node count.
//! * **Criterion microbenches** (`benches/`): kvstore, RPC, chunking/
//!   distribution, storage backends, end-to-end client I/O, and the
//!   DESIGN.md ablations (chunk size, distributor choice, handler pool
//!   width, bloom filters).

#![warn(missing_docs)]

use std::fmt::Display;

/// Format one row of a fixed-width results table.
pub fn row(cells: &[&dyn Display], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{:>w$}", c.to_string(), w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Human-readable ops/s (e.g. `46.1M`).
pub fn human_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Human-readable MiB/s (switches to GiB/s when large).
pub fn human_mib(v: f64) -> String {
    if v >= 10_240.0 {
        format!("{:.1}G", v / 1024.0)
    } else {
        format!("{v:.0}")
    }
}

/// The node counts on the paper's x-axes.
pub const NODE_SWEEP: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_ops_scales() {
        assert_eq!(human_ops(42.0), "42");
        assert_eq!(human_ops(46_100_000.0), "46.1M");
        assert_eq!(human_ops(33_400.0), "33.4K");
    }

    #[test]
    fn human_mib_switches_units() {
        assert_eq!(human_mib(350.0), "350");
        assert_eq!(human_mib(144_384.0), "141.0G");
    }

    #[test]
    fn row_alignment() {
        let r = row(&[&"a", &12, &3.5], &[4, 6, 8]);
        assert_eq!(r, "   a      12       3.5");
    }
}
