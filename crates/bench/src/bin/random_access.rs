//! §IV-B random-access experiment: random vs sequential throughput.
//!
//! Paper: *"random accesses for large transfer sizes are conceptually
//! the same as sequential accesses. For smaller transfer sizes, e.g.,
//! 8 KiB, random write and read throughput decreased by approximately
//! 33% and 60%, respectively, for 512 nodes."*

use gkfs_sim::{sim_ior, IorPhase, IorSimConfig, SharedFileMode};
use gkfs_workloads::{run_ior, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn sim(nodes: usize, phase: IorPhase, xfer: u64, random: bool) -> f64 {
    let mut cfg = IorSimConfig::new(nodes, phase, xfer);
    cfg.mode = SharedFileMode::FilePerProcess;
    cfg.random = random;
    cfg.data_per_proc = if xfer <= 64 * KIB { 4 * MIB } else { 16 * MIB };
    sim_ior(&cfg).mib_per_sec()
}

fn main() {
    println!("== §IV-B: random vs sequential access (512 nodes, file-per-process) ==\n");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>8}",
        "phase", "xfer", "seq MiB/s", "rand MiB/s", "delta"
    );
    for (phase, label) in [(IorPhase::Write, "write"), (IorPhase::Read, "read")] {
        for (xfer, xl) in [(8 * KIB, "8k"), (64 * KIB, "64k"), (MIB, "1m")] {
            let seq = sim(512, phase, xfer, false);
            let rnd = sim(512, phase, xfer, true);
            println!(
                "{:>6} {:>6} {:>12.0} {:>12.0} {:>7.0}%",
                label,
                xl,
                seq,
                rnd,
                100.0 * (rnd / seq - 1.0)
            );
        }
    }
    println!("\npaper: 8 KiB random write ~-33%, random read ~-60%,");
    println!("       >= chunk size (512 KiB): random ~= sequential\n");

    // Real-FS check at laptop scale: the same asymmetry must appear in
    // the actual code path (random sub-chunk offsets still hit whole
    // chunk files).
    println!("== real-FS check (in-process, 4 nodes x 4 procs, 8 KiB) ==");
    let cluster = gekkofs::Cluster::deploy(gekkofs::ClusterConfig::new(4)).unwrap();
    for random in [false, true] {
        let cfg = IorConfig {
            processes: 4,
            transfer_size: 8 * KIB,
            block_size: 4 * MIB,
            file_per_process: true,
            random,
            work_dir: format!("/ra-{random}"),
        };
        let r = run_ior(&cluster, &cfg).unwrap();
        println!(
            "  {}: write {:.0} MiB/s, read {:.0} MiB/s",
            if random { "random    " } else { "sequential" },
            r.write_mib_per_sec(),
            r.read_mib_per_sec()
        );
    }
    cluster.shutdown();
    println!("\n(in-memory backends have no seek cost, so the real-FS check");
    println!(" verifies correctness of the random path, not the slowdown)");
}
