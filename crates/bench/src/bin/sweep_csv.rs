//! Emit every figure's data series as CSV (for plotting), mirroring
//! what the pretty-printing binaries show:
//!
//! ```sh
//! cargo run --release -p gkfs-bench --bin sweep_csv [outdir]
//! ```
//!
//! Writes `fig2.csv`, `fig3.csv`, `random_access.csv`,
//! `shared_file.csv`, `deploy_time.csv` under `outdir` (default
//! `results/`).

use gkfs_bench::NODE_SWEEP;
use gkfs_sim::{
    sim_deploy_time, sim_ior, sim_mdtest, IorPhase, IorSimConfig, LustreDirMode, MdtestPhase,
    MdtestSimConfig, SharedFileMode, SimParams, SystemKind,
};
use std::fmt::Write as _;

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn mdtest(nodes: usize, phase: MdtestPhase, system: SystemKind) -> f64 {
    let mut cfg = MdtestSimConfig::new(nodes, phase, system);
    cfg.files_per_process = if nodes >= 128 { 300 } else { 1000 };
    cfg.lustre_total_files = 80_000;
    sim_mdtest(&cfg).ops_per_sec()
}

fn ior(nodes: usize, phase: IorPhase, xfer: u64, random: bool, mode: SharedFileMode) -> f64 {
    let mut cfg = IorSimConfig::new(nodes, phase, xfer);
    cfg.random = random;
    cfg.mode = mode;
    cfg.data_per_proc = match xfer {
        x if x <= 64 * KIB => 4 * MIB,
        x if x <= MIB => 16 * MIB,
        _ => 64 * MIB,
    };
    sim_ior(&cfg).mib_per_sec()
}

fn main() {
    let outdir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");
    let params = SimParams::default();

    // ---- fig2.csv: metadata ops/s -------------------------------
    let mut csv = String::from("phase,nodes,gekkofs,lustre_single,lustre_unique\n");
    for (phase, name) in [
        (MdtestPhase::Create, "create"),
        (MdtestPhase::Stat, "stat"),
        (MdtestPhase::Remove, "remove"),
    ] {
        for nodes in NODE_SWEEP {
            writeln!(
                csv,
                "{name},{nodes},{:.0},{:.0},{:.0}",
                mdtest(nodes, phase, SystemKind::GekkoFS),
                mdtest(nodes, phase, SystemKind::Lustre(LustreDirMode::SingleDir)),
                mdtest(nodes, phase, SystemKind::Lustre(LustreDirMode::UniqueDir)),
            )
            .unwrap();
        }
    }
    std::fs::write(format!("{outdir}/fig2.csv"), &csv).unwrap();

    // ---- fig3.csv: sequential throughput ------------------------
    let mut csv = String::from("phase,nodes,xfer,mib_s,ssd_peak_mib_s\n");
    for (phase, name) in [(IorPhase::Write, "write"), (IorPhase::Read, "read")] {
        for (xfer, label) in [(8 * KIB, "8k"), (64 * KIB, "64k"), (MIB, "1m"), (64 * MIB, "64m")] {
            for nodes in NODE_SWEEP {
                let peak = match phase {
                    IorPhase::Write => params.ssd_peak_write_mib_s(nodes),
                    IorPhase::Read => params.ssd_peak_read_mib_s(nodes),
                };
                writeln!(
                    csv,
                    "{name},{nodes},{label},{:.0},{:.0}",
                    ior(nodes, phase, xfer, false, SharedFileMode::FilePerProcess),
                    peak
                )
                .unwrap();
            }
        }
    }
    std::fs::write(format!("{outdir}/fig3.csv"), &csv).unwrap();

    // ---- random_access.csv --------------------------------------
    let mut csv = String::from("phase,xfer,seq_mib_s,rand_mib_s\n");
    for (phase, name) in [(IorPhase::Write, "write"), (IorPhase::Read, "read")] {
        for (xfer, label) in [(8 * KIB, "8k"), (64 * KIB, "64k"), (MIB, "1m")] {
            writeln!(
                csv,
                "{name},{label},{:.0},{:.0}",
                ior(512, phase, xfer, false, SharedFileMode::FilePerProcess),
                ior(512, phase, xfer, true, SharedFileMode::FilePerProcess),
            )
            .unwrap();
        }
    }
    std::fs::write(format!("{outdir}/random_access.csv"), &csv).unwrap();

    // ---- shared_file.csv -----------------------------------------
    let mut csv = String::from("nodes,fpp_iops,shared_iops,shared_cached_iops\n");
    for nodes in [4usize, 16, 64, 256, 512] {
        let run = |mode| {
            let mut cfg = IorSimConfig::new(nodes, IorPhase::Write, 8 * KIB);
            cfg.mode = mode;
            cfg.data_per_proc = 2 * MIB;
            sim_ior(&cfg).iops()
        };
        writeln!(
            csv,
            "{nodes},{:.0},{:.0},{:.0}",
            run(SharedFileMode::FilePerProcess),
            run(SharedFileMode::SharedNoCache),
            run(SharedFileMode::SharedCached { window: 256 }),
        )
        .unwrap();
    }
    std::fs::write(format!("{outdir}/shared_file.csv"), &csv).unwrap();

    // ---- deploy_time.csv -----------------------------------------
    let mut csv = String::from("nodes,seconds\n");
    for nodes in NODE_SWEEP {
        writeln!(
            csv,
            "{nodes},{:.2}",
            sim_deploy_time(nodes, &params).as_secs_f64()
        )
        .unwrap();
    }
    std::fs::write(format!("{outdir}/deploy_time.csv"), &csv).unwrap();

    println!("wrote fig2.csv fig3.csv random_access.csv shared_file.csv deploy_time.csv to {outdir}/");
}
