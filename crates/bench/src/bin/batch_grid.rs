//! Multi-core batch data-plane scoreboard: clients × chunk-io-threads.
//!
//! Drives `ChunkStorage::submit_batch` read batches against the file
//! backend from N concurrent "handler" threads while the storage engine
//! runs M I/O threads, over the two shapes the daemon actually sees:
//! many large chunks (64×64 KiB — IOR-style streaming) and many small
//! ones (256×16 KiB — small-file / DL workloads). This is the
//! scoreboard for data-plane PRs: EXPERIMENTS.md records its grid, and
//! regressions show up as a cell, not an average.
//!
//! `io-threads = 0` collapses the engine to fully synchronous serial
//! I/O and is the baseline column; on this backend reads are served
//! from cached chunk mappings on every engine, so the columns mostly
//! measure how well completion fan-out overlaps *independent* clients.
//!
//! Usage: batch_grid [rounds] [iters]

use gkfs_common::IoBackend;
use gkfs_storage::{BatchOp, BatchPayload, ChunkStorage, FileChunkStorage};
use std::time::Instant;

const KIB: u64 = 1024;

struct Shape {
    label: &'static str,
    chunks: u64,
    op_len: u64,
}

const SHAPES: [Shape; 2] = [
    Shape { label: "64x64k", chunks: 64, op_len: 64 * KIB },
    Shape { label: "256x16k", chunks: 256, op_len: 16 * KIB },
];

fn dense_ops(shape: &Shape) -> Vec<BatchOp> {
    (0..shape.chunks)
        .map(|id| BatchOp {
            chunk_id: id,
            offset: 0,
            len: shape.op_len,
            buf_offset: id * shape.op_len,
        })
        .collect()
}

/// One grid cell: `clients` threads each running `iters` read batches
/// against their own path (distinct fd-cache entries, like distinct
/// files on a real daemon). Returns best-round per-batch latency (µs)
/// and the matching aggregate throughput (MiB/s).
fn cell(
    storage: &FileChunkStorage,
    shape: &Shape,
    clients: usize,
    rounds: usize,
    iters: usize,
) -> (f64, f64) {
    let ops = dense_ops(shape);
    let total = (shape.chunks * shape.op_len) as usize;
    let chunk = vec![0xB7u8; shape.op_len as usize];
    for c in 0..clients {
        for id in 0..shape.chunks {
            storage
                .write_chunk(&format!("/grid/{}/{c}", shape.label), id, 0, &chunk)
                .unwrap();
        }
    }
    let run_client = |c: usize, iters: usize| {
        let path = format!("/grid/{}/{c}", shape.label);
        for _ in 0..iters {
            let done = storage
                .submit_batch(&path, &ops, BatchPayload::Read)
                .wait()
                .unwrap();
            std::hint::black_box(done);
        }
    };
    // Warm the fd/mapping caches before timing.
    for c in 0..clients {
        run_client(c, 2);
    }
    let mut best_us = f64::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                s.spawn(move || run_client(c, iters));
            }
        });
        let us = t0.elapsed().as_secs_f64() * 1e6 / (iters * clients) as f64;
        if us < best_us {
            best_us = us;
        }
    }
    let mib_s = (clients * total) as f64 / (1 << 20) as f64 / (best_us * 1e-6 * clients as f64);
    (best_us, mib_s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rounds: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(3);
    let iters: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(20);
    let io_threads = [0usize, 1, 2, 4];
    let clients = [1usize, 2, 4];
    println!("== multi-core batch read grid (best of {rounds} rounds, {iters} iters/cell) ==");
    for shape in &SHAPES {
        println!("\n-- shape {} ({} KiB/batch) --", shape.label, shape.chunks * shape.op_len / KIB);
        print!("{:>12}", "io-threads");
        for c in &clients {
            print!(" {:>9}", format!("c={c} us"));
        }
        println!(" {:>10}", "agg MiB/s");
        for &t in &io_threads {
            let dir = std::env::temp_dir()
                .join(format!("gkfs-grid-{}-{}-{t}", std::process::id(), shape.label));
            let _ = std::fs::remove_dir_all(&dir);
            let backend = if t == 0 { IoBackend::Serial } else { IoBackend::Pool };
            let storage = FileChunkStorage::open_with(&dir, backend, t, 64).unwrap();
            let mut row = Vec::new();
            let mut last_mib = 0.0;
            for &c in &clients {
                let (us, mib) = cell(&storage, shape, c, rounds, iters);
                row.push(us);
                last_mib = mib;
            }
            print!("{:>10} {:>1}", storage.engine_name(), t);
            for us in &row {
                print!(" {:>9.1}", us);
            }
            println!(" {:>10.0}", last_mib);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    println!("\n(agg MiB/s column is for the widest client count; per-batch");
    println!(" latency is wall-clock across all clients / total batches)");
}
