//! Figure 2 (a/b/c): GekkoFS vs Lustre metadata throughput, 1–512
//! nodes, 16 processes per node.
//!
//! The 512-node series comes from the calibrated simulator; the small
//! node counts are additionally validated against the *real* file
//! system running in-process. Finishes with the §IV-A headline
//! numbers (absolute ops/s at 512 nodes and the speedup ratios vs
//! Lustre).

use gkfs_bench::{human_ops, NODE_SWEEP};
use gkfs_sim::{
    sim_mdtest, LustreDirMode, MdtestPhase, MdtestSimConfig, SystemKind,
};
use gkfs_workloads::{run_mdtest, MdtestConfig};

fn sim(nodes: usize, phase: MdtestPhase, system: SystemKind) -> f64 {
    let mut cfg = MdtestSimConfig::new(nodes, phase, system);
    // Scaled-down steady-state run (see gkfs-sim docs); large node
    // counts need fewer ops per proc to reach the plateau.
    cfg.files_per_process = if nodes >= 128 { 300 } else { 1000 };
    cfg.lustre_total_files = 80_000;
    sim_mdtest(&cfg).ops_per_sec()
}

fn main() {
    println!("== Figure 2: mdtest throughput vs node count (16 procs/node) ==");
    println!("   workload: create/stat/remove, zero-byte files, single directory");
    println!("   gekkofs: 100K files/proc in paper, scaled-down steady state here");
    println!("   lustre:  4M files fixed in paper, scaled-down here; one MDS\n");

    for (phase, name) in [
        (MdtestPhase::Create, "Fig 2a: CREATE throughput [ops/s]"),
        (MdtestPhase::Stat, "Fig 2b: STAT throughput [ops/s]"),
        (MdtestPhase::Remove, "Fig 2c: REMOVE throughput [ops/s]"),
    ] {
        println!("{name}");
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            "nodes", "GekkoFS", "Lustre-single", "Lustre-unique"
        );
        for nodes in NODE_SWEEP {
            let g = sim(nodes, phase, SystemKind::GekkoFS);
            let ls = sim(nodes, phase, SystemKind::Lustre(LustreDirMode::SingleDir));
            let lu = sim(nodes, phase, SystemKind::Lustre(LustreDirMode::UniqueDir));
            println!(
                "{:>6} {:>14} {:>14} {:>14}",
                nodes,
                human_ops(g),
                human_ops(ls),
                human_ops(lu)
            );
        }
        println!();
    }

    // §IV-A headline numbers.
    println!("== §IV-A headline (512 nodes) ==");
    let mut headline = Vec::new();
    for (phase, label, paper_g, paper_ratio) in [
        (MdtestPhase::Create, "creates", 46e6, 1405.0),
        (MdtestPhase::Stat, "stats", 44e6, 359.0),
        (MdtestPhase::Remove, "removes", 22e6, 453.0),
    ] {
        // The paper's ratios compare against Lustre in the same
        // single-directory workload.
        let g = sim(512, phase, SystemKind::GekkoFS);
        let l = sim(512, phase, SystemKind::Lustre(LustreDirMode::SingleDir));
        headline.push((label, g, g / l));
        println!(
            "  {label:>8}: {} /s (paper ~{}), {:.0}x vs Lustre (paper ~{:.0}x)",
            human_ops(g),
            human_ops(paper_g),
            g / l,
            paper_ratio
        );
    }

    // Load balance at 512 nodes — the mechanism behind the linear
    // scaling (§I: "all data and metadata are distributed across all
    // nodes").
    {
        let mut cfg = MdtestSimConfig::new(512, MdtestPhase::Create, SystemKind::GekkoFS);
        cfg.files_per_process = 200;
        let (_, utils) = gkfs_sim::sim_mdtest_detailed(&cfg);
        let max = utils.iter().cloned().fold(0.0f64, f64::max);
        let min = utils.iter().cloned().fold(1.0f64, f64::min);
        println!(
            "\n  daemon handler utilization at 512 nodes: min {:.0}% / max {:.0}%",
            min * 100.0,
            max * 100.0
        );
    }

    // Real-FS validation at small scale: the actual client/daemon code
    // run in-process, 4 "nodes" x 4 procs. The figure legend says
    // "GekkoFS single/unique dir" — one line, because the flat
    // namespace makes the two workloads identical; verify that too.
    println!("\n== real-FS validation (in-process cluster) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14}",
        "nodes", "create/s", "stat/s", "remove/s", "create(uniq)/s"
    );
    for nodes in [1usize, 2, 4, 8] {
        let cluster = gekkofs::Cluster::deploy(gekkofs::ClusterConfig::new(nodes)).unwrap();
        let cfg = MdtestConfig {
            processes: nodes * 4, // scaled-down rank count
            files_per_process: 500,
            work_dir: "/mdtest".into(),
            unique_dir: false,
        };
        let r = run_mdtest(&cluster, &cfg).unwrap();
        let unique = run_mdtest(
            &cluster,
            &MdtestConfig {
                unique_dir: true,
                work_dir: "/mdtest-u".into(),
                ..cfg.clone()
            },
        )
        .unwrap();
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>14}",
            nodes,
            human_ops(r.creates_per_sec()),
            human_ops(r.stats_per_sec()),
            human_ops(r.removes_per_sec()),
            human_ops(unique.creates_per_sec())
        );
        cluster.shutdown();
    }
    println!("\n(real-FS numbers are laptop-scale; the figure's shape — GekkoFS");
    println!(" scaling with nodes while Lustre stays flat — is the reproduced claim)");
}
