//! Figure 3 (a/b): GekkoFS sequential write/read throughput for
//! file-per-process IOR, transfer sizes 8 KiB–64 MiB, vs the
//! aggregated SSD peak.

use gkfs_bench::{human_mib, NODE_SWEEP};
use gkfs_sim::{sim_ior, IorPhase, IorSimConfig, SharedFileMode, SimParams};
use gkfs_workloads::{run_ior, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const XFERS: [(u64, &str); 4] = [
    (8 * KIB, "8k"),
    (64 * KIB, "64k"),
    (MIB, "1m"),
    (64 * MIB, "64m"),
];

fn sim(nodes: usize, phase: IorPhase, xfer: u64) -> f64 {
    let mut cfg = IorSimConfig::new(nodes, phase, xfer);
    cfg.mode = SharedFileMode::FilePerProcess;
    // Steady-state volume, scaled down from the paper's 4 GiB/proc.
    cfg.data_per_proc = match xfer {
        x if x <= 64 * KIB => 4 * MIB,
        x if x <= MIB => 16 * MIB,
        _ => 64 * MIB,
    };
    sim_ior(&cfg).mib_per_sec()
}

fn main() {
    let params = SimParams::default();
    println!("== Figure 3: IOR sequential throughput, file-per-process ==");
    println!("   (16 procs/node; paper: 4 GiB/proc, scaled-down steady state here)\n");

    for (phase, name, peak_fn) in [
        (
            IorPhase::Write,
            "Fig 3a: WRITE throughput [MiB/s]",
            SimParams::ssd_peak_write_mib_s as fn(&SimParams, usize) -> f64,
        ),
        (
            IorPhase::Read,
            "Fig 3b: READ throughput [MiB/s]",
            SimParams::ssd_peak_read_mib_s as fn(&SimParams, usize) -> f64,
        ),
    ] {
        println!("{name}");
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
            "nodes", "8k", "64k", "1m", "64m", "SSD-peak"
        );
        for nodes in NODE_SWEEP {
            let cells: Vec<String> = XFERS
                .iter()
                .map(|(x, _)| human_mib(sim(nodes, phase, *x)))
                .collect();
            println!(
                "{:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
                nodes,
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                human_mib(peak_fn(&params, nodes))
            );
        }
        println!();
    }

    // Paper endpoints at 512 nodes.
    let w64 = sim(512, IorPhase::Write, 64 * MIB);
    let r64 = sim(512, IorPhase::Read, 64 * MIB);
    println!("== §IV-B endpoints (512 nodes, 64 MiB transfers) ==");
    println!(
        "  write: {:.0} GiB/s = {:.0}% of SSD peak (paper: ~141 GiB/s, ~80%)",
        w64 / 1024.0,
        100.0 * w64 / params.ssd_peak_write_mib_s(512)
    );
    println!(
        "  read:  {:.0} GiB/s = {:.0}% of SSD peak (paper: ~204 GiB/s, ~70%)",
        r64 / 1024.0,
        100.0 * r64 / params.ssd_peak_read_mib_s(512)
    );
    let w8 = sim_ior(&{
        let mut c = IorSimConfig::new(512, IorPhase::Write, 8 * KIB);
        c.data_per_proc = 8 * MIB;
        c
    });
    let r8 = sim_ior(&{
        let mut c = IorSimConfig::new(512, IorPhase::Read, 8 * KIB);
        c.data_per_proc = 8 * MIB;
        c
    });
    println!(
        "  8 KiB write IOPS: {:.1}M (paper: >13M), mean latency {:.0} us (paper: <=700 us)",
        w8.iops() / 1e6,
        w8.mean_latency_us()
    );
    println!(
        "  8 KiB read IOPS:  {:.1}M (paper: >22M)",
        r8.iops() / 1e6
    );

    // Real-FS validation: actual data path in-process (memory-backed,
    // so absolute numbers reflect RAM, not SSDs — shape only).
    println!("\n== real-FS validation (in-process cluster, 4 nodes x 4 procs) ==");
    println!("{:>8} {:>12} {:>12}", "xfer", "write MiB/s", "read MiB/s");
    let cluster = gekkofs::Cluster::deploy(gekkofs::ClusterConfig::new(4)).unwrap();
    for (xfer, label) in [(8 * KIB, "8k"), (64 * KIB, "64k"), (MIB, "1m")] {
        let cfg = IorConfig {
            processes: 4,
            transfer_size: xfer,
            block_size: 8 * MIB,
            file_per_process: true,
            random: false,
            work_dir: format!("/ior-{label}"),
        };
        let r = run_ior(&cluster, &cfg).unwrap();
        println!(
            "{:>8} {:>12} {:>12}",
            label,
            human_mib(r.write_mib_per_sec()),
            human_mib(r.read_mib_per_sec())
        );
    }
    cluster.shutdown();
}
