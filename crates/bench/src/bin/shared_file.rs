//! §IV-B shared-file experiment: the size-update hotspot and the
//! client-cache fix.
//!
//! Paper: *"No more than approximately 150K write operations per
//! second were achieved ... due to network contention on the daemon
//! which maintains the shared file's metadata ... we added a
//! rudimentary client cache to locally buffer size updates ... As a
//! result, shared file I/O throughput for sequential and random access
//! were similar to file-per-process performances."*

use gkfs_sim::{sim_ior, IorPhase, IorSimConfig, SharedFileMode};
use gkfs_workloads::{run_ior, IorConfig};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn sim(nodes: usize, mode: SharedFileMode) -> (f64, f64) {
    let mut cfg = IorSimConfig::new(nodes, IorPhase::Write, 8 * KIB);
    cfg.mode = mode;
    cfg.data_per_proc = 2 * MIB;
    let r = sim_ior(&cfg);
    (r.iops(), r.mib_per_sec())
}

fn main() {
    println!("== §IV-B: shared-file writes (8 KiB transfers) ==\n");
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "nodes", "fpp ops/s", "shared ops/s", "shared+cache"
    );
    for nodes in [4usize, 16, 64, 256, 512] {
        let (fpp, _) = sim(nodes, SharedFileMode::FilePerProcess);
        let (nocache, _) = sim(nodes, SharedFileMode::SharedNoCache);
        let (cached, _) = sim(nodes, SharedFileMode::SharedCached { window: 256 });
        println!(
            "{:>6} {:>16} {:>16} {:>16}",
            nodes,
            gkfs_bench::human_ops(fpp),
            gkfs_bench::human_ops(nocache),
            gkfs_bench::human_ops(cached)
        );
    }
    println!("\npaper: uncached shared-file writes cap at ~150K ops/s (flat),");
    println!("       cached ~= file-per-process\n");

    // Real-FS demonstration: same experiment through the actual client
    // cache (ClusterConfig::with_size_cache), small scale.
    println!("== real-FS check (in-process, 4 nodes x 8 procs, 8 KiB shared) ==");
    for (label, cache) in [("no cache", 0usize), ("cache w=32", 32)] {
        let config = gekkofs::ClusterConfig::new(4).with_size_cache(cache);
        let cluster = gekkofs::Cluster::deploy(config).unwrap();
        let cfg = IorConfig {
            processes: 8,
            transfer_size: 8 * KIB,
            block_size: 2 * MIB,
            file_per_process: false,
            random: false,
            work_dir: "/shared".into(),
        };
        let r = run_ior(&cluster, &cfg).unwrap();
        println!(
            "  {label:>10}: {:.0} write ops/s ({:.0} MiB/s)",
            r.write_iops(),
            r.write_mib_per_sec()
        );
        cluster.shutdown();
    }
    println!("\n(in-process RPC is so cheap that the hotspot needs scale to bite;");
    println!(" the cache's correctness — same final size, fewer updates — is");
    println!(" asserted in the test suites)");
}
