//! §V future work, item 1: "Investigate GekkoFS' [performance] with
//! various chunk sizes" — at simulated MOGON II scale.
//!
//! Small chunks stripe even medium files over many SSDs but pay the
//! fixed per-chunk-file cost more often; large chunks amortize that
//! cost but concentrate a transfer on fewer SSDs. The sweep shows the
//! trade-off and where the paper's 512 KiB default sits.

use gkfs_sim::{sim_ior, IorPhase, IorSimConfig, SharedFileMode, SimParams};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn run(nodes: usize, xfer: u64, chunk: u64, phase: IorPhase) -> f64 {
    let mut cfg = IorSimConfig::new(nodes, phase, xfer);
    cfg.mode = SharedFileMode::FilePerProcess;
    cfg.params = SimParams {
        chunk_size: chunk,
        ..SimParams::default()
    };
    cfg.data_per_proc = (16 * MIB).max(xfer);
    sim_ior(&cfg).mib_per_sec()
}

fn main() {
    println!("== chunk-size ablation (simulated, 64 nodes, file-per-process) ==\n");
    let chunks = [64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, 1024 * KIB, 4096 * KIB];
    for (phase, pname) in [(IorPhase::Write, "WRITE"), (IorPhase::Read, "READ")] {
        println!("{pname} [MiB/s]");
        print!("{:>10}", "xfer\\chunk");
        for c in chunks {
            print!(" {:>8}K", c / KIB);
        }
        println!();
        for (xfer, label) in [
            (8 * KIB, "8k"),
            (64 * KIB, "64k"),
            (MIB, "1m"),
            (16 * MIB, "16m"),
        ] {
            print!("{label:>10}");
            for c in chunks {
                print!(" {:>9.0}", run(64, xfer, c, phase));
            }
            println!();
        }
        println!();
    }
    println!("(the paper's default, 512 KiB, balances per-chunk-file cost");
    println!(" against striping width; sub-chunk transfers are insensitive,");
    println!(" chunk-spanning transfers prefer chunks small enough to spread)");
}
