//! Deployment time: "it can be easily deployed in under 20 seconds on
//! a 512 node cluster by any user" (§I; §IV: daemon restarts take
//! <20 s at 512 nodes).

use gkfs_sim::{sim_deploy_time, SimParams};
use std::time::Instant;

fn main() {
    let params = SimParams::default();
    println!("== deployment time vs node count ==\n");
    println!("{:>6} {:>14}", "nodes", "simulated");
    for nodes in gkfs_bench::NODE_SWEEP {
        let t = sim_deploy_time(nodes, &params);
        println!("{:>6} {:>13.2}s", nodes, t.as_secs_f64());
    }
    println!("\npaper bound: < 20 s at 512 nodes\n");

    println!("== real in-process deployment (measured) ==\n");
    println!("{:>6} {:>14} {:>14}", "nodes", "deploy", "shutdown");
    for nodes in [1usize, 8, 64, 256, 512] {
        let t0 = Instant::now();
        let cluster = gekkofs::Cluster::deploy(gekkofs::ClusterConfig::new(nodes)).unwrap();
        let deploy = t0.elapsed();
        let t1 = Instant::now();
        cluster.shutdown();
        let stop = t1.elapsed();
        println!(
            "{:>6} {:>13.3}s {:>13.3}s",
            nodes,
            deploy.as_secs_f64(),
            stop.as_secs_f64()
        );
    }
    println!("\n(in-process daemons skip ssh fan-out; the simulated column");
    println!(" models the remote-launch tree of a real cluster)");
}
