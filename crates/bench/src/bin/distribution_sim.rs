//! §V future work, item 3: "explore different data distribution
//! patterns" — wide striping (GekkoFS) vs write-local placement
//! (BurstFS-style, the §II contrast), at simulated scale.
//!
//! Three observables tell the story:
//!
//! 1. balanced file-per-process **writes**: both placements are
//!    SSD-bound — wide striping costs nothing;
//! 2. **fabric traffic**: wide striping ships (N-1)/N of all bytes,
//!    write-local ships none;
//! 3. **N-to-1 reads** (restart/broadcast): wide striping scales,
//!    write-local collapses onto the writer's single SSD — the paper's
//!    §II critique of BurstFS ("limited to write data locally").

use gkfs_sim::{sim_ior, IorPhase, IorSimConfig, SharedFileMode};

const MIB: u64 = 1024 * 1024;

fn cfg(nodes: usize, phase: IorPhase, locality: bool, n_to_one: bool) -> IorSimConfig {
    let mut c = IorSimConfig::new(nodes, phase, MIB);
    c.mode = SharedFileMode::FilePerProcess;
    c.locality = locality;
    c.n_to_one_read = n_to_one;
    c.data_per_proc = 8 * MIB;
    c
}

fn main() {
    println!("== §V ablation: wide striping vs write-local placement ==\n");

    println!("1) balanced file-per-process WRITES [MiB/s] (both SSD-bound)");
    println!("{:>6} {:>14} {:>14}", "nodes", "wide-stripe", "write-local");
    for nodes in [4usize, 16, 64] {
        let wide = sim_ior(&cfg(nodes, IorPhase::Write, false, false));
        let local = sim_ior(&cfg(nodes, IorPhase::Write, true, false));
        println!(
            "{:>6} {:>14.0} {:>14.0}",
            nodes,
            wide.mib_per_sec(),
            local.mib_per_sec()
        );
    }

    println!("\n2) fabric traffic for those writes [fraction of bytes]");
    for nodes in [4usize, 16, 64] {
        let wide = sim_ior(&cfg(nodes, IorPhase::Write, false, false));
        let local = sim_ior(&cfg(nodes, IorPhase::Write, true, false));
        println!(
            "  {nodes:>4} nodes: wide {:.2}  local {:.2}   (expected (N-1)/N = {:.2})",
            wide.net_bytes as f64 / wide.total_bytes as f64,
            local.net_bytes as f64 / local.total_bytes as f64,
            (nodes - 1) as f64 / nodes as f64
        );
    }

    println!("\n3) N-to-1 READS: every rank reads rank 0's output [MiB/s]");
    println!("{:>6} {:>14} {:>14}", "nodes", "wide-stripe", "write-local");
    for nodes in [4usize, 16, 64] {
        let wide = sim_ior(&cfg(nodes, IorPhase::Read, false, true));
        let local = sim_ior(&cfg(nodes, IorPhase::Read, true, true));
        println!(
            "{:>6} {:>14.0} {:>14.0}",
            nodes,
            wide.mib_per_sec(),
            local.mib_per_sec()
        );
    }
    println!("\nwide striping pays the network on writes and wins every");
    println!("cross-node access pattern; write-local saves the fabric but");
    println!("pins each file to one SSD — the §II BurstFS limitation.");
}
