//! Chunk-storage microbenchmarks: the one-file-per-chunk layer on both
//! backends.

use criterion::{criterion_group, criterion_main, Criterion};
use gkfs_storage::{ChunkStorage, FileChunkStorage, MemChunkStorage};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_backend(c: &mut Criterion, name: &str, storage: &dyn ChunkStorage) {
    let chunk = vec![0xA5u8; 512 * 1024];
    let i = AtomicU64::new(0);
    c.bench_function(&format!("storage/{name}/write_512k_chunk"), |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            storage.write_chunk("/bench/file", n, 0, &chunk).unwrap();
        })
    });
    // Prepare a chunk for reads.
    storage.write_chunk("/bench/read", 0, 0, &chunk).unwrap();
    c.bench_function(&format!("storage/{name}/read_512k_chunk"), |b| {
        b.iter(|| {
            black_box(storage.read_chunk("/bench/read", 0, 0, 512 * 1024).unwrap());
        })
    });
    c.bench_function(&format!("storage/{name}/read_8k_random_offset"), |b| {
        b.iter(|| {
            let n = i.fetch_add(13, Ordering::Relaxed);
            let off = (n * 8192) % (504 * 1024);
            black_box(storage.read_chunk("/bench/read", 0, off, 8192).unwrap());
        })
    });
}

fn bench_storages(c: &mut Criterion) {
    let mem = MemChunkStorage::new();
    bench_backend(c, "mem", &mem);

    let dir = std::env::temp_dir().join(format!("gkfs-bench-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let file = FileChunkStorage::open(&dir).unwrap();
    bench_backend(c, "file", &file);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_storages
}
criterion_main!(benches);
