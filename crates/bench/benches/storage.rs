//! Chunk-storage microbenchmarks: the one-file-per-chunk layer on both
//! backends.

use criterion::{criterion_group, criterion_main, Criterion};
use gkfs_storage::{BatchOp, ChunkStorage, FileChunkStorage, MemChunkStorage};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_backend(c: &mut Criterion, name: &str, storage: &dyn ChunkStorage) {
    let chunk = vec![0xA5u8; 512 * 1024];
    let i = AtomicU64::new(0);
    c.bench_function(format!("storage/{name}/write_512k_chunk"), |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            storage.write_chunk("/bench/file", n, 0, &chunk).unwrap();
        })
    });
    // Prepare a chunk for reads.
    storage.write_chunk("/bench/read", 0, 0, &chunk).unwrap();
    c.bench_function(format!("storage/{name}/read_512k_chunk"), |b| {
        b.iter(|| {
            black_box(storage.read_chunk("/bench/read", 0, 0, 512 * 1024).unwrap());
        })
    });
    c.bench_function(format!("storage/{name}/read_8k_random_offset"), |b| {
        b.iter(|| {
            let n = i.fetch_add(13, Ordering::Relaxed);
            let off = (n * 8192) % (504 * 1024);
            black_box(storage.read_chunk("/bench/read", 0, off, 8192).unwrap());
        })
    });
}

/// One daemon-side chunk batch: `(chunk_id, offset, len)` per op, all
/// ops 64 KiB here — the shape a striped 1 MiB client request takes
/// after the distributor fans it out.
const BATCH_OP: usize = 64 * 1024;

fn layout(ops: &[(u64, u64, u64)]) -> Vec<BatchOp> {
    let mut cursor = 0;
    ops.iter()
        .map(|&(chunk_id, offset, len)| {
            let op = BatchOp { chunk_id, offset, len, buf_offset: cursor };
            cursor += len;
            op
        })
        .collect()
}

fn batch_write(s: &dyn ChunkStorage, path: &str, ops: &[(u64, u64, u64)], bulk: &[u8]) {
    s.write_chunks_batch(path, &layout(ops), bulk).unwrap();
}

fn batch_read(s: &dyn ChunkStorage, path: &str, ops: &[(u64, u64, u64)]) -> Vec<u8> {
    let total: u64 = ops.iter().map(|&(_, _, len)| len).sum();
    let mut out = vec![0u8; total as usize];
    s.read_chunks_batch(path, &layout(ops), &mut out).unwrap();
    out
}

/// Multi-chunk batches: 1/4/16/64 chunks per request, mirroring the
/// daemon's `WriteChunks`/`ReadChunks` handlers.
fn bench_batches(c: &mut Criterion, name: &str, storage: &dyn ChunkStorage) {
    let chunk = vec![0xC3u8; BATCH_OP];
    for id in 0..64u64 {
        storage.write_chunk("/bench/batch", id, 0, &chunk).unwrap();
    }
    let bulk = vec![0x5Au8; BATCH_OP * 64];
    for n in [1usize, 4, 16, 64] {
        let ops: Vec<(u64, u64, u64)> =
            (0..n as u64).map(|id| (id, 0, BATCH_OP as u64)).collect();
        c.bench_function(format!("storage/{name}/batch_write_{n}x64k"), |b| {
            b.iter(|| batch_write(storage, "/bench/batch", &ops, &bulk[..n * BATCH_OP]))
        });
        c.bench_function(format!("storage/{name}/batch_read_{n}x64k"), |b| {
            b.iter(|| black_box(batch_read(storage, "/bench/batch", &ops)))
        });
    }
}

fn bench_storages(c: &mut Criterion) {
    let mem = MemChunkStorage::new();
    bench_backend(c, "mem", &mem);
    bench_batches(c, "mem", &mem);

    let dir = std::env::temp_dir().join(format!("gkfs-bench-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let file = FileChunkStorage::open(&dir).unwrap();
    bench_backend(c, "file", &file);
    bench_batches(c, "file", &file);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_storages
}
criterion_main!(benches);
