//! Distributor microbenchmarks — the per-operation placement cost and
//! the §V "different data distribution patterns" ablation
//! (modulo-hash vs jump consistent hashing).

use criterion::{criterion_group, criterion_main, Criterion};
use gkfs_common::distributor::{Distributor, JumpDistributor, SimpleHashDistributor};
use gkfs_common::hash::{fnv1a64, xxh64};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let path = "/scratch/job-1234/checkpoints/step-000042/rank-0015.dat";
    c.bench_function("hash/xxh64_path", |b| {
        b.iter(|| black_box(xxh64(path.as_bytes(), 0)))
    });
    c.bench_function("hash/fnv1a64_path", |b| {
        b.iter(|| black_box(fnv1a64(path.as_bytes())))
    });
}

fn bench_distributors(c: &mut Criterion) {
    let path = "/scratch/job-1234/checkpoints/step-000042/rank-0015.dat";
    let simple = SimpleHashDistributor::new(512);
    let jump = JumpDistributor::new(512);
    c.bench_function("distributor/simple_metadata", |b| {
        b.iter(|| black_box(simple.locate_metadata(path)))
    });
    c.bench_function("distributor/jump_metadata", |b| {
        b.iter(|| black_box(jump.locate_metadata(path)))
    });
    // Chunk placement for a 64 MiB write = 128 lookups.
    c.bench_function("distributor/simple_128_chunks", |b| {
        b.iter(|| {
            for id in 0..128u64 {
                black_box(simple.locate_chunk(path, id));
            }
        })
    });
    c.bench_function("distributor/jump_128_chunks", |b| {
        b.iter(|| {
            for id in 0..128u64 {
                black_box(jump.locate_chunk(path, id));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_hashes, bench_distributors
}
criterion_main!(benches);
