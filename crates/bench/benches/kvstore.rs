//! KV-store microbenchmarks: the daemon's metadata write/read path.
//!
//! The paper's create throughput rests on RocksDB's cheap
//! WAL+memtable write path; these benches verify our LSM substitute
//! keeps puts/gets in the microsecond range and quantify the bloom
//! filter's effect on absent-key lookups (a DESIGN.md ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gkfs_kvstore::{Db, DbOptions};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn opts() -> DbOptions {
    DbOptions {
        merge_operator: Some(Arc::new(gkfs_kvstore::merge::Max64MergeOperator)),
        ..DbOptions::default()
    }
}

fn bench_put(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/put", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            db.put(format!("/bench/file.{n}").as_bytes(), b"metadata-value")
                .unwrap();
        })
    });
}

fn bench_put_with_wal(c: &mut Criterion) {
    let mut o = opts();
    o.wal = true;
    let db = Db::open_memory(o).unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/put_wal", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            db.put(format!("/bench/file.{n}").as_bytes(), b"metadata-value")
                .unwrap();
        })
    });
}

fn bench_get(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    for n in 0..100_000u64 {
        db.put(format!("/bench/file.{n}").as_bytes(), b"metadata-value")
            .unwrap();
    }
    db.compact().unwrap(); // everything in tables: the stat-after-write case
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/get_hit_compacted", |b| {
        b.iter(|| {
            let n = i.fetch_add(7, Ordering::Relaxed) % 100_000;
            black_box(db.get(format!("/bench/file.{n}").as_bytes()).unwrap());
        })
    });
    // Absent keys: answered by bloom filters without touching blocks.
    c.bench_function("kvstore/get_miss_bloom", |b| {
        b.iter(|| {
            let n = i.fetch_add(7, Ordering::Relaxed);
            black_box(db.get(format!("/absent/{n}").as_bytes()).unwrap());
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    db.put(b"/file:size", &0u64.to_le_bytes()).unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/merge_size_update", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            db.merge(b"/file:size", &n.to_le_bytes()).unwrap();
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    for d in 0..100 {
        for f in 0..100 {
            db.put(format!("/dir{d:02}/f{f:03}").as_bytes(), b"v").unwrap();
        }
    }
    db.compact().unwrap();
    c.bench_function("kvstore/scan_prefix_100", |b| {
        b.iter_batched(
            || (),
            |_| black_box(db.scan_prefix(b"/dir42/").unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_put, bench_put_with_wal, bench_get, bench_merge, bench_scan
}
criterion_main!(benches);
