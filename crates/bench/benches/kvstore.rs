//! KV-store microbenchmarks: the daemon's metadata write/read path.
//!
//! The paper's create throughput rests on RocksDB's cheap
//! WAL+memtable write path; these benches verify our LSM substitute
//! keeps puts/gets in the microsecond range and quantify the bloom
//! filter's effect on absent-key lookups (a DESIGN.md ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gkfs_kvstore::{Db, DbOptions};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn opts() -> DbOptions {
    DbOptions {
        merge_operator: Some(Arc::new(gkfs_kvstore::merge::Max64MergeOperator)),
        ..DbOptions::default()
    }
}

fn bench_put(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/put", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            db.put(format!("/bench/file.{n}").as_bytes(), b"metadata-value")
                .unwrap();
        })
    });
}

fn bench_put_with_wal(c: &mut Criterion) {
    let mut o = opts();
    o.wal = true;
    let db = Db::open_memory(o).unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/put_wal", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            db.put(format!("/bench/file.{n}").as_bytes(), b"metadata-value")
                .unwrap();
        })
    });
}

fn bench_get(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    for n in 0..100_000u64 {
        db.put(format!("/bench/file.{n}").as_bytes(), b"metadata-value")
            .unwrap();
    }
    db.compact().unwrap(); // everything in tables: the stat-after-write case
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/get_hit_compacted", |b| {
        b.iter(|| {
            let n = i.fetch_add(7, Ordering::Relaxed) % 100_000;
            black_box(db.get(format!("/bench/file.{n}").as_bytes()).unwrap());
        })
    });
    // Absent keys: answered by bloom filters without touching blocks.
    c.bench_function("kvstore/get_miss_bloom", |b| {
        b.iter(|| {
            let n = i.fetch_add(7, Ordering::Relaxed);
            black_box(db.get(format!("/absent/{n}").as_bytes()).unwrap());
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    db.put(b"/file:size", &0u64.to_le_bytes()).unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("kvstore/merge_size_update", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            db.merge(b"/file:size", &n.to_le_bytes()).unwrap();
        })
    });
}

/// Mixed put/get from N threads over one shared `Db`. The memtable is
/// kept small so flushes happen *during* the measurement — under the
/// seed's single global lock every flush stalls all N threads, which
/// is exactly the contention this bench exists to expose (and the
/// background-flush rework to remove).
fn bench_mixed_threads(c: &mut Criterion) {
    for threads in [1usize, 2, 4, 8] {
        c.bench_function(format!("kvstore/mixed_put_get_{threads}t"), |b| {
            b.iter_custom(|iters| {
                let db = Db::open_memory(DbOptions {
                    memtable_bytes: 256 * 1024,
                    ..opts()
                })
                .unwrap();
                let start = std::time::Instant::now();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let db = &db;
                        s.spawn(move || {
                            for i in 0..iters {
                                let k = format!("/mix/t{t}/f{i}");
                                if i % 2 == 0 {
                                    db.put(k.as_bytes(), b"metadata-value").unwrap();
                                } else {
                                    black_box(db.get(k.as_bytes()).unwrap());
                                }
                            }
                        });
                    }
                });
                start.elapsed()
            })
        });
    }
}

/// Flush storm: 4 writers against a tiny memtable, forcing a flush
/// every few hundred puts. Measures how badly SSTable builds block
/// foreground writers.
fn bench_flush_storm(c: &mut Criterion) {
    c.bench_function("kvstore/flush_storm_4t", |b| {
        b.iter_custom(|iters| {
            let db = Db::open_memory(DbOptions {
                memtable_bytes: 16 * 1024,
                ..opts()
            })
            .unwrap();
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for t in 0..4 {
                    let db = &db;
                    s.spawn(move || {
                        for i in 0..iters {
                            db.put(format!("/storm/t{t}/f{i}").as_bytes(), b"metadata-value")
                                .unwrap();
                        }
                    });
                }
            });
            start.elapsed()
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let db = Db::open_memory(opts()).unwrap();
    for d in 0..100 {
        for f in 0..100 {
            db.put(format!("/dir{d:02}/f{f:03}").as_bytes(), b"v").unwrap();
        }
    }
    db.compact().unwrap();
    c.bench_function("kvstore/scan_prefix_100", |b| {
        b.iter_batched(
            || (),
            |_| black_box(db.scan_prefix(b"/dir42/").unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_put, bench_put_with_wal, bench_get, bench_merge, bench_scan, bench_mixed_threads, bench_flush_storm
}
criterion_main!(benches);
