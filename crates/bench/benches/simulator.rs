//! Meta-benchmark: how fast is the discrete-event simulator itself?
//! The figure binaries sweep ~10⁷–10⁸ simulated operations; keeping
//! the event rate high is what makes regenerating the paper's figures
//! a minutes-scale job on a laptop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gkfs_sim::engine::{run_closed_loop, MultiServer};
use gkfs_sim::{
    sim_ior, sim_mdtest, IorPhase, IorSimConfig, MdtestPhase, MdtestSimConfig, SystemKind,
};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/engine");
    let ops: u64 = 100_000;
    g.throughput(Throughput::Elements(ops));
    g.bench_function("closed_loop_100k_events", |b| {
        b.iter(|| {
            let mut server = MultiServer::new(4);
            black_box(run_closed_loop(100, ops / 100, |_p, _i, now| {
                server.submit(now, 1_000)
            }))
        })
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/models");
    // One mdtest point: 16 nodes x 16 procs x 200 files = 51.2K events.
    g.throughput(Throughput::Elements(16 * 16 * 200));
    g.bench_function("mdtest_point_16nodes", |b| {
        b.iter(|| {
            let mut cfg =
                MdtestSimConfig::new(16, MdtestPhase::Create, SystemKind::GekkoFS);
            cfg.files_per_process = 200;
            black_box(sim_mdtest(&cfg))
        })
    });
    // One IOR point: 8 nodes x 16 procs x 32 transfers (1 MiB = 2 chunks).
    g.throughput(Throughput::Elements(8 * 16 * 32));
    g.bench_function("ior_point_8nodes_1m", |b| {
        b.iter(|| {
            let mut cfg = IorSimConfig::new(8, IorPhase::Write, 1024 * 1024);
            cfg.data_per_proc = 32 * 1024 * 1024;
            black_box(sim_ior(&cfg))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine, bench_models
}
criterion_main!(benches);
