//! End-to-end client benchmarks on an in-process cluster, including
//! the chunk-size ablation the paper lists as future work (§V:
//! "Investigate GekkoFS' with various chunk sizes").

use criterion::{criterion_group, criterion_main, Criterion};
use gekkofs::{Cluster, ClusterConfig, OpenFlags};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_metadata_ops(c: &mut Criterion) {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let fs = cluster.mount().unwrap();
    let i = AtomicU64::new(0);
    c.bench_function("client/create", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            fs.create(&format!("/bench/f{n}"), 0o644).unwrap();
        })
    });
    fs.create("/bench/stat-target", 0o644).unwrap();
    c.bench_function("client/stat", |b| {
        b.iter(|| black_box(fs.stat("/bench/stat-target").unwrap()))
    });
    c.bench_function("client/create_remove_cycle", |b| {
        b.iter(|| {
            let n = i.fetch_add(1, Ordering::Relaxed);
            let p = format!("/bench/tmp{n}");
            fs.create(&p, 0o644).unwrap();
            fs.unlink(&p).unwrap();
        })
    });
    cluster.shutdown();
}

fn bench_data_path(c: &mut Criterion) {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let fs = cluster.mount().unwrap();
    let h = fs
        .open_handle("/data", OpenFlags::RDWR.with_create())
        .unwrap();
    let buf_8k = vec![1u8; 8 * 1024];
    let buf_1m = vec![2u8; 1024 * 1024];
    let off = AtomicU64::new(0);
    c.bench_function("client/write_8k", |b| {
        b.iter(|| {
            let o = off.fetch_add(8 * 1024, Ordering::Relaxed);
            h.pwrite(o, &buf_8k).unwrap();
        })
    });
    c.bench_function("client/write_1m_striped", |b| {
        b.iter(|| {
            let o = off.fetch_add(1024 * 1024, Ordering::Relaxed);
            h.pwrite(o, &buf_1m).unwrap();
        })
    });
    h.pwrite(0, &buf_1m).unwrap();
    c.bench_function("client/read_8k", |b| {
        b.iter(|| black_box(h.pread(4096, 8 * 1024).unwrap()))
    });
    c.bench_function("client/read_1m_striped", |b| {
        b.iter(|| black_box(h.pread(0, 1024 * 1024).unwrap()))
    });
    h.close().unwrap();
    cluster.shutdown();
}

/// The write-back ablation: sequential 8 KiB transfers with and
/// without the per-handle buffer (64 KiB coalesces 8 transfers into
/// one chunk-aligned flush).
fn bench_write_back(c: &mut Criterion) {
    let mut group = c.benchmark_group("client/write_back_8k_seq");
    for (name, wb) in [("off", 0u64), ("64KiB", 64 * 1024)] {
        let cluster = Cluster::deploy(
            ClusterConfig::new(4)
                .with_chunk_size(512 * 1024)
                .with_write_back(wb),
        )
        .unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs
            .open_handle("/wb", OpenFlags::WRONLY.with_create())
            .unwrap();
        let buf = vec![4u8; 8 * 1024];
        let off = AtomicU64::new(0);
        group.bench_function(name, |b| {
            b.iter(|| {
                let o = off.fetch_add(8 * 1024, Ordering::Relaxed) % (64 * 1024 * 1024);
                h.pwrite(o, &buf).unwrap();
            })
        });
        h.close().unwrap();
        cluster.shutdown();
    }
    group.finish();
}

/// §V ablation: chunk size. A 4 MiB write under different chunk sizes
/// trades fan-out parallelism against per-chunk overheads.
fn bench_chunk_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("client/chunk_size_4m_write");
    let buf = vec![3u8; 4 * 1024 * 1024];
    for chunk_kib in [64u64, 256, 512, 1024, 4096] {
        let cluster = Cluster::deploy(
            ClusterConfig::new(4).with_chunk_size(chunk_kib * 1024),
        )
        .unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs
            .open_handle("/big", OpenFlags::WRONLY.with_create())
            .unwrap();
        let off = AtomicU64::new(0);
        group.bench_function(format!("{chunk_kib}KiB"), |b| {
            b.iter(|| {
                let o = off.fetch_add(4 * 1024 * 1024, Ordering::Relaxed) % (64 * 1024 * 1024);
                h.pwrite(o, &buf).unwrap();
            })
        });
        h.close().unwrap();
        cluster.shutdown();
    }
    group.finish();
}

/// §V ablation: distribution pattern (simple hash vs jump consistent
/// hashing) on the end-to-end create path.
fn bench_distributor_kind(c: &mut Criterion) {
    let mut group = c.benchmark_group("client/distributor_create");
    for (name, kind) in [
        ("simple", gekkofs::DistributorKind::SimpleHash),
        ("jump", gekkofs::DistributorKind::Jump),
    ] {
        let cluster =
            Cluster::deploy(ClusterConfig::new(8).with_distributor(kind)).unwrap();
        let fs = cluster.mount().unwrap();
        let i = AtomicU64::new(0);
        group.bench_function(name, |b| {
            b.iter(|| {
                let n = i.fetch_add(1, Ordering::Relaxed);
                fs.create(&format!("/d/f{n}"), 0o644).unwrap();
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

/// Multi-chunk batches against one daemon: 64 KiB chunks on a single
/// node means an N-chunk request arrives as one `ChunkBatchReq` with N
/// ops — the exact shape the daemon's chunk task engine fans out.
fn bench_batch_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("client/batch");
    for n_chunks in [1u64, 4, 16, 64] {
        let cluster =
            Cluster::deploy(ClusterConfig::new(1).with_chunk_size(64 * 1024)).unwrap();
        let fs = cluster.mount().unwrap();
        let h = fs
            .open_handle("/batch", OpenFlags::RDWR.with_create())
            .unwrap();
        let len = (n_chunks * 64 * 1024) as usize;
        let buf = vec![7u8; len];
        h.pwrite(0, &buf).unwrap();
        group.bench_function(format!("write_{n_chunks}chunks"), |b| {
            b.iter(|| h.pwrite(0, &buf).unwrap())
        });
        group.bench_function(format!("read_{n_chunks}chunks"), |b| {
            b.iter(|| black_box(h.pread(0, len).unwrap()))
        });
        h.close().unwrap();
        cluster.shutdown();
    }
    group.finish();
}

/// Concurrent clients hammering one daemon with 16-chunk reads; the
/// handler pool takes the requests, the chunk engine the per-chunk ops.
fn bench_concurrent_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("client/concurrent_read_1m");
    group.sample_size(10);
    for n_clients in [1usize, 4, 8] {
        let cluster =
            Cluster::deploy(ClusterConfig::new(1).with_chunk_size(64 * 1024)).unwrap();
        let buf = vec![9u8; 1024 * 1024];
        let mounts: Vec<_> = (0..n_clients)
            .map(|i| {
                let fs = cluster.mount().unwrap();
                let p = format!("/c{i}");
                let h = fs.open_handle(&p, OpenFlags::WRONLY.with_create()).unwrap();
                h.pwrite(0, &buf).unwrap();
                h.close().unwrap();
                (fs, p)
            })
            .collect();
        let handles: Vec<_> = mounts
            .iter()
            .map(|(fs, p)| fs.open_handle(p, OpenFlags::RDONLY).unwrap())
            .collect();
        group.bench_function(format!("{n_clients}clients"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for h in &handles {
                        s.spawn(move || black_box(h.pread(0, 1024 * 1024).unwrap()));
                    }
                });
            })
        });
        drop(handles);
        cluster.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_metadata_ops, bench_data_path, bench_write_back, bench_chunk_size, bench_distributor_kind, bench_batch_io, bench_concurrent_clients
}
criterion_main!(benches);
