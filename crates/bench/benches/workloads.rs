//! End-to-end workload benchmarks on the real file system: the §IV
//! workloads as criterion targets, so regressions in any layer (KV
//! store, RPC, client fan-out) show up as workload-level slowdowns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gekkofs::{Cluster, ClusterConfig};
use gkfs_workloads::{
    checkpoint_trace, replay_trace, run_ior, run_mdtest, IorConfig, MdtestConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_mdtest(c: &mut Criterion) {
    let cluster = Cluster::deploy(ClusterConfig::new(4)).unwrap();
    let round = AtomicU64::new(0);
    let mut g = c.benchmark_group("workload/mdtest");
    let files = 4 * 250;
    g.throughput(Throughput::Elements(files as u64 * 3)); // 3 phases
    g.sample_size(10);
    g.bench_function("4procs_250files", |b| {
        b.iter(|| {
            let r = round.fetch_add(1, Ordering::Relaxed);
            run_mdtest(
                &cluster,
                &MdtestConfig {
                    processes: 4,
                    files_per_process: 250,
                    work_dir: format!("/md{r}"),
                    unique_dir: false,
                },
            )
            .unwrap()
        })
    });
    g.finish();
    cluster.shutdown();
}

fn bench_ior(c: &mut Criterion) {
    let cluster = Cluster::deploy(ClusterConfig::new(4).with_chunk_size(64 * 1024)).unwrap();
    let round = AtomicU64::new(0);
    let mut g = c.benchmark_group("workload/ior");
    let bytes = 4u64 * 2 * 1024 * 1024;
    g.throughput(Throughput::Bytes(bytes * 2)); // write + read
    g.sample_size(10);
    g.bench_function("4procs_2mib_64k_xfer", |b| {
        b.iter(|| {
            let r = round.fetch_add(1, Ordering::Relaxed);
            let result = run_ior(
                &cluster,
                &IorConfig {
                    processes: 4,
                    transfer_size: 64 * 1024,
                    block_size: 2 * 1024 * 1024,
                    file_per_process: true,
                    random: false,
                    work_dir: format!("/ior{r}"),
                },
            )
            .unwrap();
            // Drop this iteration's files so state (and memory in the
            // in-process backends) stays bounded across iterations.
            let fs = cluster.mount().unwrap();
            for rank in 0..4 {
                fs.unlink(&format!("/ior{r}/data.{rank}")).unwrap();
            }
            fs.rmdir(&format!("/ior{r}")).unwrap();
            result
        })
    });
    g.finish();
    cluster.shutdown();
}

fn bench_trace_replay(c: &mut Criterion) {
    let cluster = Cluster::deploy(ClusterConfig::new(4).with_chunk_size(64 * 1024)).unwrap();
    let mut g = c.benchmark_group("workload/trace");
    g.sample_size(10);
    g.bench_function("checkpoint_4ranks_3steps", |b| {
        let round = AtomicU64::new(0);
        b.iter(|| {
            let r = round.fetch_add(1, Ordering::Relaxed);
            // Unique namespace per iteration via a prefix rewrite.
            let trace: Vec<_> = checkpoint_trace(4, 3, 128 * 1024)
                .into_iter()
                .map(|mut e| {
                    use gkfs_workloads::TraceOp::*;
                    let fix = |p: &mut String| *p = p.replace("/ckpt", &format!("/ck{r}"));
                    match &mut e.op {
                        Mkdir(p) | Create(p) | Stat(p) | Unlink(p) | Rmdir(p) | Readdir(p) => fix(p),
                        Write(p, _, _) | Read(p, _, _) | Truncate(p, _) => fix(p),
                        Barrier => {}
                    }
                    e
                })
                .collect();
            let result = replay_trace(|| cluster.mount(), 4, &trace).unwrap();
            // Purge the two retained checkpoint steps + the directory.
            let fs = cluster.mount().unwrap();
            for e in fs.readdir(&format!("/ck{r}")).unwrap() {
                fs.unlink(&format!("/ck{r}/{}", e.name)).unwrap();
            }
            fs.rmdir(&format!("/ck{r}")).unwrap();
            result
        })
    });
    g.finish();
    cluster.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mdtest, bench_ior, bench_trace_replay
}
criterion_main!(benches);
