//! RPC-layer microbenchmarks: per-call overhead on both transports and
//! the handler-pool-width ablation (Margo tuning, DESIGN.md).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use gkfs_rpc::{HandlerRegistry, Opcode, Request, Response, RpcServer, TcpEndpoint, TcpServer};
use gkfs_rpc::transport::Endpoint;
use std::hint::black_box;

fn echo_registry() -> HandlerRegistry {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| Response::ok(req.body).with_bulk(req.bulk));
    reg
}

fn bench_inproc(c: &mut Criterion) {
    let server = RpcServer::new(echo_registry(), 4);
    let ep = server.endpoint();
    c.bench_function("rpc/inproc_roundtrip", |b| {
        b.iter(|| {
            black_box(
                ep.call(Request::new(Opcode::Ping, &b"x"[..]))
                    .unwrap(),
            );
        })
    });
    let bulk = Bytes::from(vec![7u8; 512 * 1024]);
    c.bench_function("rpc/inproc_bulk_512k", |b| {
        b.iter(|| {
            black_box(
                ep.call(Request::new(Opcode::Ping, &b""[..]).with_bulk(bulk.clone()))
                    .unwrap(),
            );
        })
    });
}

fn bench_tcp(c: &mut Criterion) {
    let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
    let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
    c.bench_function("rpc/tcp_roundtrip", |b| {
        b.iter(|| {
            black_box(ep.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap());
        })
    });
    let bulk = Bytes::from(vec![7u8; 512 * 1024]);
    c.bench_function("rpc/tcp_bulk_512k", |b| {
        b.iter(|| {
            black_box(
                ep.call(Request::new(Opcode::Ping, &b""[..]).with_bulk(bulk.clone()))
                    .unwrap(),
            );
        })
    });
    server.shutdown();
}

/// Ablation: how much does the Margo-style handler pool width matter
/// under concurrent load?
fn bench_pool_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc/pool_width_8clients");
    for width in [1usize, 2, 4, 8] {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| {
            // Simulate ~5 µs of daemon-side work.
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                acc = acc.wrapping_add(i.wrapping_mul(31));
            }
            std::hint::black_box(acc);
            Response::ok(req.body)
        });
        let server = RpcServer::new(reg, width);
        group.bench_function(format!("width{width}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..8 {
                        let ep = server.endpoint();
                        s.spawn(move || {
                            for _ in 0..16 {
                                ep.call(Request::new(Opcode::Ping, &b""[..])).unwrap();
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inproc, bench_tcp, bench_pool_width
}
criterion_main!(benches);
