//! RPC-layer microbenchmarks: per-call overhead on both transports,
//! the handler-pool-width ablation (Margo tuning, DESIGN.md), the
//! pipelined submit/wait fan-out against the blocking baseline, and
//! the retry-layer fast-path tax (EXPERIMENTS.md: ≤2 %).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use gkfs_client::DaemonRing;
use gkfs_common::config::RetryConfig;
use gkfs_rpc::{
    HandlerRegistry, Opcode, ReplyHandle, Request, Response, RpcServer, TcpEndpoint, TcpServer,
};
use gkfs_rpc::transport::Endpoint;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn echo_registry() -> HandlerRegistry {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| Response::ok(req.body).with_bulk(req.bulk));
    reg
}

fn bench_inproc(c: &mut Criterion) {
    let server = RpcServer::new(echo_registry(), 4);
    let ep = server.endpoint();
    c.bench_function("rpc/inproc_roundtrip", |b| {
        b.iter(|| {
            black_box(
                ep.call(Request::new(Opcode::Ping, &b"x"[..]))
                    .unwrap(),
            );
        })
    });
    let bulk = Bytes::from(vec![7u8; 512 * 1024]);
    c.bench_function("rpc/inproc_bulk_512k", |b| {
        b.iter(|| {
            black_box(
                ep.call(Request::new(Opcode::Ping, &b""[..]).with_bulk(bulk.clone()))
                    .unwrap(),
            );
        })
    });
}

fn bench_tcp(c: &mut Criterion) {
    let server = TcpServer::bind("127.0.0.1:0", echo_registry(), 4).unwrap();
    let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
    c.bench_function("rpc/tcp_roundtrip", |b| {
        b.iter(|| {
            black_box(ep.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap());
        })
    });
    let bulk = Bytes::from(vec![7u8; 512 * 1024]);
    c.bench_function("rpc/tcp_bulk_512k", |b| {
        b.iter(|| {
            black_box(
                ep.call(Request::new(Opcode::Ping, &b""[..]).with_bulk(bulk.clone()))
                    .unwrap(),
            );
        })
    });
    server.shutdown();
}

/// Ablation: how much does the Margo-style handler pool width matter
/// under concurrent load?
fn bench_pool_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc/pool_width_8clients");
    for width in [1usize, 2, 4, 8] {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| {
            // Simulate ~5 µs of daemon-side work.
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                acc = acc.wrapping_add(i.wrapping_mul(31));
            }
            std::hint::black_box(acc);
            Response::ok(req.body)
        });
        let server = RpcServer::new(reg, width);
        group.bench_function(format!("width{width}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..8 {
                        let ep = server.endpoint();
                        s.spawn(move || {
                            for _ in 0..16 {
                                ep.call(Request::new(Opcode::Ping, &b""[..])).unwrap();
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

/// The tentpole comparison: a client striping one request across 8
/// daemons, blocking scoped-thread fan-out (the old client) vs
/// pipelined submit-all-then-wait-all (the new one). The handler does
/// ~5 µs of simulated work so overlap has something to win.
fn bench_fanout(c: &mut Criterion) {
    fn busy_registry() -> HandlerRegistry {
        let mut reg = HandlerRegistry::new();
        reg.register_fn(Opcode::Ping, |req| {
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                acc = acc.wrapping_add(i.wrapping_mul(31));
            }
            std::hint::black_box(acc);
            Response::ok(req.body)
        });
        reg
    }
    let servers: Vec<Arc<RpcServer>> =
        (0..8).map(|_| RpcServer::new(busy_registry(), 2)).collect();
    let eps: Vec<Arc<dyn Endpoint>> = servers
        .iter()
        .map(|s| s.endpoint() as Arc<dyn Endpoint>)
        .collect();

    let mut group = c.benchmark_group("rpc/fanout_8daemons");
    group.bench_function("blocking_scoped_threads", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for ep in &eps {
                    s.spawn(move || {
                        black_box(ep.call(Request::new(Opcode::Ping, &b"x"[..])).unwrap());
                    });
                }
            });
        })
    });
    group.bench_function("pipelined_submit_wait", |b| {
        b.iter(|| {
            let handles: Vec<ReplyHandle> = eps
                .iter()
                .map(|ep| ep.submit(Request::new(Opcode::Ping, &b"x"[..])).unwrap())
                .collect();
            for h in handles {
                black_box(h.wait(Duration::from_secs(30)).unwrap());
            }
        })
    });
    group.finish();
}

/// Outstanding-depth sweep on one TCP connection: at depth 1 the
/// pipelined path degenerates to blocking call; at 8+ it should win by
/// overlapping daemon-side work and wire latency.
fn bench_tcp_outstanding(c: &mut Criterion) {
    let mut reg = HandlerRegistry::new();
    reg.register_fn(Opcode::Ping, |req| {
        let mut acc = 0u64;
        for i in 0..2_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(31));
        }
        std::hint::black_box(acc);
        Response::ok(req.body)
    });
    let server = TcpServer::bind("127.0.0.1:0", reg, 8).unwrap();
    let ep = TcpEndpoint::connect(&server.local_addr().to_string()).unwrap();
    let mut group = c.benchmark_group("rpc/tcp_outstanding");
    for depth in [1usize, 8, 32] {
        group.bench_function(format!("depth{depth}"), |b| {
            b.iter(|| {
                let handles: Vec<ReplyHandle> = (0..depth)
                    .map(|_| ep.submit(Request::new(Opcode::Ping, &b"x"[..])).unwrap())
                    .collect();
                for h in handles {
                    black_box(h.wait(Duration::from_secs(30)).unwrap());
                }
            })
        });
    }
    group.finish();
    server.shutdown();
}

/// The robustness-layer tax on the fault-free fast path: the same
/// `DaemonRing::ping` with retries disabled (single attempt, no
/// breaker, no deadline) vs the default policy (4 attempts armed,
/// breaker consulted, deadline clamped). No fault ever fires, so the
/// difference is pure bookkeeping — EXPERIMENTS.md records it at ≤2 %.
fn bench_retry_fastpath(c: &mut Criterion) {
    let make_ring = |retry: RetryConfig| {
        let server = RpcServer::new(echo_registry(), 4);
        DaemonRing::with_retry(vec![server.endpoint() as Arc<dyn Endpoint>], retry)
    };
    let disabled = make_ring(RetryConfig::disabled());
    let armed = make_ring(RetryConfig::default());
    let mut group = c.benchmark_group("rpc/retry_fastpath");
    group.bench_function("ping_retry_disabled", |b| {
        b.iter(|| disabled.ping(0).unwrap())
    });
    group.bench_function("ping_retry_default", |b| {
        b.iter(|| armed.ping(0).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inproc, bench_tcp, bench_pool_width, bench_fanout, bench_tcp_outstanding, bench_retry_fastpath
}
criterion_main!(benches);
