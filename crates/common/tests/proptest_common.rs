//! Property tests for the foundations: path normalization and the
//! placement invariants every component relies on.

use gkfs_common::distributor::{
    Distributor, JumpDistributor, LocalityDistributor, SimpleHashDistributor,
};
use gkfs_common::path as gpath;
use proptest::prelude::*;

/// Lowercase ASCII strings of length `min..=max`, spelled out as an
/// explicit generator (equivalent to the regex strategy `[a-z]{min,max}`).
fn lowercase(min: usize, max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, min..max + 1)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

/// Strings over `[a-z/]` of length `min..=max` (equivalent to the regex
/// strategy `[a-z/]{min,max}`).
fn pathish(min: usize, max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..27, min..max + 1).prop_map(|v| {
        v.into_iter()
            .map(|b| if b == 26 { '/' } else { (b'a' + b) as char })
            .collect()
    })
}

/// Arbitrary path-ish strings: segments from a small alphabet glued
/// with separators and dot-segments.
fn path_strategy() -> impl Strategy<Value = String> {
    let segment = prop_oneof![
        4 => lowercase(1, 8),
        1 => Just(".".to_string()),
        1 => Just("..".to_string()),
        1 => Just("".to_string()),
    ];
    prop::collection::vec(segment, 0..8).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #[test]
    fn normalize_is_idempotent(p in path_strategy()) {
        if let Ok(n) = gpath::normalize(&p) {
            // Normalizing a normalized path is the identity.
            prop_assert_eq!(gpath::normalize(&n).unwrap(), n.clone());
            // Normalized paths are absolute, have no dot segments, no
            // duplicate separators, no trailing separator (except "/").
            prop_assert!(n.starts_with('/'));
            if n != "/" {
                prop_assert!(!n.ends_with('/'));
            }
            prop_assert!(!n.contains("//"));
            for seg in n.split('/').skip(1) {
                prop_assert!(seg != "." && seg != "..");
            }
        }
    }

    #[test]
    fn parent_name_join_roundtrip(p in path_strategy()) {
        if let Ok(n) = gpath::normalize(&p) {
            if n != "/" {
                prop_assert_eq!(gpath::join(gpath::parent(&n), gpath::name(&n)), n.clone());
                prop_assert!(gpath::is_direct_child(gpath::parent(&n), &n));
            }
            // Depth decreases by exactly one toward the parent.
            if n != "/" {
                prop_assert_eq!(gpath::depth(gpath::parent(&n)) + 1, gpath::depth(&n));
            }
        }
    }

    #[test]
    fn distributors_always_in_range_and_deterministic(
        path in pathish(1, 32),
        chunk in any::<u64>(),
        nodes in 1usize..700,
    ) {
        let p = format!("/{path}");
        for d in [
            Box::new(SimpleHashDistributor::new(nodes)) as Box<dyn Distributor>,
            Box::new(JumpDistributor::new(nodes)),
            Box::new(LocalityDistributor::new(nodes, nodes - 1)),
        ] {
            let m1 = d.locate_metadata(&p);
            let m2 = d.locate_metadata(&p);
            prop_assert!(m1 < nodes);
            prop_assert_eq!(m1, m2, "metadata placement deterministic");
            let c1 = d.locate_chunk(&p, chunk);
            let c2 = d.locate_chunk(&p, chunk);
            prop_assert!(c1 < nodes);
            prop_assert_eq!(c1, c2, "chunk placement deterministic");
        }
    }

    #[test]
    fn locality_and_simple_agree_on_metadata(
        path in pathish(1, 32),
        nodes in 1usize..100,
        local in any::<usize>(),
    ) {
        // Metadata placement must be identical for all clients — the
        // locality distributor may only move *chunks*.
        let p = format!("/{path}");
        let simple = SimpleHashDistributor::new(nodes);
        let localdist = LocalityDistributor::new(nodes, local % nodes);
        prop_assert_eq!(simple.locate_metadata(&p), localdist.locate_metadata(&p));
    }
}

/// The frame image the pre-vectored transport emitted:
/// `write_all(len); write_all(payload); write_all(crc)` over one
/// contiguous buffer. The vectored writer must match it byte for byte
/// regardless of how the payload is sliced.
fn contiguous_frame(payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(payload.len() + 8);
    v.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    v.extend_from_slice(payload);
    v.extend_from_slice(&gkfs_common::crc::crc32(payload).to_le_bytes());
    v
}

/// Sink that accepts at most `cap` bytes per call — forces the frame
/// writer through its partial-write resume cursor at every boundary.
struct CappedWriter {
    out: Vec<u8>,
    cap: usize,
}

impl std::io::Write for CappedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary payloads under arbitrary segment splits — including
    /// empty and 1-byte slices — produce exactly the contiguous
    /// encoder's wire image, even when the socket only takes a few
    /// bytes per call.
    #[test]
    fn vectored_frames_match_contiguous_encoder(
        payload in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(any::<u16>(), 0..12),
        cap in prop_oneof![Just(usize::MAX), 1usize..97],
    ) {
        let mut cuts: Vec<usize> = cuts
            .into_iter()
            .map(|c| c as usize % (payload.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut fw = gkfs_common::wire::FrameWriter::new();
        let mut prev = 0;
        for &c in &cuts {
            fw.segment(&payload[prev..c]); // empty when cuts repeat
            prev = c;
        }
        fw.segment(&payload[prev..]);
        prop_assert_eq!(fw.payload_len(), payload.len());
        let mut w = CappedWriter { out: Vec::new(), cap };
        fw.write_to(&mut w).unwrap();
        prop_assert_eq!(w.out, contiguous_frame(&payload), "cuts {:?} cap {}", cuts, cap);
    }
}
