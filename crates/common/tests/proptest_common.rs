//! Property tests for the foundations: path normalization and the
//! placement invariants every component relies on.

use gkfs_common::distributor::{
    Distributor, JumpDistributor, LocalityDistributor, SimpleHashDistributor,
};
use gkfs_common::path as gpath;
use proptest::prelude::*;

/// Arbitrary path-ish strings: segments from a small alphabet glued
/// with separators and dot-segments.
fn path_strategy() -> impl Strategy<Value = String> {
    let segment = prop_oneof![
        4 => "[a-z]{1,8}".prop_map(|s| s),
        1 => Just(".".to_string()),
        1 => Just("..".to_string()),
        1 => Just("".to_string()),
    ];
    prop::collection::vec(segment, 0..8).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #[test]
    fn normalize_is_idempotent(p in path_strategy()) {
        if let Ok(n) = gpath::normalize(&p) {
            // Normalizing a normalized path is the identity.
            prop_assert_eq!(gpath::normalize(&n).unwrap(), n.clone());
            // Normalized paths are absolute, have no dot segments, no
            // duplicate separators, no trailing separator (except "/").
            prop_assert!(n.starts_with('/'));
            if n != "/" {
                prop_assert!(!n.ends_with('/'));
            }
            prop_assert!(!n.contains("//"));
            for seg in n.split('/').skip(1) {
                prop_assert!(seg != "." && seg != "..");
            }
        }
    }

    #[test]
    fn parent_name_join_roundtrip(p in path_strategy()) {
        if let Ok(n) = gpath::normalize(&p) {
            if n != "/" {
                prop_assert_eq!(gpath::join(gpath::parent(&n), gpath::name(&n)), n.clone());
                prop_assert!(gpath::is_direct_child(gpath::parent(&n), &n));
            }
            // Depth decreases by exactly one toward the parent.
            if n != "/" {
                prop_assert_eq!(gpath::depth(gpath::parent(&n)) + 1, gpath::depth(&n));
            }
        }
    }

    #[test]
    fn distributors_always_in_range_and_deterministic(
        path in "[a-z/]{1,32}",
        chunk in any::<u64>(),
        nodes in 1usize..700,
    ) {
        let p = format!("/{path}");
        for d in [
            Box::new(SimpleHashDistributor::new(nodes)) as Box<dyn Distributor>,
            Box::new(JumpDistributor::new(nodes)),
            Box::new(LocalityDistributor::new(nodes, nodes - 1)),
        ] {
            let m1 = d.locate_metadata(&p);
            let m2 = d.locate_metadata(&p);
            prop_assert!(m1 < nodes);
            prop_assert_eq!(m1, m2, "metadata placement deterministic");
            let c1 = d.locate_chunk(&p, chunk);
            let c2 = d.locate_chunk(&p, chunk);
            prop_assert!(c1 < nodes);
            prop_assert_eq!(c1, c2, "chunk placement deterministic");
        }
    }

    #[test]
    fn locality_and_simple_agree_on_metadata(
        path in "[a-z/]{1,32}",
        nodes in 1usize..100,
        local in any::<usize>(),
    ) {
        // Metadata placement must be identical for all clients — the
        // locality distributor may only move *chunks*.
        let p = format!("/{path}");
        let simple = SimpleHashDistributor::new(nodes);
        let localdist = LocalityDistributor::new(nodes, local % nodes);
        prop_assert_eq!(simple.locate_metadata(&p), localdist.locate_metadata(&p));
    }
}
