//! Stable hash functions implemented from scratch.
//!
//! The distributor (§III-B of the paper) requires that *every* client
//! and daemon, on every node, across process restarts, maps the same
//! path to the same node. Rust's `DefaultHasher` is randomly seeded per
//! process, so we implement two well-known stable hashes ourselves:
//!
//! * [`xxh64`] — XXH64, the high-quality 64-bit hash GekkoFS itself
//!   uses for path placement (via `std::hash` specializations in the
//!   original C++ code base).
//! * [`fnv1a64`] — FNV-1a, a tiny fallback useful for cheap prefix keys
//!   and tests.
//!
//! Both are verified against published reference vectors below.

/// XXH64 prime constants (from the xxHash specification).
const P1: u64 = 0x9E3779B185EBCA87;
const P2: u64 = 0xC2B2AE3D27D4EB4F;
const P3: u64 = 0x165667B19E3779F9;
const P4: u64 = 0x85EBCA77C2B2AE63;
const P5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

/// Compute the XXH64 hash of `data` with the given `seed`.
///
/// This is a faithful implementation of the XXH64 specification and
/// matches the reference vectors (see tests).
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut input = data;

    let mut h: u64 = if input.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while input.len() >= 32 {
            v1 = round(v1, read_u64(&input[0..]));
            v2 = round(v2, read_u64(&input[8..]));
            v3 = round(v3, read_u64(&input[16..]));
            v4 = round(v4, read_u64(&input[24..]));
            input = &input[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(P5)
    };

    h = h.wrapping_add(len);

    while input.len() >= 8 {
        h = (h ^ round(0, read_u64(input)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
        input = &input[8..];
    }
    if input.len() >= 4 {
        h = (h ^ (read_u32(input) as u64).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        input = &input[4..];
    }
    for &byte in input {
        h = (h ^ (byte as u64).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// FNV-1a 64-bit: small, fast, stable. Used for short keys and tests.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hash a path string for metadata placement (seed 0, as a convention
/// shared by client and daemon).
pub fn hash_path(path: &str) -> u64 {
    xxh64(path.as_bytes(), 0)
}

/// Hash a `(path, chunk_id)` pair for data-chunk placement. The chunk
/// id is mixed in as the seed so that chunks of one file spread across
/// all nodes (wide striping) while remaining deterministic.
pub fn hash_chunk(path: &str, chunk_id: u64) -> u64 {
    xxh64(path.as_bytes(), chunk_id.wrapping_mul(P3).wrapping_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the xxHash repository (XXH64).
    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"", 1), 0xD5AFBA1336A3BE4B);
        assert_eq!(xxh64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC2CF5AD770999);
        assert_eq!(
            xxh64(b"abcdefghijklmnopqrstuvwxyz012345", 0),
            0xBF2CD639B4143B80
        );
        assert_eq!(
            xxh64(b"xxhash", 0x1234567890ABCDEF_u64.wrapping_mul(1)),
            xxh64(b"xxhash", 0x1234567890ABCDEF)
        );
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chunk_hash_differs_per_chunk() {
        let a = hash_chunk("/data/file", 0);
        let b = hash_chunk("/data/file", 1);
        let c = hash_chunk("/data/file", 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn path_hash_is_stable() {
        // Pin the value: if this changes, deployed clients and daemons
        // would disagree about placement.
        assert_eq!(hash_path("/foo/bar"), xxh64(b"/foo/bar", 0));
        assert_eq!(hash_path("/foo/bar"), hash_path("/foo/bar"));
    }

    #[test]
    fn xxh64_long_input_uses_stripe_loop() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let h1 = xxh64(&data, 0);
        let h2 = xxh64(&data, 0);
        assert_eq!(h1, h2);
        let mut data2 = data.clone();
        data2[512] ^= 0xFF;
        assert_ne!(h1, xxh64(&data2, 0));
    }
}
