//! Bounded I/O task pool — the stand-in for Argobots ULT dispatch.
//!
//! Paper §III-B: the daemon hands each chunk of a request to an
//! Argobots user-level thread so per-chunk I/O overlaps. We model that
//! with a small pool of OS threads behind a bounded queue. The
//! saturation policy mirrors the RPC server's (PR 3): [`TaskPool`]
//! never blocks a submitter — when the queue is full (or the pool has
//! no workers at all) `try_submit` hands the job back and the caller
//! runs it inline on its own thread. Under overload the system thus
//! degrades to exactly the serial execution it had before the pool
//! existed, instead of queuing unboundedly.

use crate::lock::{rank, OrderedMutex};
use parking_lot::Condvar;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work. Results travel out through whatever channel the
/// closure captures; the pool itself never sees them.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    work_queue: OrderedMutex<Queue>,
    cv: Condvar,
    depth: usize,
    /// Jobs accepted onto the queue (ran on a pool worker).
    spawned: AtomicU64,
    /// Jobs bounced back to the submitter (queue full or no workers).
    inline: AtomicU64,
    /// Jobs that panicked on a worker (caught; the worker survives).
    panicked: AtomicU64,
    /// Workers currently alive. Jobs are panic-isolated, so this only
    /// drops below the spawn count if a worker dies some other way —
    /// at zero `try_submit` bounces instead of queueing jobs nothing
    /// would ever pop (submitters would hang waiting on results).
    live: AtomicUsize,
}

/// Fixed-size worker pool over a bounded FIFO queue.
pub struct TaskPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Pool with `threads` workers and room for `depth` queued jobs.
    /// `threads == 0` is a valid degenerate pool: every submission is
    /// handed back for inline execution (serial mode).
    pub fn new(name: &str, threads: usize, depth: usize) -> TaskPool {
        let shared = Arc::new(Shared {
            work_queue: OrderedMutex::new(
                rank::DAEMON_CHUNK_QUEUE,
                Queue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                },
            ),
            cv: Condvar::new(),
            depth: depth.max(1),
            spawned: AtomicU64::new(0),
            inline: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            live: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let shared = shared.clone();
            let builder =
                std::thread::Builder::new().name(format!("gkfs-{name}-{i}"));
            // A failed spawn just leaves the pool smaller; with zero
            // workers everything falls back to inline execution.
            if let Ok(handle) = builder.spawn(move || worker_loop(&shared)) {
                workers.push(handle);
            }
        }
        shared.live.store(workers.len(), Ordering::Release);
        TaskPool { shared, workers }
    }

    /// Hand `job` to the pool, or hand it back if the pool cannot take
    /// it right now (queue full, no workers, shutting down). The caller
    /// must then run it inline — the job is never dropped.
    pub fn try_submit(&self, job: Job) -> std::result::Result<(), Job> {
        if self.shared.live.load(Ordering::Acquire) == 0 {
            self.shared.inline.fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        {
            let mut q = self.shared.work_queue.lock();
            if !q.shutdown && q.jobs.len() < self.shared.depth {
                q.jobs.push_back(job);
                self.shared.spawned.fetch_add(1, Ordering::Relaxed);
                drop(q);
                self.shared.cv.notify_one();
                return Ok(());
            }
        }
        self.shared.inline.fetch_add(1, Ordering::Relaxed);
        Err(job)
    }

    /// Worker count (0 means pure inline mode).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// `(tasks_spawned, inline_fallbacks)`.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.spawned.load(Ordering::Relaxed),
            self.shared.inline.load(Ordering::Relaxed),
        )
    }

    /// Jobs that panicked on a worker (caught and counted; the worker
    /// kept running).
    pub fn panics(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.work_queue.lock();
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        // Join outside any guard (workers drain remaining jobs first).
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Decrement `live` on any exit path — including an unwind out of
    // the loop itself — so `try_submit` stops queueing jobs the moment
    // the pool can no longer run them.
    struct LiveGuard<'a>(&'a Shared);
    impl Drop for LiveGuard<'_> {
        fn drop(&mut self) {
            self.0.live.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let _live = LiveGuard(shared);
    loop {
        let job = {
            let mut q = shared.work_queue.lock();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q.wait(&shared.cv);
            }
        };
        match job {
            // Run outside the queue lock so other workers keep
            // popping. Panic-isolated: a job that unwinds (e.g. a
            // slice-bounds panic in a storage backend fed malformed
            // batch geometry) must not take the worker down with it —
            // its result-channel sender drops during the unwind, so
            // the submitter sees a lost-task error, not a hang.
            Some(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                    crate::gkfs_warn!("task pool job panicked; worker continues");
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = TaskPool::new("t", 2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..8u32 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i).unwrap()))
                .ok()
                .expect("queue has room");
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(pool.counters(), (8, 0));
    }

    #[test]
    fn zero_workers_means_inline() {
        let pool = TaskPool::new("t", 0, 16);
        let ran = AtomicUsize::new(0);
        let job: Job = Box::new(|| ());
        let job = pool.try_submit(job).expect_err("no workers: handed back");
        job();
        ran.fetch_add(1, Ordering::Relaxed);
        assert_eq!(pool.counters(), (0, 1));
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn full_queue_hands_job_back() {
        let pool = TaskPool::new("t", 1, 1);
        // Park the worker so the queue can fill behind it.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (parked_tx, parked_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            parked_tx.send(()).unwrap();
            let _ = gate_rx.recv();
        }))
        .ok()
        .expect("first job fits");
        parked_rx.recv().unwrap(); // worker is now busy
        pool.try_submit(Box::new(|| ())).ok().expect("depth-1 queue slot");
        let bounced = pool.try_submit(Box::new(|| ()));
        assert!(bounced.is_err(), "queue full: job must come back");
        let (_, inline) = pool.counters();
        assert_eq!(inline, 1);
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = TaskPool::new("t", 1, 16);
        pool.try_submit(Box::new(|| panic!("job boom")))
            .ok()
            .expect("queue has room");
        // The pool's only worker must survive to run this one.
        let (tx, rx) = mpsc::channel();
        pool.try_submit(Box::new(move || tx.send(7u32).unwrap()))
            .ok()
            .expect("queue has room");
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = TaskPool::new("t", 1, 64);
            for _ in 0..32 {
                let done = done.clone();
                let _ = pool.try_submit(Box::new(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                }));
            }
        } // drop joins workers after they drain the queue
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }
}
