//! Configuration for daemons and clusters.
//!
//! Defaults mirror the paper's evaluation setup: 512 KiB chunks
//! (§IV), synchronous cache-less operation (§III-A), and a Margo-style
//! handler pool on each daemon.

use std::path::PathBuf;

/// The chunk size used throughout the paper's evaluation: 512 KiB.
pub const DEFAULT_CHUNK_SIZE: u64 = 512 * 1024;

/// Which distribution function places metadata and chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributorKind {
    /// `hash % n` — what GekkoFS shipped.
    SimpleHash,
    /// Jump consistent hashing — §V future-work ablation.
    Jump,
    /// BurstFS-style write-local placement (§II/§V ablation): every
    /// chunk a client writes lands on that client's own node.
    ///
    /// **Limitation (by construction, as in BurstFS):** a client can
    /// only locate chunks *it* placed; reading another client's data
    /// requires the rank-private file-per-process pattern where writer
    /// and reader are the same node. Cross-node reads see holes.
    WriteLocal,
}

/// Which engine drives the daemon's batch chunk I/O (the storage
/// layer's `submit_batch` backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Pick the best generally-available engine: the task-pool
    /// fan-out. io_uring stays opt-in (`Uring`) until registered
    /// buffers land — see DESIGN.md "Zero-copy data plane".
    #[default]
    Auto,
    /// Run every batch serially on the submitting thread.
    Serial,
    /// Fan batch segments out over a `TaskPool` of pread/pwrite
    /// workers (the Argobots-ULT stand-in).
    Pool,
    /// Submit whole batches to an io_uring completion ring. Probed at
    /// startup; kernels without io_uring (or builds without the
    /// storage crate's `uring` feature) fall back to `Pool`.
    Uring,
}

/// Per-daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root directory for this daemon's local state (chunk files and
    /// KV store). `None` selects fully in-memory backends — the mode
    /// used by tests and the in-process cluster.
    pub root_dir: Option<PathBuf>,
    /// Chunk size in bytes (power of two).
    pub chunk_size: u64,
    /// Number of RPC handler threads (Margo "handler xstreams").
    pub handler_threads: usize,
    /// Whether the KV store runs its write-ahead log. Disabling it
    /// trades durability for speed — GekkoFS data is ephemeral by
    /// design, so both settings are legitimate.
    pub kv_wal: bool,
    /// Workers in the chunk I/O task pool (Argobots ULT stand-in,
    /// §III-B): per-chunk ops of one batch fan out over these threads.
    /// `0` runs every batch serially on its handler thread.
    pub chunk_io_threads: usize,
    /// Bound on queued chunk tasks; at saturation the handler runs
    /// tasks inline (caller-runs degradation) instead of queuing more.
    pub chunk_queue_depth: usize,
    /// Engine behind the chunk store's completion-based batch API.
    pub io_backend: IoBackend,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            root_dir: None,
            chunk_size: DEFAULT_CHUNK_SIZE,
            handler_threads: 4,
            kv_wal: false,
            chunk_io_threads: 4,
            chunk_queue_depth: 64,
            io_backend: IoBackend::Auto,
        }
    }
}

/// Client-side fault-handling knobs: retry schedule, circuit breaker,
/// and per-operation deadline. See `gkfs_common::retry` and DESIGN.md
/// "Fault model".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts per RPC (first try included); `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub base_backoff_ms: u64,
    /// Cap on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Consecutive transport failures that open a node's circuit
    /// breaker; `0` disables breakers.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before probing again, in
    /// milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Deadline for one logical client operation (a whole striped
    /// write, not one RPC), in milliseconds; `0` means unbounded.
    pub op_deadline_ms: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 200,
            jitter_seed: 0x6766_6b73,
            breaker_threshold: 8,
            breaker_cooldown_ms: 250,
            op_deadline_ms: 30_000,
        }
    }
}

impl RetryConfig {
    /// A configuration with retries, breakers, and deadlines all
    /// disabled (each RPC gets one attempt with the transport
    /// timeout) — the pre-retry-layer behavior, useful for tests that
    /// assert on first-failure semantics.
    pub fn disabled() -> RetryConfig {
        RetryConfig {
            max_attempts: 1,
            breaker_threshold: 0,
            op_deadline_ms: 0,
            ..RetryConfig::default()
        }
    }

    /// The [`crate::retry::RetryPolicy`] this configuration describes.
    pub fn policy(&self) -> crate::retry::RetryPolicy {
        crate::retry::RetryPolicy {
            max_attempts: self.max_attempts.max(1),
            base_backoff: std::time::Duration::from_millis(self.base_backoff_ms),
            max_backoff: std::time::Duration::from_millis(self.max_backoff_ms),
            seed: self.jitter_seed,
        }
    }

    /// A fresh [`crate::retry::Deadline`] for one client operation.
    pub fn op_deadline(&self) -> crate::retry::Deadline {
        if self.op_deadline_ms == 0 {
            crate::retry::Deadline::never()
        } else {
            crate::retry::Deadline::after(std::time::Duration::from_millis(self.op_deadline_ms))
        }
    }
}

/// Cluster-wide configuration shared by clients and daemons.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of file-system nodes (each runs one daemon).
    pub nodes: usize,
    /// Chunk size — must match on every node.
    pub chunk_size: u64,
    /// Placement function — must match on every node.
    pub distributor: DistributorKind,
    /// Client-side size-update cache (§IV-B): number of write size
    /// updates to coalesce before flushing to the metadata owner.
    /// `0` disables the cache (the paper's default, synchronous mode).
    pub size_cache_ops: usize,
    /// Client-side stat cache TTL in milliseconds (§V "evaluate
    /// benefits of caching"). `0` disables caching (the paper's
    /// default: every stat is a round trip).
    pub stat_cache_ttl_ms: u64,
    /// Client-side write-back buffer capacity per open handle, in
    /// bytes. Small sequential writes on one handle coalesce into
    /// batches of up to this many bytes before the chunk fan-out;
    /// `flush`/`fsync`/`close` force the batch out. `0` disables
    /// write-back (the paper's default: every write is an RPC).
    pub write_back: u64,
    /// Client-side fault handling: retry schedule, circuit breakers,
    /// per-operation deadlines.
    pub retry: RetryConfig,
}

impl ClusterConfig {
    /// Cluster configuration with paper-default knobs for `nodes` nodes.
    pub fn new(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            chunk_size: DEFAULT_CHUNK_SIZE,
            distributor: DistributorKind::SimpleHash,
            size_cache_ops: 0,
            stat_cache_ttl_ms: 0,
            write_back: 0,
            retry: RetryConfig::default(),
        }
    }

    /// With chunk size.
    pub fn with_chunk_size(mut self, chunk_size: u64) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// With distributor.
    pub fn with_distributor(mut self, d: DistributorKind) -> Self {
        self.distributor = d;
        self
    }

    /// Enable the client-side size-update cache with the given
    /// coalescing window (number of writes).
    pub fn with_size_cache(mut self, ops: usize) -> Self {
        self.size_cache_ops = ops;
        self
    }

    /// Enable the client-side stat cache with the given TTL in
    /// milliseconds. Trades bounded staleness of *remote* changes for
    /// round-trip elimination; the client always sees its own writes.
    pub fn with_stat_cache_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.stat_cache_ttl_ms = ttl_ms;
        self
    }

    /// Enable the per-handle write-back buffer with the given capacity
    /// in bytes. Pass [`ClusterConfig::chunk_size`]-sized (or larger)
    /// capacities to get chunk-aligned batches out of small sequential
    /// writes.
    pub fn with_write_back(mut self, bytes: u64) -> Self {
        self.write_back = bytes;
        self
    }

    /// With the given fault-handling configuration.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// With the per-operation deadline in milliseconds (`0` =
    /// unbounded).
    pub fn with_op_deadline_ms(mut self, ms: u64) -> Self {
        self.retry.op_deadline_ms = ms;
        self
    }

    /// Instantiate the configured distributor for a client whose local
    /// daemon is `local` (only `WriteLocal` placement depends on it).
    pub fn make_distributor_for(
        &self,
        local: crate::distributor::NodeId,
    ) -> std::sync::Arc<dyn crate::distributor::Distributor> {
        match self.distributor {
            DistributorKind::SimpleHash => {
                std::sync::Arc::new(crate::distributor::SimpleHashDistributor::new(self.nodes))
            }
            DistributorKind::Jump => {
                std::sync::Arc::new(crate::distributor::JumpDistributor::new(self.nodes))
            }
            DistributorKind::WriteLocal => std::sync::Arc::new(
                crate::distributor::LocalityDistributor::new(self.nodes, local),
            ),
        }
    }

    /// Instantiate the configured distributor for a client on node 0.
    pub fn make_distributor(&self) -> std::sync::Arc<dyn crate::distributor::Distributor> {
        self.make_distributor_for(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClusterConfig::new(4);
        assert_eq!(c.chunk_size, 512 * 1024);
        assert_eq!(c.size_cache_ops, 0, "paper default is synchronous");
        assert_eq!(c.distributor, DistributorKind::SimpleHash);
    }

    #[test]
    fn builder_chain() {
        let c = ClusterConfig::new(8)
            .with_chunk_size(64 * 1024)
            .with_distributor(DistributorKind::Jump)
            .with_size_cache(32);
        assert_eq!(c.chunk_size, 64 * 1024);
        assert_eq!(c.distributor, DistributorKind::Jump);
        assert_eq!(c.size_cache_ops, 32);
        assert_eq!(c.make_distributor().nodes(), 8);
    }

    #[test]
    fn retry_config_builders() {
        let c = ClusterConfig::new(2);
        assert_eq!(c.retry, RetryConfig::default());
        let c = c
            .with_retry(RetryConfig::disabled())
            .with_op_deadline_ms(1_500);
        assert_eq!(c.retry.max_attempts, 1);
        assert_eq!(c.retry.breaker_threshold, 0);
        assert_eq!(c.retry.op_deadline_ms, 1_500);
        assert_eq!(c.retry.policy().max_attempts, 1);
        // op_deadline_ms == 0 means "never".
        assert_eq!(
            RetryConfig {
                op_deadline_ms: 0,
                ..RetryConfig::default()
            }
            .op_deadline(),
            crate::retry::Deadline::never()
        );
    }

    #[test]
    fn daemon_defaults() {
        let d = DaemonConfig::default();
        assert!(d.root_dir.is_none());
        assert_eq!(d.chunk_size, DEFAULT_CHUNK_SIZE);
        assert!(d.handler_threads >= 1);
        assert!(d.chunk_io_threads >= 1);
        assert!(d.chunk_queue_depth >= d.chunk_io_threads);
        assert_eq!(d.io_backend, IoBackend::Auto);
    }
}
