//! Deadline-aware retry: bounded backoff schedules, operation
//! deadlines, and per-endpoint circuit breakers.
//!
//! GekkoFS is explicitly *not* fault tolerant (paper §III-A) — but a
//! temporary file system still owes its callers **clean failure**:
//! when a daemon is slow, flaky, or dead, every operation must either
//! succeed or surface a typed [`GkfsError`] within a bounded deadline.
//! This module is the arithmetic half of that contract; the RPC and
//! client layers thread it through every fan-out:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   *deterministic* seeded jitter. Jitter is a pure function of
//!   `(seed, salt, attempt)`, never of the wall clock, so a failing
//!   schedule replays identically under a fixed seed (the same rule
//!   the chaos harness follows).
//! * [`Deadline`] — an absolute time budget for one logical operation.
//!   Aggregate operations (striped writes, broadcasts) clamp each
//!   individual `wait` and each backoff sleep to the *remaining*
//!   budget instead of stacking per-call timeouts N deep.
//! * [`CircuitBreaker`] — consecutive-failure counter per endpoint:
//!   after `threshold` straight transport failures the breaker opens
//!   and callers fail fast with [`GkfsError::Unavailable`] instead of
//!   burning their deadline on a daemon that is gone; after a cooldown
//!   a single half-open probe decides whether to close it again.
//!
//! What is considered retryable lives on the error type itself
//! ([`GkfsError::is_retryable`]); *when* a retry is semantically safe
//! (idempotency) is the caller's decision and is documented in
//! DESIGN.md ("Fault model").
//!
//! [`GkfsError`]: crate::error::GkfsError
//! [`GkfsError::is_retryable`]: crate::error::GkfsError::is_retryable
//! [`GkfsError::Unavailable`]: crate::error::GkfsError::Unavailable

use crate::error::Result;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Bounded exponential backoff with deterministic seeded jitter.
///
/// Attempt `k` (zero-based) backs off for roughly `base * 2^k`,
/// capped at `max`, with ±25% jitter derived from
/// `(seed, salt, attempt)` — no wall-clock entropy, so schedules are
/// reproducible under a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Jitter seed. Two callers with different salts (e.g. node ids)
    /// de-synchronize even under the same seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            seed: 0x6766_6b73, // "gfks"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep after failed attempt `attempt`
    /// (zero-based). Pure function of `(self, salt, attempt)`.
    pub fn backoff(&self, salt: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // ±25% equal jitter: keep 3/4 of the exponential term, add a
        // deterministic slice of the remaining half.
        let jitter_span = nanos / 2;
        let jitter = if jitter_span == 0 {
            0
        } else {
            splitmix64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ attempt as u64)
                % jitter_span
        };
        Duration::from_nanos(nanos - nanos / 4 + jitter)
    }

    /// Total worst-case time spent sleeping across all retries (the
    /// backoff budget a caller commits to, excluding the ops
    /// themselves).
    pub fn max_total_backoff(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 0..self.max_attempts.saturating_sub(1) {
            let exp = self
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.max_backoff);
            total += exp + exp / 4; // upper edge of the jitter window
        }
        total
    }
}

/// SplitMix64 — the standard 64-bit finalizer; good avalanche, no
/// state, no allocation. Used only to derive jitter deterministically.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An absolute time budget for one logical operation.
///
/// `Deadline` is `Copy` and is threaded *down* through helpers: a
/// striped write creates one deadline and every per-chunk RPC wait and
/// every retry backoff clamps itself to [`Deadline::clamp`] of it, so
/// the aggregate operation cannot stack N per-call timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// No deadline: `clamp` is the identity, `expired` is never true.
    pub fn never() -> Deadline {
        Deadline { at: None }
    }

    /// Remaining budget; `None` if unbounded, `Some(ZERO)` if expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// True once the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.remaining() == Some(Duration::ZERO)
    }

    /// Clamp a per-call wait to the remaining budget.
    pub fn clamp(&self, d: Duration) -> Duration {
        match self.remaining() {
            None => d,
            Some(rem) => d.min(rem),
        }
    }
}

/// Run `op` under `policy`, clamping backoff sleeps to `deadline`.
///
/// `op` receives the zero-based attempt number. Retries stop when the
/// error is not [`is_retryable`], attempts are exhausted, or the
/// deadline expires — the *last* error is returned, so callers see
/// the typed cause rather than a generic "retries exhausted".
///
/// [`is_retryable`]: crate::error::GkfsError::is_retryable
pub fn retry<T>(
    policy: &RetryPolicy,
    deadline: Deadline,
    salt: u64,
    mut op: impl FnMut(u32) -> Result<T>,
) -> Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if !e.is_retryable() || attempt + 1 >= attempts || deadline.expired() {
                    return Err(e);
                }
                let pause = deadline.clamp(policy.backoff(salt, attempt));
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                if deadline.expired() {
                    return Err(e);
                }
                attempt += 1;
            }
        }
    }
}

/// Circuit breaker state, in the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Failing fast; no requests pass until the cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe request is in flight.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

const STATE_CLOSED: u8 = 0;
const STATE_OPEN: u8 = 1;
const STATE_HALF_OPEN: u8 = 2;

/// Per-endpoint consecutive-failure circuit breaker.
///
/// Lock-free (atomics only) so it sits on the RPC fast path without
/// joining the ranked lock hierarchy. Time is measured against a
/// per-breaker epoch `Instant`, never the wall clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    epoch: Instant,
    consecutive: AtomicU32,
    state: AtomicU8,
    open_until_nanos: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// probes again `cooldown` later. `threshold == 0` disables it.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold,
            cooldown,
            epoch: Instant::now(),
            consecutive: AtomicU32::new(0),
            state: AtomicU8::new(STATE_CLOSED),
            open_until_nanos: AtomicU64::new(0),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// May a request proceed? `false` means fail fast with
    /// [`Unavailable`]. At most one caller per cooldown window wins
    /// the half-open probe slot.
    ///
    /// [`Unavailable`]: crate::error::GkfsError::Unavailable
    pub fn allow(&self) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.state.load(Ordering::Acquire) {
            STATE_CLOSED => true,
            STATE_OPEN => {
                if self.now_nanos() >= self.open_until_nanos.load(Ordering::Acquire) {
                    // Cooldown over: exactly one CAS winner probes. The
                    // probe itself gets a cooldown-sized window to
                    // resolve (see the half-open arm below).
                    if self
                        .state
                        .compare_exchange(
                            STATE_OPEN,
                            STATE_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.open_until_nanos.store(
                            self.now_nanos() + self.cooldown.as_nanos() as u64,
                            Ordering::Release,
                        );
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            _ => {
                // Half-open: a probe is in flight. If its owner never
                // resolved it (the reply future was dropped), the
                // breaker must not wedge — after another cooldown the
                // probe slot is forfeit and one new caller claims it.
                let until = self.open_until_nanos.load(Ordering::Acquire);
                let now = self.now_nanos();
                now >= until
                    && self
                        .open_until_nanos
                        .compare_exchange(
                            until,
                            now + self.cooldown.as_nanos() as u64,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
            }
        }
    }

    /// Record a successful request: closes the breaker, resets counts.
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::Release);
        self.state.store(STATE_CLOSED, Ordering::Release);
    }

    /// Record a transport-level failure. Application errors from a
    /// daemon that *answered* (NotFound, Exists, …) must not be fed
    /// here — a daemon that responds is healthy.
    pub fn record_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let failures = self.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
        let state = self.state.load(Ordering::Acquire);
        if state == STATE_HALF_OPEN || failures >= self.threshold {
            self.open_until_nanos
                .store(self.now_nanos() + self.cooldown.as_nanos() as u64, Ordering::Release);
            self.state.store(STATE_OPEN, Ordering::Release);
        }
    }

    /// Current state (for health reporting; racy by nature).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            STATE_OPEN => BreakerState::Open,
            STATE_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Consecutive transport failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GkfsError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            for salt in [0u64, 1, 7, 0xdead] {
                assert_eq!(
                    p.backoff(salt, attempt),
                    p.backoff(salt, attempt),
                    "same (seed,salt,attempt) must give same backoff"
                );
            }
        }
        // Different salts de-synchronize the jitter.
        let schedule =
            |salt: u64| (0..4).map(|a| p.backoff(salt, a)).collect::<Vec<_>>();
        assert_ne!(schedule(1), schedule(2));
        // Different seeds give different schedules for the same salt.
        let other = RetryPolicy {
            seed: p.seed + 1,
            ..p.clone()
        };
        assert_ne!(
            (0..4).map(|a| p.backoff(9, a)).collect::<Vec<_>>(),
            (0..4).map(|a| other.backoff(9, a)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            seed: 42,
        };
        for attempt in 0..10 {
            let b = p.backoff(3, attempt);
            // 3/4 of the exponential term ≤ backoff ≤ 5/4 of it.
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << attempt.min(16))
                .min(Duration::from_millis(80));
            assert!(b >= exp - exp / 4, "attempt {attempt}: {b:?} < floor");
            assert!(b <= exp + exp / 4, "attempt {attempt}: {b:?} > ceiling");
        }
        assert!(p.max_total_backoff() <= Duration::from_millis(9 * 100));
    }

    #[test]
    fn deadline_clamps_and_expires() {
        let dl = Deadline::after(Duration::from_millis(40));
        assert!(!dl.expired());
        assert!(dl.clamp(Duration::from_secs(30)) <= Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(50));
        assert!(dl.expired());
        assert_eq!(dl.clamp(Duration::from_secs(30)), Duration::ZERO);
        let never = Deadline::never();
        assert!(!never.expired());
        assert_eq!(never.clamp(Duration::from_secs(7)), Duration::from_secs(7));
        assert_eq!(never.remaining(), None);
    }

    #[test]
    fn retry_retries_only_retryable() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            seed: 1,
        };
        let calls = AtomicUsize::new(0);
        let r: Result<()> = retry(&p, Deadline::never(), 0, |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(GkfsError::Rpc("flaky".into()))
        });
        assert!(matches!(r, Err(GkfsError::Rpc(_))));
        assert_eq!(calls.load(Ordering::SeqCst), 4, "retryable: all attempts");

        let calls = AtomicUsize::new(0);
        let r: Result<()> = retry(&p, Deadline::never(), 0, |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(GkfsError::NotFound)
        });
        assert!(matches!(r, Err(GkfsError::NotFound)));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "app errors: no retry");

        // Succeeds on the third attempt.
        let r = retry(&p, Deadline::never(), 0, |attempt| {
            if attempt < 2 {
                Err(GkfsError::Timeout)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.ok(), Some(2));
    }

    #[test]
    fn retry_respects_deadline() {
        let p = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            seed: 1,
        };
        let start = Instant::now();
        let dl = Deadline::after(Duration::from_millis(50));
        let r: Result<()> = retry(&p, dl, 0, |_| Err(GkfsError::Timeout));
        assert!(r.is_err());
        // Overshoot is bounded by one backoff interval, not 100 × 20ms.
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn breaker_opens_half_opens_and_closes() {
        let b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker fails fast");
        std::thread::sleep(Duration::from_millis(40));
        // Exactly one probe wins after cooldown.
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one half-open probe at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert!(b.allow());
    }

    #[test]
    fn breaker_reopens_on_failed_probe() {
        let b = CircuitBreaker::new(2, Duration::from_millis(20));
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allow());
        b.record_failure(); // probe failed
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn abandoned_probe_does_not_wedge_breaker() {
        // A caller that wins the half-open probe slot and then drops
        // its reply future without recording an outcome must not leave
        // the breaker half-open forever.
        let b = CircuitBreaker::new(1, Duration::from_millis(20));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allow(), "first probe claims the slot");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "slot is taken for a cooldown window");
        // ... the probe owner vanishes ...
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allow(), "forfeited probe slot reopens");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let b = CircuitBreaker::new(0, Duration::from_millis(1));
        for _ in 0..100 {
            b.record_failure();
            assert!(b.allow());
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
