//! A small, explicit little-endian wire codec.
//!
//! Both the RPC message bodies and the KV store's on-disk formats are
//! encoded with this codec. We deliberately avoid a serialization
//! framework on the hot path: GekkoFS RPC headers are a handful of
//! integers and one path string, and the paper's throughput numbers
//! (tens of millions of ops/s) leave no room for reflective encoders.
//!
//! All integers are little-endian and fixed-width except where `varint`
//! is used explicitly (length prefixes inside SSTable blocks).

use crate::error::{GkfsError, Result};

/// Append-only encoder producing a `Vec<u8>`.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Start encoding / decoding.
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    /// With capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// U8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// U16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// U32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// U64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// I64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// LEB128-style unsigned varint (used in block-local encodings
    /// where most values are small).
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
        self
    }

    /// Length-prefixed (u32) byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Raw bytes with no length prefix (caller knows the framing).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Into vec.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// As slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-style decoder over a byte slice. Every accessor returns
/// `Corruption` on underrun so malformed frames can never panic a
/// daemon.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Start encoding / decoding.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(GkfsError::Corruption(format!(
                "decode underrun: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// U8.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// U16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// U32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// U64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// I64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(GkfsError::Corruption("varint overflow".into()));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Length-prefixed byte string (pairs with [`Encoder::bytes`]).
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Length-prefixed UTF-8 string (pairs with [`Encoder::str`]).
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| GkfsError::Corruption(format!("invalid utf8 in frame: {e}")))
    }

    /// Raw bytes with no length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the frame was consumed exactly — trailing garbage is
    /// treated as corruption.
    pub fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(GkfsError::Corruption(format!(
                "{} trailing bytes in frame",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7).u16(1234).u32(0xDEADBEEF).u64(u64::MAX).i64(-42);
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 1234);
        assert_eq!(d.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        d.finish().unwrap();
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut e = Encoder::new();
        e.str("/some/path").bytes(b"\x00\x01\x02").str("");
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.str().unwrap(), "/some/path");
        assert_eq!(d.bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(d.str().unwrap(), "");
        d.finish().unwrap();
    }

    #[test]
    fn varint_roundtrip() {
        let vals = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut e = Encoder::new();
        for &v in &vals {
            e.varint(v);
        }
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf);
        for &v in &vals {
            assert_eq!(d.varint().unwrap(), v);
        }
        d.finish().unwrap();
    }

    #[test]
    fn varint_compactness() {
        let mut e = Encoder::new();
        e.varint(5);
        assert_eq!(e.len(), 1);
        let mut e = Encoder::new();
        e.varint(u64::MAX);
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn underrun_is_error_not_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.u64().is_err());
        let mut d = Decoder::new(&[10, 0, 0, 0]); // claims 10 bytes follow
        assert!(d.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut e = Encoder::new();
        e.u8(1);
        let mut v = e.into_vec();
        v.push(99);
        let mut d = Decoder::new(&v);
        d.u8().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn invalid_utf8_is_corruption() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert!(matches!(d.str(), Err(GkfsError::Corruption(_))));
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut d = Decoder::new(&[0x80, 0x80]); // continuation bits, no end
        assert!(d.varint().is_err());
    }
}
