//! A small, explicit little-endian wire codec.
//!
//! Both the RPC message bodies and the KV store's on-disk formats are
//! encoded with this codec. We deliberately avoid a serialization
//! framework on the hot path: GekkoFS RPC headers are a handful of
//! integers and one path string, and the paper's throughput numbers
//! (tens of millions of ops/s) leave no room for reflective encoders.
//!
//! All integers are little-endian and fixed-width except where `varint`
//! is used explicitly (length prefixes inside SSTable blocks).

use crate::error::{GkfsError, Result};

/// Append-only encoder producing a `Vec<u8>`.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Start encoding / decoding.
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    /// With capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// U8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// U16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// U32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// U64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// I64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// LEB128-style unsigned varint (used in block-local encodings
    /// where most values are small).
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
        self
    }

    /// Length-prefixed (u32) byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Raw bytes with no length prefix (caller knows the framing).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Into vec.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// As slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-style decoder over a byte slice. Every accessor returns
/// `Corruption` on underrun so malformed frames can never panic a
/// daemon.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Start encoding / decoding.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(GkfsError::Corruption(format!(
                "decode underrun: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// U8.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// U16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// U32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// U64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// I64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(GkfsError::Corruption("varint overflow".into()));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Length-prefixed byte string (pairs with [`Encoder::bytes`]).
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Length-prefixed UTF-8 string (pairs with [`Encoder::str`]).
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| GkfsError::Corruption(format!("invalid utf8 in frame: {e}")))
    }

    /// Raw bytes with no length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Byte offset of the cursor from the start of the buffer. Lets a
    /// caller that owns the backing buffer (e.g. a refcounted frame)
    /// turn a just-decoded field into a sub-range of the original
    /// allocation instead of copying it out.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Assert the frame was consumed exactly — trailing garbage is
    /// treated as corruption.
    pub fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(GkfsError::Corruption(format!(
                "{} trailing bytes in frame",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Vectored frame emitter for byte-stream transports.
///
/// The TCP wire format is `[payload_len: u32 LE][payload][crc32(payload):
/// u32 LE]`. The original transport assembled `payload` into one
/// contiguous `Vec` and issued three `write_all` calls (length, payload,
/// CRC) — for a `ReadChunks` reply that meant memcpy'ing every chunk
/// buffer into a concatenation `Vec` and paying three syscalls per
/// frame. `FrameWriter` instead takes the payload as a list of borrowed
/// segments (e.g. the encoded header prefix plus each chunk buffer),
/// computes the CRC incrementally across them, and hands the kernel one
/// `writev`-shaped `write_vectored` call covering header, every
/// segment, and the trailer. Nothing is concatenated; the bytes go
/// fd→chunk buffer→socket.
///
/// Ownership rule: segments are *borrowed* for the duration of
/// [`FrameWriter::write_to`] only. The caller keeps the buffers alive
/// (and unmodified) until the call returns; the writer never stashes
/// them.
///
/// Partial writes are handled by advancing through the logical slice
/// list (`IoSlice::advance_slices` is still unstable-adjacent in spirit;
/// we rebuild the iovec from the current cursor instead, which also
/// keeps the borrow local). `Interrupted` is retried.
pub struct FrameWriter<'a> {
    segments: Vec<&'a [u8]>,
    payload_len: usize,
}

impl<'a> Default for FrameWriter<'a> {
    fn default() -> Self {
        FrameWriter::new()
    }
}

impl<'a> FrameWriter<'a> {
    /// Start an empty frame.
    pub fn new() -> FrameWriter<'a> {
        FrameWriter {
            segments: Vec::with_capacity(4),
            payload_len: 0,
        }
    }

    /// Append one borrowed payload segment. Empty segments are legal
    /// and contribute nothing to the wire image.
    pub fn segment(&mut self, s: &'a [u8]) -> &mut Self {
        if !s.is_empty() {
            self.segments.push(s);
        }
        self.payload_len += s.len();
        self
    }

    /// Total payload length (excludes the 8 framing bytes).
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Emit `[len][segments...][crc]` with vectored writes. The common
    /// case is a single `write_vectored` syscall; short writes resume
    /// from the exact byte reached.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        let header = (self.payload_len as u32).to_le_bytes();
        let mut crc = 0u32;
        for s in &self.segments {
            crc = crate::crc::crc32_update(crc, s);
        }
        let trailer = crc.to_le_bytes();

        let mut slices: Vec<&[u8]> = Vec::with_capacity(self.segments.len() + 2);
        slices.push(&header);
        slices.extend(self.segments.iter().copied());
        slices.push(&trailer);

        let mut idx = 0usize; // current slice
        let mut off = 0usize; // bytes of slices[idx] already written
        let mut iov: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(slices.len());
        while idx < slices.len() {
            iov.clear();
            iov.push(std::io::IoSlice::new(&slices[idx][off..]));
            iov.extend(slices[idx + 1..].iter().map(|s| std::io::IoSlice::new(s)));
            let mut n = match w.write_vectored(&iov) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "wrote zero bytes of frame",
                    ));
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            while n > 0 && idx < slices.len() {
                let rem = slices[idx].len() - off;
                if n < rem {
                    off += n;
                    n = 0;
                } else {
                    n -= rem;
                    idx += 1;
                    off = 0;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7).u16(1234).u32(0xDEADBEEF).u64(u64::MAX).i64(-42);
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 1234);
        assert_eq!(d.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        d.finish().unwrap();
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut e = Encoder::new();
        e.str("/some/path").bytes(b"\x00\x01\x02").str("");
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert_eq!(d.str().unwrap(), "/some/path");
        assert_eq!(d.bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(d.str().unwrap(), "");
        d.finish().unwrap();
    }

    #[test]
    fn varint_roundtrip() {
        let vals = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut e = Encoder::new();
        for &v in &vals {
            e.varint(v);
        }
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf);
        for &v in &vals {
            assert_eq!(d.varint().unwrap(), v);
        }
        d.finish().unwrap();
    }

    #[test]
    fn varint_compactness() {
        let mut e = Encoder::new();
        e.varint(5);
        assert_eq!(e.len(), 1);
        let mut e = Encoder::new();
        e.varint(u64::MAX);
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn underrun_is_error_not_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.u64().is_err());
        let mut d = Decoder::new(&[10, 0, 0, 0]); // claims 10 bytes follow
        assert!(d.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut e = Encoder::new();
        e.u8(1);
        let mut v = e.into_vec();
        v.push(99);
        let mut d = Decoder::new(&v);
        d.u8().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn invalid_utf8_is_corruption() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let v = e.into_vec();
        let mut d = Decoder::new(&v);
        assert!(matches!(d.str(), Err(GkfsError::Corruption(_))));
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut d = Decoder::new(&[0x80, 0x80]); // continuation bits, no end
        assert!(d.varint().is_err());
    }

    /// Reference frame image: what the old contiguous
    /// `write_all(len); write_all(payload); write_all(crc)` path put on
    /// the wire. The vectored writer must be byte-identical.
    fn contiguous_frame(payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(payload.len() + 8);
        v.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        v.extend_from_slice(payload);
        v.extend_from_slice(&crate::crc::crc32(payload).to_le_bytes());
        v
    }

    #[test]
    fn frame_writer_matches_contiguous_encoding() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        // Split the payload at a few arbitrary points, including empty
        // and 1-byte segments.
        let splits: &[&[usize]] = &[&[], &[0], &[300], &[1, 2, 150], &[100, 200], &[299]];
        for cuts in splits {
            let mut fw = FrameWriter::new();
            let mut prev = 0;
            for &c in *cuts {
                fw.segment(&payload[prev..c]);
                prev = c;
            }
            fw.segment(&payload[prev..]);
            let mut out = Vec::new();
            fw.write_to(&mut out).unwrap();
            assert_eq!(out, contiguous_frame(&payload), "cuts {cuts:?}");
        }
    }

    #[test]
    fn frame_writer_empty_payload() {
        let mut out = Vec::new();
        FrameWriter::new().write_to(&mut out).unwrap();
        assert_eq!(out, contiguous_frame(b""));
        let mut out = Vec::new();
        let mut fw = FrameWriter::new();
        fw.segment(b"").segment(b"");
        fw.write_to(&mut out).unwrap();
        assert_eq!(out, contiguous_frame(b""));
    }

    /// Writer that accepts at most `cap` bytes per call and fails with
    /// `Interrupted` every third call — exercises the resume cursor.
    struct TrickleWriter {
        out: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl std::io::Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(3) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "signal",
                ));
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
        // No write_vectored override: the default trait impl forwards
        // the first non-empty buffer to `write`, which is exactly the
        // short-write shape we want to torture the cursor with.
    }

    #[test]
    fn frame_writer_survives_short_writes_and_interrupts() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 241) as u8).collect();
        for cap in [1usize, 2, 3, 7, 64, 4096] {
            let mut fw = FrameWriter::new();
            fw.segment(&payload[..333]).segment(&payload[333..334]).segment(&payload[334..]);
            let mut w = TrickleWriter { out: Vec::new(), cap, calls: 0 };
            fw.write_to(&mut w).unwrap();
            assert_eq!(w.out, contiguous_frame(&payload), "cap {cap}");
        }
    }
}
