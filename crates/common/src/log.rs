//! Minimal leveled logging, dependency-free.
//!
//! GekkoFS daemons run unattended on compute nodes, so operational
//! visibility matters (the authors built a whole tracing framework for
//! storage systems [37]). This is a deliberately small substitute: a
//! global level (initialized from `GKFS_LOG`, overridable in code) and
//! three macros writing single-line records to stderr. The disabled
//! path is one relaxed atomic load.
//!
//! ```
//! use gkfs_common::{gkfs_info, log::{set_level, Level}};
//! set_level(Level::Info);
//! gkfs_info!("daemon listening on {}", "127.0.0.1:9820");
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severities, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Operational milestones (startup, shutdown, mounts).
    Info = 1,
    /// Unexpected-but-handled conditions.
    Warn = 2,
    /// Per-operation detail (hot path — benchmarks will suffer).
    Debug = 3,
}

static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX); // MAX = uninitialized

fn init_from_env() -> u8 {
    let lvl = match std::env::var("GKFS_LOG").as_deref() {
        Ok("info") | Ok("INFO") => Level::Info,
        Ok("warn") | Ok("WARN") => Level::Warn,
        Ok("debug") | Ok("DEBUG") => Level::Debug,
        _ => Level::Off,
    } as u8;
    LEVEL.store(lvl, Ordering::Relaxed);
    lvl
}

/// Current level (reads `GKFS_LOG` on first use).
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    let raw = if raw == u8::MAX { init_from_env() } else { raw };
    match raw {
        1 => Level::Info,
        2 => Level::Warn,
        3 => Level::Debug,
        _ => Level::Off,
    }
}

/// Override the level programmatically.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Is `l` currently enabled?
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level() && l != Level::Off
}

/// Implementation detail of the macros.
pub fn write_record(l: Level, module: &str, args: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let micros = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros())
        .unwrap_or(0);
    let tag = match l {
        Level::Info => "INFO",
        Level::Warn => "WARN",
        Level::Debug => "DEBUG",
        Level::Off => return,
    };
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "[{micros} {tag} {module}] {args}");
}

/// Log at info level.
#[macro_export]
macro_rules! gkfs_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write_record($crate::log::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at warn level.
#[macro_export]
macro_rules! gkfs_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write_record($crate::log::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at debug level (hot paths — keep the format cheap).
#[macro_export]
macro_rules! gkfs_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write_record($crate::log::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_correctly() {
        set_level(Level::Warn);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Off), "Off is never 'enabled'");
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Off);
    }

    #[test]
    fn macros_compile_and_run() {
        set_level(Level::Debug);
        gkfs_info!("info {}", 1);
        gkfs_warn!("warn {}", 2);
        gkfs_debug!("debug {}", 3);
        set_level(Level::Off);
        gkfs_info!("not printed");
    }
}
