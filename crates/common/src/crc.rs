//! CRC32 (IEEE 802.3 polynomial), slice-by-8, implemented from scratch.
//!
//! Used to frame records in the KV store's write-ahead log, to protect
//! SSTable blocks, and as the trailer checksum on every TCP RPC frame —
//! the same role CRC32C plays in RocksDB. The RPC data plane pushes
//! multi-MiB chunk payloads through this function on every read reply,
//! so the classic one-table bytewise loop (one table lookup and one
//! shift per byte, a serial dependency chain) showed up in profiles.
//! Slice-by-8 processes eight bytes per iteration through eight
//! precomputed tables, breaking the dependency chain: the eight lookups
//! are independent and the XOR tree reassociates freely, which is worth
//! roughly 3-4x on payloads larger than a cache line.
//!
//! The tables are built in a `const` block at compile time — no lazy
//! init on the hot path, no locks, and the flat 8 KiB array lands in
//! rodata.

/// Eight 256-entry tables for the reflected IEEE polynomial
/// `0xEDB88320`. `TABLES[0]` is the classic bytewise table;
/// `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero bytes,
/// which is what lets eight adjacent input bytes be looked up
/// independently and combined with XOR.
const TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            t[n][i] = (t[n - 1][i] >> 8) ^ t[0][(t[n - 1][i] & 0xFF) as usize];
            i += 1;
        }
        n += 1;
    }
    t
};

/// Compute the CRC32 of `data` (initial value 0).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continue a CRC computation: `crc` is the value returned by a
/// previous call for the preceding bytes. Incremental use is exact —
/// feeding a buffer in arbitrary splits yields the same value as one
/// shot, which is what lets the TCP transport checksum a vectored
/// frame (header + borrowed payload segments) without assembling it.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        // Fold the current CRC into the first four bytes, then look all
        // eight bytes up in their position-shifted tables. The eight
        // loads are independent — no serial shift chain.
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][ch[4] as usize]
            ^ TABLES[2][ch[5] as usize]
            ^ TABLES[1][ch[6] as usize]
            ^ TABLES[0][ch[7] as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original bytewise loop, kept as the cross-check reference
    /// for the slice-by-8 implementation.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn reference_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
        // RFC 3720-style all-zero / all-ones blocks (IEEE, reflected).
        assert_eq!(crc32(&[0u8; 32]), 0x190A55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6CAB0B);
    }

    #[test]
    fn slice_by_8_matches_bytewise_on_all_lengths() {
        // Every length 0..=64 plus some larger ones, so every
        // remainder path of the 8-byte main loop is exercised.
        let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(31) % 256) as u8).collect();
        for len in (0..=64).chain([255, 1023, 4096]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
        // Unaligned starts too: `chunks_exact` begins at the slice
        // head, so the table math must hold regardless of alignment.
        for start in 1..9 {
            assert_eq!(crc32(&data[start..]), crc32_bytewise(&data[start..]), "start {start}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let whole = crc32(&data);
        // Arbitrary split sizes, including splits inside an 8-byte
        // block (the incremental state must not assume alignment).
        for chunk in [1usize, 3, 7, 8, 13, 64] {
            let mut c = 0;
            for part in data.chunks(chunk) {
                c = crc32_update(c, part);
            }
            assert_eq!(whole, c, "chunk size {chunk}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xAAu8; 256];
        let before = crc32(&data);
        data[100] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }
}
