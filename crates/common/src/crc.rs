//! CRC32 (IEEE 802.3 polynomial), table-driven, implemented from scratch.
//!
//! Used to frame records in the KV store's write-ahead log and to
//! protect SSTable blocks — the same role CRC32C plays in RocksDB.

/// Lazily built 256-entry lookup table for the reflected IEEE
/// polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Compute the CRC32 of `data` (initial value 0).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continue a CRC computation: `crc` is the value returned by a
/// previous call for the preceding bytes.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = !crc;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello crc32 incremental world";
        let whole = crc32(data);
        let mut c = 0;
        for part in data.chunks(7) {
            c = crc32_update(c, part);
        }
        assert_eq!(whole, c);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xAAu8; 256];
        let before = crc32(&data);
        data[100] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }
}
