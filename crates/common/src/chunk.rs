//! Chunk arithmetic.
//!
//! GekkoFS splits file data into equally sized chunks before spreading
//! them across daemons (§III-B-a: "data requests are split into equally
//! sized chunks before they are distributed across file system nodes").
//! The evaluation used a 512 KiB chunk size. A read or write of an
//! arbitrary `(offset, len)` range therefore touches a run of chunk
//! ids; [`chunk_range`] produces the per-chunk sub-ranges.

/// Description of how one file is chunked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLayout {
    /// Chunk size in bytes. Must be a power of two (enforced by
    /// [`ChunkLayout::new`]); the paper used 512 KiB.
    pub chunk_size: u64,
}

impl ChunkLayout {
    /// Create a layout. Panics if `chunk_size` is zero or not a power
    /// of two — this is a configuration constant, not runtime input.
    pub fn new(chunk_size: u64) -> ChunkLayout {
        assert!(
            chunk_size.is_power_of_two(),
            "chunk size must be a power of two, got {chunk_size}"
        );
        ChunkLayout { chunk_size }
    }

    /// Chunk id containing byte `offset`.
    #[inline]
    pub fn chunk_of(&self, offset: u64) -> u64 {
        offset / self.chunk_size
    }

    /// Offset of byte `offset` *within* its chunk.
    #[inline]
    pub fn offset_in_chunk(&self, offset: u64) -> u64 {
        offset % self.chunk_size
    }

    /// Number of chunks needed to hold a file of `size` bytes.
    #[inline]
    pub fn chunk_count(&self, size: u64) -> u64 {
        size.div_ceil(self.chunk_size)
    }
}

/// One chunk-aligned piece of a byte-range operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Chunk id within the file.
    pub chunk_id: u64,
    /// Start offset inside the chunk.
    pub offset: u64,
    /// Bytes of this operation that land in this chunk.
    pub len: u64,
    /// Offset of this piece within the operation's buffer.
    pub buf_offset: u64,
}

/// Split the byte range `[offset, offset + len)` into per-chunk pieces.
///
/// The returned pieces are contiguous, ordered by `chunk_id`, cover the
/// range exactly, and each stays within a single chunk. An empty range
/// yields no pieces.
pub fn chunk_range(layout: ChunkLayout, offset: u64, len: u64) -> Vec<ChunkInfo> {
    let mut out = Vec::new();
    if len == 0 {
        return out;
    }
    let end = offset
        .checked_add(len)
        .expect("offset + len overflows u64");
    let mut pos = offset;
    while pos < end {
        let chunk_id = layout.chunk_of(pos);
        let in_chunk = layout.offset_in_chunk(pos);
        let avail = layout.chunk_size - in_chunk;
        let take = avail.min(end - pos);
        out.push(ChunkInfo {
            chunk_id,
            offset: in_chunk,
            len: take,
            buf_offset: pos - offset,
        });
        pos += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const K: u64 = 1024;

    #[test]
    fn single_chunk_interior() {
        let l = ChunkLayout::new(512 * K);
        let r = chunk_range(l, 100, 200);
        assert_eq!(
            r,
            vec![ChunkInfo {
                chunk_id: 0,
                offset: 100,
                len: 200,
                buf_offset: 0
            }]
        );
    }

    #[test]
    fn exact_chunk_boundaries() {
        let l = ChunkLayout::new(512 * K);
        let r = chunk_range(l, 512 * K, 512 * K);
        assert_eq!(
            r,
            vec![ChunkInfo {
                chunk_id: 1,
                offset: 0,
                len: 512 * K,
                buf_offset: 0
            }]
        );
    }

    #[test]
    fn straddling_write() {
        let l = ChunkLayout::new(512 * K);
        // Write 1 MiB starting 1 KiB before a chunk boundary.
        let r = chunk_range(l, 512 * K - K, 1024 * K);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].chunk_id, 0);
        assert_eq!(r[0].len, K);
        assert_eq!(r[1].chunk_id, 1);
        assert_eq!(r[1].len, 512 * K);
        assert_eq!(r[2].chunk_id, 2);
        assert_eq!(r[2].len, 1024 * K - K - 512 * K);
        assert_eq!(r[2].buf_offset, K + 512 * K);
    }

    #[test]
    fn empty_range() {
        let l = ChunkLayout::new(512 * K);
        assert!(chunk_range(l, 12345, 0).is_empty());
    }

    #[test]
    fn chunk_count() {
        let l = ChunkLayout::new(512 * K);
        assert_eq!(l.chunk_count(0), 0);
        assert_eq!(l.chunk_count(1), 1);
        assert_eq!(l.chunk_count(512 * K), 1);
        assert_eq!(l.chunk_count(512 * K + 1), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        ChunkLayout::new(500 * K);
    }

    proptest! {
        /// The pieces must tile the requested range exactly.
        #[test]
        fn pieces_tile_range(
            shift in 12u32..24,                 // 4 KiB .. 8 MiB chunk sizes
            offset in 0u64..(1 << 30),
            len in 0u64..(1 << 24),
        ) {
            let l = ChunkLayout::new(1 << shift);
            let pieces = chunk_range(l, offset, len);
            // Total length covered equals len.
            let total: u64 = pieces.iter().map(|p| p.len).sum();
            prop_assert_eq!(total, len);
            // Pieces are contiguous in buffer space and file space.
            let mut buf_pos = 0u64;
            let mut file_pos = offset;
            for p in &pieces {
                prop_assert_eq!(p.buf_offset, buf_pos);
                prop_assert_eq!(p.chunk_id * l.chunk_size + p.offset, file_pos);
                prop_assert!(p.len > 0);
                prop_assert!(p.offset + p.len <= l.chunk_size, "piece stays in chunk");
                buf_pos += p.len;
                file_pos += p.len;
            }
        }
    }
}
